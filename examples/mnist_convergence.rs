//! Convergence comparison on the paper's Fig. 6 workload: LeNet-5 on an
//! MNIST-like dataset, all four algorithms, 2 workers.
//!
//! This is the domain scenario the paper's introduction motivates:
//! gradient compression (BIT-SGD) loses accuracy; CD-SGD's k-step
//! correction restores it while keeping the compressed traffic.
//!
//! Run with: `cargo run --release --example mnist_convergence`
//! (takes a couple of minutes; shrink with `--samples`/`--epochs` via the
//! fig6_lenet harness in `cdsgd-bench` if you want knobs.)

use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cdsgd_data::synth;
use cdsgd_nn::models;

fn main() {
    let data = synth::mnist_like(3_000, 42);
    let (train, test) = data.split(0.85);
    let workers = 2;
    let warmup = train.len() / workers / 32; // ≈ one epoch of warm-up

    let algos = [
        Algorithm::SSgd,
        Algorithm::OdSgd { local_lr: 0.4 },
        Algorithm::BitSgd { threshold: 0.5 },
        Algorithm::cd_sgd(0.4, 0.5, 2, warmup),
    ];

    println!("LeNet-5 on MNIST-like, M={workers} workers, batch 32, global lr 0.1\n");
    let mut rows = Vec::new();
    for algo in algos {
        let cfg = TrainConfig::new(algo, workers)
            .with_lr(0.1)
            .with_batch_size(32)
            .with_epochs(6)
            .with_seed(42);
        let t = Trainer::new(
            cfg,
            |rng| models::lenet5(10, rng),
            train.clone(),
            Some(test.clone()),
        );
        let h = t.run();
        println!("== {} ==", h.algo);
        print!("{}", h.to_tsv());
        rows.push((h.algo.clone(), h.best_test_acc().unwrap()));
    }

    println!("\nbest test accuracy:");
    for (name, acc) in &rows {
        println!("  {name:<14} {acc:.4}");
    }
    println!("\nexpected shape (paper Fig. 6): BIT-SGD below the rest; CD-SGD ≈ S-SGD.");
}
