//! Cluster planner: use the timing substrate to decide, *before* buying
//! time on a cluster, which distributed algorithm and which k to use for
//! a given model/hardware/bandwidth combination.
//!
//! This exercises the `cdsgd-simtime` public API the way a practitioner
//! would: sweep k and bandwidth for a model, find the crossover points
//! that §3.3 of the paper derives analytically.
//!
//! Run with: `cargo run --release --example cluster_planner`

use cdsgd_simtime::pipeline::{AlgoKind, PipelineSim};
use cdsgd_simtime::{zoo, ClusterSpec, CostInputs, CostModel};

fn main() {
    let model = zoo::resnet50();
    println!(
        "planning for {} ({} M params)\n",
        model.name,
        model.total_params() / 1_000_000
    );

    println!("== k sweep on the V100 cluster (56 Gbps), batch 32 ==");
    let cluster = ClusterSpec::v100_cluster();
    let sim = PipelineSim::new(&model, &cluster, 32);
    let ssgd = sim.run(AlgoKind::Ssgd, 42).avg_iter_time;
    let bit = sim.run(AlgoKind::BitSgd, 42).avg_iter_time;
    println!(
        "S-SGD {:.1} ms/iter, BIT-SGD {:.1} ms/iter",
        ssgd * 1e3,
        bit * 1e3
    );
    println!("{:>4} {:>12} {:>12}", "k", "cd_ms/iter", "vs BIT");
    for k in [2usize, 5, 10, 20, 50] {
        let cd = sim.run(AlgoKind::CdSgd { k }, 2 + 10 * k).avg_iter_time;
        println!(
            "{:>4} {:>12.1} {:>11.0}%",
            k,
            cd * 1e3,
            (bit / cd - 1.0) * 100.0
        );
    }

    println!("\n== bandwidth sweep (CD-SGD k=5 vs S-SGD), batch 32 ==");
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "gbps", "ssgd_ms", "cd_ms", "speedup"
    );
    for gbps in [1.0f64, 10.0, 25.0, 56.0, 100.0, 200.0] {
        let c = ClusterSpec::v100_cluster().with_bandwidth_gbps(gbps);
        let sim = PipelineSim::new(&model, &c, 32);
        let s = sim.run(AlgoKind::Ssgd, 42).avg_iter_time;
        let cd = sim.run(AlgoKind::CdSgd { k: 5 }, 52).avg_iter_time;
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>9.0}%",
            gbps,
            s * 1e3,
            cd * 1e3,
            (s / cd - 1.0) * 100.0
        );
    }
    println!("(low bandwidth = the paper's future-work setting: CD-SGD's advantage grows)");

    println!("\n== closed-form sanity (paper eqs. 2,4-7) at 56 Gbps ==");
    let cm = CostModel::new(CostInputs::derive(
        &model,
        &ClusterSpec::v100_cluster(),
        32,
        5,
    ));
    println!(
        "tau {:.1} ms, phi {:.1} ms, psi {:.1} ms, delta {:.1} ms",
        cm.inputs().tau * 1e3,
        cm.inputs().phi * 1e3,
        cm.inputs().psi * 1e3,
        cm.inputs().delta * 1e3
    );
    println!(
        "T_ssgd {:.1} ms, T_loc {:.1} ms, T_bit {:.1} ms, T_cd(avg) {:.1} ms",
        cm.t_ssgd() * 1e3,
        cm.t_loc() * 1e3,
        cm.t_bit() * 1e3,
        cm.t_cd_avg() * 1e3
    );
}
