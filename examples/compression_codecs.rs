//! Tour of the gradient-compression codecs: wire sizes, error-feedback
//! mass conservation, and what each codec does to a real gradient.
//!
//! Run with: `cargo run --release --example compression_codecs`

use cdsgd_compress::{
    decompress, GradientCompressor, NoCompression, OneBitQuantizer, QsgdQuantizer,
    TernGradQuantizer, TopKSparsifier, TwoBitQuantizer,
};
use cdsgd_tensor::{SmallRng64, Tensor};

fn main() {
    let n = 1_000_000usize;
    let mut rng = SmallRng64::new(1);
    let grad = Tensor::randn(&[n], 0.3, &mut rng);

    println!(
        "compressing a {n}-element gradient (raw = {} KiB):\n",
        4 * n / 1024
    );
    println!(
        "{:<10} {:>12} {:>10} {:>16} {:>16}",
        "codec", "wire_KiB", "ratio", "decoded_l2_err", "mass_in_residual"
    );

    let mut codecs: Vec<Box<dyn GradientCompressor>> = vec![
        Box::new(NoCompression),
        Box::new(TwoBitQuantizer::new(0.5)),
        Box::new(OneBitQuantizer::new()),
        Box::new(TernGradQuantizer::new(7)),
        Box::new(QsgdQuantizer::new(4, 7)),
        Box::new(TopKSparsifier::new(0.01)),
    ];
    for codec in codecs.iter_mut() {
        let payload = codec.compress(0, grad.data());
        let mut decoded = vec![0.0f32; n];
        decompress(&payload, &mut decoded);
        let err: f32 = grad
            .data()
            .iter()
            .zip(&decoded)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let residual_mass: f32 = grad.data().iter().sum::<f32>() - decoded.iter().sum::<f32>();
        println!(
            "{:<10} {:>12} {:>10.4} {:>16.2} {:>16.4}",
            codec.name(),
            payload.wire_bytes() / 1024,
            codec.compression_ratio(n),
            err,
            residual_mass,
        );
    }

    println!("\nerror feedback in action (2-bit, threshold 0.5, one slot):");
    let mut q = TwoBitQuantizer::new(0.5);
    let mut transmitted = 0.0f32;
    for step in 0..6 {
        let g = [0.2f32];
        let payload = q.compress(0, &g);
        let mut d = [0.0f32];
        decompress(&payload, &mut d);
        transmitted += d[0];
        println!(
            "  step {step}: grad 0.20 -> sent {:+.2}, residual {:+.2}, total sent {:+.2}",
            d[0],
            q.residuals().get(0).unwrap()[0],
            transmitted
        );
    }
    println!("  (nothing is lost — sub-threshold gradients accumulate until they fire)");
}
