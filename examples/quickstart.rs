//! Quickstart: train a small model with CD-SGD on two workers and compare
//! against S-SGD — the 60-second tour of the public API.
//!
//! Run with: `cargo run --release --example quickstart`

use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cdsgd_data::toy;
use cdsgd_nn::models;

fn main() {
    // 1. A dataset. Synthetic Gaussian blobs: 4 classes in 8 dimensions.
    let data = toy::gaussian_blobs(2_000, 8, 4, 0.6, 42);
    let (train, test) = data.split(0.8);

    // 2. An algorithm. CD-SGD = local update + 2-bit quantization +
    //    k-step correction (+ a short warm-up of plain S-SGD).
    let cd = Algorithm::cd_sgd(
        0.05, // local learning rate (eq. 11)
        0.1,  // 2-bit quantization threshold α
        2,    // k: one full-precision correction every 2 iterations
        20,   // warm-up iterations
    );

    // 3. A training run: 2 worker threads + a parameter-server thread.
    for algo in [Algorithm::SSgd, cd] {
        let cfg = TrainConfig::new(algo, 2)
            .with_lr(0.2)
            .with_batch_size(32)
            .with_epochs(8)
            .with_seed(7);
        let trainer = Trainer::new(
            cfg,
            |rng| models::mlp(&[8, 32, 4], rng),
            train.clone(),
            Some(test.clone()),
        );
        let history = trainer.run();
        println!(
            "{:<12} final test acc {:.3}  (pushed {} KiB of gradients)",
            history.algo,
            history.final_test_acc().unwrap(),
            history.epochs.last().unwrap().cumulative_push_bytes / 1024,
        );
    }
    println!("\nCD-SGD should match S-SGD's accuracy while pushing ~2x fewer bytes");
    println!("(k=2: every other push is a full-precision correction; larger k pushes less).");
}
