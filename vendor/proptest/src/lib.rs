//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), range
//! strategies for primitive numerics, `any::<bool>()`,
//! `prop::collection::vec`, and the `prop_assert*` / `prop_assume`
//! macros. Cases are generated from a deterministic per-test RNG; on
//! failure the generated arguments are printed before the panic is
//! re-raised. No shrinking — the failing case is reported as generated.
#![allow(clippy::all)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy};
    // The macros are exported at the crate root; a glob from the prelude
    // does not re-export macros, so tests name them via the `#[macro_use]`
    // style path `proptest::proptest!` implicitly through `$crate`; the
    // `pub use` below makes plain `proptest! { .. }` work too.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub mod prop {
    pub use crate::collection;
}

/// Runner configuration (`cases` = generated inputs per property).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: distinct, stable seeds per property.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, usize);

// u64 spans can overflow the +1 in the inclusive form; handle separately.
impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.next_u64() % (hi - lo + 1)
    }
}

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Types with a default "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, sizes)`: vectors whose length is
    /// drawn from `sizes` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

impl SizeRange {
    pub fn min(&self) -> usize {
        self.min
    }
    pub fn max(&self) -> usize {
        self.max
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a zero-argument test running `cases` generated inputs; a
/// failing case prints its arguments, then re-raises the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let mut __desc = ::std::string::String::new();
                $(__desc.push_str(&::std::format!(
                    "  {} = {:?}\n", ::std::stringify!($arg), &$arg
                ));)+
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body })
                );
                if let ::std::result::Result::Err(__panic) = __result {
                    ::std::eprintln!(
                        "proptest {}: case {}/{} failed with inputs:\n{}",
                        ::std::stringify!($name), __case + 1, __config.cases, __desc
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens(max: usize) -> impl Strategy<Value = usize> {
        1usize..max
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -2.0f32..2.0, s in 0u64..100) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(s < 100);
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u8..4, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn nested_vec_and_custom_strategy(
            vv in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 3..=3), 1..4),
            n in evens(6),
        ) {
            prop_assert!(!vv.is_empty() && vv.len() < 4);
            prop_assert!(vv.iter().all(|v| v.len() == 3));
            prop_assume!(n > 1);
            prop_assert!(n < 6);
        }

        #[test]
        fn any_bool_hits_both_values(bits in prop::collection::vec(any::<bool>(), 64..=64)) {
            // With 64 fair draws, both values should essentially always appear.
            prop_assert!(bits.iter().any(|&b| b) || bits.iter().all(|&b| !b));
        }
    }
}
