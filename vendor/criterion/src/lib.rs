//! Offline shim for `criterion`.
//!
//! A small wall-clock benchmark harness exposing the criterion API this
//! workspace's benches use (`benchmark_group`, `bench_with_input`,
//! `bench_function`, `Throughput`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`). Each benchmark reports min / median / mean
//! per-iteration time and derived throughput on stdout. Fast closures are
//! batched so timer overhead stays out of the numbers. The measurement
//! budget per benchmark defaults to ~300 ms; set `CRITERION_MEASURE_MS`
//! to change it. A positional CLI argument filters benchmarks by
//! substring (as `cargo bench <filter>` does).
#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Unit used to derive throughput numbers from the measured time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark label: `new("fn", param)` renders as `fn/param`,
/// `from_parameter(p)` as just `p`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

pub struct Criterion {
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        // First positional argument (as passed by `cargo bench <filter>`)
        // selects benchmarks by substring. Flags like `--bench` are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            measurement: Duration::from_millis(ms),
            filter,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(
            &name,
            self.measurement,
            100,
            None,
            self.filter.as_deref(),
            f,
        );
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work amount used to report throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Cap the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(
            &label,
            self.criterion.measurement,
            self.sample_size,
            self.throughput,
            self.criterion.filter.as_deref(),
            |b| f(b, input),
        );
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(
            &label,
            self.criterion.measurement,
            self.sample_size,
            self.throughput,
            self.criterion.filter.as_deref(),
            f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(
    label: &str,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<&str>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !label.contains(pat) {
            return;
        }
    }
    let mut bencher = Bencher {
        measurement,
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    report(label, &bencher.samples, throughput);
}

pub struct Bencher {
    measurement: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine` repeatedly; each sample's per-iteration seconds
    /// are recorded. Fast routines are batched so each timed span is at
    /// least ~50 µs of work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch-size calibration.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        let batch: u64 = (Duration::from_micros(50).as_nanos() / first.as_nanos())
            .max(1)
            .min(1_000_000) as u64;

        let deadline = Instant::now() + self.measurement;
        self.samples.clear();
        self.samples.push(first.as_secs_f64());
        while self.samples.len() < self.sample_size && Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn report(label: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<48} no samples");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let thr = match throughput {
        Some(Throughput::Bytes(b)) if median > 0.0 => {
            format!("  {:>10.1} MiB/s", b as f64 / median / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) if median > 0.0 => {
            format!("  {:>10.2} Melem/s", e as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} median {}  min {}  mean {}  ({} samples){thr}",
        fmt_time(median),
        fmt_time(min),
        fmt_time(mean),
        sorted.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>9.3} s ")
    } else if secs >= 1e-3 {
        format!("{:>9.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>9.3} µs", secs * 1e6)
    } else {
        format!("{:>9.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into a runner, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            measurement: Duration::from_millis(20),
            sample_size: 10,
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("raw", 4096).label, "raw/4096");
        assert_eq!(BenchmarkId::from_parameter("S-SGD").label, "S-SGD");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        c.filter = None;
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }
}
