//! Offline shim for `parking_lot`: a `Mutex` with parking_lot's
//! non-poisoning `lock()` signature, backed by `std::sync::Mutex`.
#![allow(clippy::all)]

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock, ignoring poisoning (parking_lot has no poison concept).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
