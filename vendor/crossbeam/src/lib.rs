//! Offline shim for the `crossbeam` facade crate: only the `channel`
//! module is used by this workspace, re-exported from the local
//! `crossbeam-channel` shim.

pub mod channel {
    pub use crossbeam_channel::*;
}
