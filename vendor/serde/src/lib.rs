//! Offline shim for `serde` (+`serde_derive`).
//!
//! Instead of serde's visitor architecture, this shim defines JSON-value
//! based traits: `Serialize::to_json` produces a [`json::Value`] tree and
//! `Deserialize::from_json` reads one back. The companion `serde_derive`
//! shim emits impls of these traits for `#[derive(Serialize, Deserialize)]`,
//! and the `serde_json` shim provides the familiar `to_string` /
//! `from_str` / `json!` front end. The externally-tagged enum encoding and
//! shortest-representation float formatting match real serde_json for the
//! types this workspace serializes.
#![allow(clippy::all)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Number, Value};

/// Types renderable as a JSON value tree.
pub trait Serialize {
    fn to_json(&self) -> Value;
}

/// Types reconstructible from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_json(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        // Kept as f32 so the writer can use the shortest f32 decimal
        // representation (0.6f32 serializes as "0.6", not "0.6000000238...").
        Value::Number(Number::F32(*self))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        // Narrowing an f64 parsed from a shortest-f32 decimal recovers the
        // original f32 exactly (the decimal lies strictly inside the f32's
        // rounding interval) — same contract as real serde.
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            _ => Err(Error::msg("expected 2-element array")),
        }
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
