//! JSON value tree, parser, and writer shared by the `serde` and
//! `serde_json` shims.

use std::fmt;

/// Numeric payload. Integer-valued and float-valued numbers are kept
/// apart so integers print without a decimal point, and f32-origin
/// values print with the shortest f32 decimal representation.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    Int(i64),
    UInt(u64),
    F32(f32),
    F64(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::F32(f) => f as f64,
            Number::F64(f) => f,
        }
    }
}

/// A JSON document. Objects preserve insertion order (like serde_json
/// with `preserve_order`); lookups are linear, which is fine for the
/// small documents this workspace produces.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

/// Object field lookup used by derived `Deserialize` impls; missing keys
/// read as `Null` so `Option` fields can default.
pub fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.get(key).unwrap_or(&NULL)
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            Value::Number(Number::UInt(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) => u64::try_from(*i).ok(),
            Value::Number(Number::UInt(u)) => Some(*u),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Key lookup on objects (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render compact (no whitespace), serde_json style.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation, serde_json `to_string_pretty`
    /// style.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse_str(input: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write;
    match n {
        Number::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Number::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::F32(f) => write_float(out, f.is_finite(), f as f64, Some(f)),
        Number::F64(f) => write_float(out, f.is_finite(), f, None),
    }
}

fn write_float(out: &mut String, finite: bool, wide: f64, narrow: Option<f32>) {
    use std::fmt::Write;
    if !finite {
        // serde_json encodes non-finite floats as null.
        out.push_str("null");
        return;
    }
    // Rust's float Display is shortest-roundtrip; add ".0" for
    // integer-valued floats so they parse back as floats (serde_json does
    // the same).
    let s = match narrow {
        Some(f) => format!("{f}"),
        None => format!("{wide}"),
    };
    let _ = write!(out, "{s}");
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error for parsing and (infallible in practice) serialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error { msg: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.eat_keyword("\\u") {
                                    let lo = self.parse_hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::msg("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::msg("bad \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::msg(format!("bad number {text:?}")))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        field(self, key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a.as_f64() == b.as_f64(),
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<f32> for Value {
    fn eq(&self, other: &f32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::parse_str(r#"{"a":[1,2.5,"x"],"b":null,"c":true}"#).unwrap();
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], "x");
        assert!(v["b"].is_null());
        assert_eq!(v["c"], true);
        let s = v.to_compact_string();
        assert_eq!(Value::parse_str(&s).unwrap(), v);
    }

    #[test]
    fn f32_shortest_repr() {
        let v = Value::Number(Number::F32(0.6));
        assert_eq!(v.to_compact_string(), "0.6");
        let v = Value::Number(Number::F32(2.0));
        assert_eq!(v.to_compact_string(), "2.0");
    }

    #[test]
    fn integers_have_no_decimal_point() {
        let v = Value::Number(Number::UInt(42));
        assert_eq!(v.to_compact_string(), "42");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse_str("not json").is_err());
        assert!(Value::parse_str("{\"a\":}").is_err());
        assert!(Value::parse_str("[1,2").is_err());
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("a\"b\\c\nd".to_string());
        let s = v.to_compact_string();
        assert_eq!(Value::parse_str(&s).unwrap(), v);
        let u = Value::parse_str(r#""Aé""#).unwrap();
        assert_eq!(u, "Aé");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::parse_str(r#"{"k":[1,{"n":2}]}"#).unwrap();
        let pretty = v.to_pretty_string();
        assert!(pretty.contains('\n'));
        assert_eq!(Value::parse_str(&pretty).unwrap(), v);
    }
}
