//! Offline shim for `serde_json`: `Value`, `to_value`, `to_string`,
//! `to_string_pretty`, `from_str`, `from_slice`, and the `json!` macro,
//! all built on the `serde` shim's JSON value tree.
#![allow(clippy::all)]

pub use serde::json::{Error, Number, Value};

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Serialize compactly (no whitespace).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_compact_string())
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty_string())
}

/// Parse a JSON document into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = Value::parse_str(s)?;
    T::from_json(&v)
}

/// Parse a JSON document from bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::msg("invalid UTF-8"))?;
    from_str(s)
}

/// Build a [`Value`] from JSON-ish syntax. Object keys must be string
/// literals; values may be nested `{...}`/`[...]` literals or arbitrary
/// serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => {{
        let mut __obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::__json_object!(@obj __obj $($body)+);
        $crate::Value::Object(__obj)
    }};
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($elem:expr),+ $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem).expect("json! value")),+ ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

/// Internal: munch `"key": <value tokens>, ...` object entries. Value
/// tokens accumulate until a top-level comma (commas inside any bracket
/// group are part of the value expression).
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    (@obj $obj:ident) => {};
    (@obj $obj:ident $key:literal : $($rest:tt)*) => {
        $crate::__json_value!(@val $obj $key () $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_value {
    (@val $obj:ident $key:literal ($($val:tt)+) , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!($($val)+)));
        $crate::__json_object!(@obj $obj $($rest)*)
    };
    (@val $obj:ident $key:literal ($($val:tt)+)) => {
        $obj.push(($key.to_string(), $crate::json!($($val)+)));
    };
    (@val $obj:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::__json_value!(@val $obj $key ($($val)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "proc";
        let v = json!({
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": name}
        });
        assert_eq!(v["name"], "process_name");
        assert_eq!(v["pid"], 0u64);
        assert_eq!(v["args"]["name"], "proc");
    }

    #[test]
    fn json_macro_exprs_and_arrays() {
        let x = 2.0f64;
        let v = json!({ "a": x * 1e6, "b": [1, 2, 3], "c": null, "d": format!("{}!", 5) });
        assert_eq!(v["a"], 2e6);
        assert_eq!(v["b"][2], 3.0);
        assert!(v["c"].is_null());
        assert_eq!(v["d"], "5!");
    }

    #[test]
    fn to_string_and_back() {
        let v = json!({ "k": 1.5 });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back["k"], 1.5);
    }

    #[test]
    fn from_slice_errors_on_garbage() {
        assert!(from_slice::<Value>(b"not json").is_err());
    }
}
