//! Offline shim for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Only the surface this workspace uses is provided: `unbounded`, `bounded`,
//! cloneable `Sender`, `Receiver::recv`/`try_recv`/`recv_timeout`. Semantics
//! match for that subset (MPSC topology; the workspace never shares a
//! `Receiver` across threads, so crossbeam's MPMC capability is not needed).
#![allow(clippy::all)]

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

enum SenderInner<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

pub struct Sender<T> {
    inner: SenderInner<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let inner = match &self.inner {
            SenderInner::Unbounded(s) => SenderInner::Unbounded(s.clone()),
            SenderInner::Bounded(s) => SenderInner::Bounded(s.clone()),
        };
        Sender { inner }
    }
}

impl<T> Sender<T> {
    /// Send a value, blocking if the channel is bounded and full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderInner::Unbounded(s) => s.send(value),
            SenderInner::Bounded(s) => s.send(value),
        }
    }
}

pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Block until a value arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }

    /// Block until a value arrives, all senders disconnect, or `timeout`
    /// elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout)
    }

    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.inner.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// Channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            inner: SenderInner::Unbounded(tx),
        },
        Receiver { inner: rx },
    )
}

/// Channel holding at most `cap` in-flight messages (`cap == 0` is a
/// rendezvous channel, as in crossbeam).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (
        Sender {
            inner: SenderInner::Bounded(tx),
        },
        Receiver { inner: rx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_one_slot() {
        let (tx, rx) = bounded(1);
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
