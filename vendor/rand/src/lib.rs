//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tiny API-compatible subset of `rand` 0.8: `rngs::StdRng`, `SeedableRng`,
//! and `Rng::gen` for the primitive types the codecs draw. The generator is
//! SplitMix64 — deterministic, seedable, and statistically good enough for
//! the stochastic-rounding use in the quantizers (only distribution *shape*
//! matters there, not the exact stream of the upstream StdRng).
#![allow(clippy::all)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution: floats uniform in
/// [0, 1), integers uniform over their range, bools fair.
pub trait Standard {
    fn from_rng_u64(bits: u64) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn from_rng_u64(bits: u64) -> f32 {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn from_rng_u64(bits: u64) -> f64 {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng_u64(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng_u64(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng_u64(bits: u64) -> u64 {
        bits
    }
}

/// High-level sampling interface (subset of rand's `Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng_u64(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>().to_bits(), b.gen::<f32>().to_bits());
        }
    }

    #[test]
    fn f32_uniform_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x = r.gen::<f32>();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
