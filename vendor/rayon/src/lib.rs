//! Offline shim for `rayon`: implements `par_chunks_mut(..).enumerate()
//! .for_each(..)` — the only rayon surface this workspace touches — with
//! `std::thread::scope`, so the matmul row-block kernel stays genuinely
//! parallel without the external dependency.
#![allow(clippy::all)]

pub mod prelude {
    pub use crate::ParallelSliceMut;
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| op(chunk));
    }
}

pub struct EnumerateParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumerateParChunksMut<'_, T> {
    /// Fan the chunks out over `available_parallelism` scoped threads.
    /// Work is dealt round-robin, which is fine for the uniform chunk
    /// costs seen in the matmul row blocks.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> =
            self.slice.chunks_mut(self.chunk_size).enumerate().collect();
        let n_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        if n_threads <= 1 || chunks.len() <= 1 {
            for item in chunks {
                op(item);
            }
            return;
        }
        let op = &op;
        let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..n_threads.min(chunks.len()))
            .map(|_| Vec::new())
            .collect();
        let n_buckets = buckets.len();
        for (i, item) in chunks.into_iter().enumerate() {
            buckets[i % n_buckets].push(item);
        }
        std::thread::scope(|s| {
            for bucket in buckets {
                s.spawn(move || {
                    for item in bucket {
                        op(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_see_correct_indices() {
        let mut data = vec![0usize; 1000];
        data.par_chunks_mut(64)
            .enumerate()
            .for_each(|(blk, chunk)| {
                for v in chunk.iter_mut() {
                    *v = blk;
                }
            });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 64);
        }
    }

    #[test]
    fn handles_single_chunk() {
        let mut data = vec![1.0f32; 8];
        data.par_chunks_mut(64).enumerate().for_each(|(_, chunk)| {
            for v in chunk.iter_mut() {
                *v *= 2.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }
}
