//! Offline shim for `serde_derive`.
//!
//! Emits impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (JSON-value based) for the item shapes this workspace derives
//! on: named-field structs (optionally with lifetime generics), unit-only
//! enums, and enums mixing unit and named-field (struct) variants —
//! always using serde's externally-tagged representation. Tuple structs,
//! tuple variants, type generics, and `#[serde(...)]` attributes are not
//! supported and fail loudly at expansion time.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("derived Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("derived Deserialize impl parses")
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(field names)` for struct variants.
    fields: Option<Vec<String>>,
}

struct Item {
    is_struct: bool,
    name: String,
    /// Raw generics text including the angle brackets (e.g. "<'a>"), or
    /// empty. Only lifetime parameters are supported.
    generics: String,
    fields: Vec<String>,
    variants: Vec<Variant>,
}

fn parse_item(input: TokenStream) -> Item {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility ahead of the struct/enum keyword.
    let is_struct = loop {
        match tts.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tts.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break true,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break false,
            Some(_) => i += 1,
            None => panic!("serde shim derive: no struct or enum found"),
        }
    };
    i += 1;
    let name = match &tts[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;

    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tts.get(i) {
        if p.as_char() == '<' {
            let start = i;
            let mut depth = 0i32;
            loop {
                if let Some(TokenTree::Punct(p)) = tts.get(i) {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                i += 1;
                if i >= tts.len() {
                    panic!("serde shim derive: unbalanced generics");
                }
            }
            generics = tts[start..i]
                .iter()
                .cloned()
                .collect::<TokenStream>()
                .to_string();
            if generics.contains(|c: char| c.is_alphabetic()) && !generics.contains('\'') {
                panic!("serde shim derive: type generics are not supported");
            }
        }
    }

    let body = loop {
        match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple structs are not supported");
            }
            Some(_) => i += 1,
            None => panic!("serde shim derive: missing item body"),
        }
    };

    if is_struct {
        Item {
            is_struct,
            name,
            generics,
            fields: parse_fields(body),
            variants: Vec::new(),
        }
    } else {
        Item {
            is_struct,
            name,
            generics,
            fields: Vec::new(),
            variants: parse_variants(body),
        }
    }
}

/// Parse `name: Type, ...` field lists, skipping attributes, visibility,
/// and type tokens (commas inside `<...>` or any bracketed group do not
/// split fields).
fn parse_fields(ts: TokenStream) -> Vec<String> {
    let tts: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tts.len() {
        while matches!(tts.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(tts.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tts.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(id)) = tts.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 2; // name and ':'
        let mut angle_depth = 0i32;
        while i < tts.len() {
            if let TokenTree::Punct(p) = &tts[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let tts: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tts.len() {
        while matches!(tts.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tts.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let mut fields = None;
        match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_fields(g.stream()));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple enum variants are not supported");
            }
            _ => {}
        }
        while i < tts.len() && !matches!(&tts[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let g = &item.generics;
    let body = if item.is_struct {
        let mut entries = String::new();
        for f in &item.fields {
            entries.push_str(&format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_json(&self.{f})),"
            ));
        }
        format!("::serde::json::Value::Object(vec![{entries}])")
    } else {
        let mut arms = String::new();
        for v in &item.variants {
            let vname = &v.name;
            match &v.fields {
                None => arms.push_str(&format!(
                    "{name}::{vname} => ::serde::json::Value::String(\
                     ::std::string::String::from(\"{vname}\")),"
                )),
                Some(fields) => {
                    let bindings = fields.join(", ");
                    let mut entries = String::new();
                    for f in fields {
                        entries.push_str(&format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_json({f})),"
                        ));
                    }
                    arms.push_str(&format!(
                        "{name}::{vname} {{ {bindings} }} => \
                         ::serde::json::Value::Object(vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::json::Value::Object(vec![{entries}]))]),"
                    ));
                }
            }
        }
        format!("match self {{ {arms} }}")
    };
    format!(
        "impl{g} ::serde::Serialize for {name}{g} {{\n\
         fn to_json(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    assert!(
        item.generics.is_empty(),
        "serde shim derive: Deserialize with generics is not supported"
    );
    let body = if item.is_struct {
        let mut inits = String::new();
        for f in &item.fields {
            inits.push_str(&format!(
                "{f}: ::serde::Deserialize::from_json(::serde::json::field(v, \"{f}\"))?,"
            ));
        }
        format!(
            "if !matches!(v, ::serde::json::Value::Object(_)) {{\n\
             return Err(::serde::json::Error::msg(\"expected object for {name}\"));\n\
             }}\n\
             Ok({name} {{ {inits} }})"
        )
    } else {
        let mut unit_arms = String::new();
        let mut tagged_arms = String::new();
        for v in &item.variants {
            let vname = &v.name;
            match &v.fields {
                None => unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),")),
                Some(fields) => {
                    let mut inits = String::new();
                    for f in fields {
                        inits.push_str(&format!(
                            "{f}: ::serde::Deserialize::from_json(\
                             ::serde::json::field(__inner, \"{f}\"))?,"
                        ));
                    }
                    tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname} {{ {inits} }}),"
                    ));
                }
            }
        }
        format!(
            "match v {{\n\
             ::serde::json::Value::String(__s) => match __s.as_str() {{\n\
             {unit_arms}\n\
             __other => Err(::serde::json::Error::msg(\
             format!(\"unknown {name} variant {{__other:?}}\"))),\n\
             }},\n\
             ::serde::json::Value::Object(__entries) if __entries.len() == 1 => {{\n\
             let (__tag, __inner) = &__entries[0];\n\
             match __tag.as_str() {{\n\
             {tagged_arms}\n\
             __other => Err(::serde::json::Error::msg(\
             format!(\"unknown {name} variant {{__other:?}}\"))),\n\
             }}\n\
             }},\n\
             _ => Err(::serde::json::Error::msg(\"expected string or 1-key object for {name}\")),\n\
             }}"
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json(v: &::serde::json::Value) -> \
         ::std::result::Result<Self, ::serde::json::Error> {{ {body} }}\n\
         }}"
    )
}
