//! Property-based integration tests spanning crates: the parameter
//! server, the compression codecs and the training stack must agree on
//! invariants for arbitrary inputs.

use cdsgd_compress::{Compressed, GradientCompressor, TwoBitQuantizer};
use cdsgd_net::wire::{pull_reply_frame_bytes, push_frame_bytes};
use cdsgd_ps::{ParamServer, ServerConfig};
use proptest::prelude::*;

proptest! {
    // Proptest spawns threads per case; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn server_applies_eq10_for_any_gradients(
        grads in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 4..=4), 1..4),
        lr in 0.01f32..1.0,
    ) {
        // Push each round's gradient from one worker; final weights must
        // equal -lr * sum(grads) elementwise.
        let ps = ParamServer::start(vec![vec![0.0; 4]], ServerConfig::new(1, lr));
        let c = ps.client();
        for (r, g) in grads.iter().enumerate() {
            c.push(0, 0, Compressed::Raw(g.clone())).unwrap();
            c.pull(0, r as u64 + 1).unwrap();
        }
        let (w, versions) = c.snapshot().unwrap();
        prop_assert_eq!(versions[0], grads.len() as u64);
        for i in 0..4 {
            let expect: f32 = -lr * grads.iter().map(|g| g[i]).sum::<f32>();
            prop_assert!((w[0][i] - expect).abs() < 1e-4 * (1.0 + expect.abs()));
        }
        ps.shutdown();
    }

    #[test]
    fn aggregation_is_worker_order_invariant(
        ga in prop::collection::vec(-2.0f32..2.0, 3..=3),
        gb in prop::collection::vec(-2.0f32..2.0, 3..=3),
    ) {
        // Whether worker 0 or worker 1 pushes first must not matter.
        let run = |first_a: bool| {
            let ps = ParamServer::start(vec![vec![0.0; 3]], ServerConfig::new(2, 0.5));
            let c = ps.client();
            if first_a {
                c.push(0, 0, Compressed::Raw(ga.clone())).unwrap();
                c.push(1, 0, Compressed::Raw(gb.clone())).unwrap();
            } else {
                c.push(1, 0, Compressed::Raw(gb.clone())).unwrap();
                c.push(0, 0, Compressed::Raw(ga.clone())).unwrap();
            }
            let w = c.pull(0, 1).unwrap();
            ps.shutdown();
            w
        };
        prop_assert_eq!(run(true), run(false));
    }

    #[test]
    fn compressed_push_equals_decode_then_raw_push(
        g in prop::collection::vec(-2.0f32..2.0, 6..=6),
        thr in 0.1f32..1.0,
    ) {
        // Pushing a 2-bit payload must move the weights exactly as much
        // as pushing its decoded f32 values raw.
        let mut q = TwoBitQuantizer::new(thr);
        let payload = q.compress(0, &g);
        let mut decoded = vec![0.0f32; g.len()];
        cdsgd_compress::decompress(&payload, &mut decoded);

        let ps1 = ParamServer::start(vec![vec![0.0; 6]], ServerConfig::new(1, 0.3));
        let c1 = ps1.client();
        c1.push(0, 0, payload).unwrap();
        let w_compressed = c1.pull(0, 1).unwrap();
        ps1.shutdown();

        let ps2 = ParamServer::start(vec![vec![0.0; 6]], ServerConfig::new(1, 0.3));
        let c2 = ps2.client();
        c2.push(0, 0, Compressed::Raw(decoded)).unwrap();
        let w_raw = c2.pull(0, 1).unwrap();
        ps2.shutdown();

        prop_assert_eq!(w_compressed, w_raw);
    }

    #[test]
    fn traffic_counter_matches_payload_sizes(
        n in 1usize..64,
        rounds in 1usize..4,
    ) {
        // The server charges the exact encoded frame size (the bytes
        // `cdsgd-net` would put on a socket), not the bare payload.
        let ps = ParamServer::start(vec![vec![0.0; n]], ServerConfig::new(1, 0.1));
        let c = ps.client();
        let mut q = TwoBitQuantizer::new(0.5);
        let grad = vec![0.7f32; n];
        let mut expected = 0u64;
        for r in 0..rounds {
            let payload = q.compress(0, &grad);
            expected += push_frame_bytes(payload.wire_bytes()) as u64;
            c.push(0, 0, payload).unwrap();
            c.pull(0, r as u64 + 1).unwrap();
        }
        prop_assert_eq!(ps.stats().bytes_pushed(), expected);
        prop_assert_eq!(
            ps.stats().bytes_pulled(),
            (rounds * pull_reply_frame_bytes(n)) as u64
        );
        ps.shutdown();
    }
}
