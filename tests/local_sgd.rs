//! Integration tests for the Local SGD / K-AVG baseline family (paper §1:
//! "Post-local SGD, K-AVG and Periodic Averaging makes every worker
//! evolve a local model by performing local updates before
//! communication").

use cd_sgd::{Algorithm, TrainConfig, Trainer, TrainingHistory};
use cdsgd_data::toy;
use cdsgd_nn::models;

fn run(algo: Algorithm, epochs: usize) -> TrainingHistory {
    let data = toy::gaussian_blobs(480, 8, 4, 0.6, 41);
    let (train, test) = data.split(0.8);
    let cfg = TrainConfig::new(algo, 2)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(epochs)
        .with_seed(41);
    Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test)).run()
}

#[test]
fn h1_with_matching_rates_equals_ssgd_exactly() {
    // H = 1 and local_lr == global_lr: every step syncs and the pushed
    // accumulator is the single gradient, so Local SGD is S-SGD.
    let ssgd = run(Algorithm::SSgd, 2);
    let local = run(
        Algorithm::LocalSgd {
            local_lr: 0.2,
            sync_period: 1,
        },
        2,
    );
    assert_eq!(ssgd.final_weights, local.final_weights);
}

#[test]
fn local_sgd_learns_blobs() {
    for h in [2usize, 4, 8] {
        let hist = run(
            Algorithm::LocalSgd {
                local_lr: 0.2,
                sync_period: h,
            },
            8,
        );
        let acc = hist.final_test_acc().unwrap();
        assert!(acc > 0.85, "H={h}: acc {acc}");
    }
}

#[test]
fn sync_period_divides_push_traffic() {
    let h1 = run(
        Algorithm::LocalSgd {
            local_lr: 0.2,
            sync_period: 1,
        },
        3,
    );
    let h4 = run(
        Algorithm::LocalSgd {
            local_lr: 0.2,
            sync_period: 4,
        },
        3,
    );
    let b1 = h1.epochs.last().unwrap().cumulative_push_bytes as f64;
    let b4 = h4.epochs.last().unwrap().cumulative_push_bytes as f64;
    let ratio = b1 / b4;
    assert!(
        (3.0..=5.0).contains(&ratio),
        "H=4 should push ~4x less, ratio {ratio}"
    );
}

#[test]
fn larger_h_trades_accuracy_for_communication() {
    // On equal epochs, very infrequent syncing must not *improve* the
    // final loss (workers drift apart) — monotone-ish trade-off shape.
    let tight = run(
        Algorithm::LocalSgd {
            local_lr: 0.2,
            sync_period: 1,
        },
        6,
    );
    let loose = run(
        Algorithm::LocalSgd {
            local_lr: 0.2,
            sync_period: 12,
        },
        6,
    );
    let (t, l) = (
        tight.final_train_loss().unwrap(),
        loose.final_train_loss().unwrap(),
    );
    assert!(t <= l * 1.5 + 0.05, "tight {t} vs loose {l}");
}

#[test]
fn accumulator_carries_across_epoch_boundaries() {
    // 24 iterations/epoch per worker with H=5 leaves a partial window at
    // each epoch end; the accumulator must carry over, and the total push
    // count must equal floor(total_rounds / H) per worker.
    let hist = run(
        Algorithm::LocalSgd {
            local_lr: 0.2,
            sync_period: 5,
        },
        3,
    );
    // 480*0.8 = 384 samples, 2 workers -> 192 each, batch 16 -> 12
    // iters/epoch, 36 rounds total, 7 syncs; 2 keys per sync... traffic
    // check instead: pushes happened (nonzero) and training progressed.
    let bytes = hist.epochs.last().unwrap().cumulative_push_bytes;
    assert!(bytes > 0);
    // The model has 2 dense layers = 4 keys; each sync pushes 4 payloads
    // per worker; total bytes = syncs * workers * param_bytes.
    let param_bytes: u64 = hist.final_weights.iter().map(|w| 4 * w.len() as u64).sum();
    let syncs = bytes / (2 * param_bytes);
    assert_eq!(syncs, 7, "expected floor(36/5)=7 syncs, got {syncs}");
}
