//! Exact-semantics integration tests: the threaded Trainer + parameter
//! server must produce *bit-identical* weights to a sequential reference
//! implementation of the paper's update rules (eqs. 1, 10, 11 and
//! Algorithm 1). These tests re-derive the math by hand, so any plumbing
//! bug in the PS versioning, push/pull ordering, warm-up handoff or the
//! deferred pull shows up as a weight mismatch.

use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cdsgd_compress::{decompress, GradientCompressor, TwoBitQuantizer};
use cdsgd_data::{toy, Dataset};
use cdsgd_nn::{models, Layer, Mode, Sequential, SoftmaxCrossEntropy};
use cdsgd_tensor::SmallRng64;

const WORKER_RNG_MUL: u64 = 0xA076_1D64_78BD_642F;

/// Replicate the worker's per-epoch batch stream (same shuffle RNG).
fn worker_batches(
    shard: &Dataset,
    worker_id: usize,
    seed: u64,
    epochs: usize,
    batch_size: usize,
    ipe: usize,
) -> Vec<(cdsgd_tensor::Tensor, Vec<usize>)> {
    let mut rng = SmallRng64::new(seed ^ (worker_id as u64 + 1).wrapping_mul(WORKER_RNG_MUL));
    let mut out = Vec::new();
    for _ in 0..epochs {
        let mut s = shard.clone();
        s.shuffle(&mut rng);
        for b in s.batches(batch_size).take(ipe) {
            out.push((b.x, b.y));
        }
    }
    out
}

fn build_model(seed: u64) -> Sequential {
    let mut rng = SmallRng64::new(seed);
    models::mlp(&[6, 10, 3], &mut rng)
}

fn setup() -> (Dataset, TrainConfig) {
    let data = toy::gaussian_blobs(96, 6, 3, 0.5, 17);
    let cfg = TrainConfig::new(Algorithm::SSgd, 1)
        .with_lr(0.1)
        .with_batch_size(8)
        .with_epochs(2)
        .with_seed(123);
    (data, cfg)
}

#[test]
fn ssgd_single_worker_matches_manual_sgd_exactly() {
    let (data, cfg) = setup();
    let history = Trainer::new(
        cfg.clone(),
        |rng| models::mlp(&[6, 10, 3], rng),
        data.clone(),
        None,
    )
    .run();

    // Manual reference: plain SGD over the identical batch stream.
    let mut model = build_model(cfg.seed);
    let mut weights = model.export_params();
    let ipe = data.len() / cfg.batch_size;
    let loss_fn = SoftmaxCrossEntropy;
    for (x, y) in worker_batches(&data, 0, cfg.seed, cfg.epochs, cfg.batch_size, ipe) {
        model.import_params(&weights);
        let logits = model.forward(&x, Mode::Train);
        let (_, dl) = loss_fn.loss_and_grad(&logits, &y);
        model.backward(&dl);
        let grads = model.export_grads();
        for (w, g) in weights.iter_mut().zip(&grads) {
            for (wi, gi) in w.iter_mut().zip(g) {
                *wi -= cfg.global_lr * gi; // eq. 1 with N = 1
            }
        }
    }
    assert_eq!(history.final_weights, weights, "S-SGD deviates from eq. 1");
}

#[test]
fn cd_sgd_single_worker_matches_algorithm1_exactly() {
    let (data, base_cfg) = setup();
    let warmup = 3usize;
    let k = 2usize;
    let local_lr = 0.05f32;
    let threshold = 0.2f32;
    let cfg = TrainConfig {
        algo: Algorithm::cd_sgd(local_lr, threshold, k, warmup),
        ..base_cfg
    };
    let history = Trainer::new(
        cfg.clone(),
        |rng| models::mlp(&[6, 10, 3], rng),
        data.clone(),
        None,
    )
    .run();

    // Manual reference implementing Algorithm 1 verbatim.
    let mut model = build_model(cfg.seed);
    let mut global = model.export_params(); // server weights W
    let mut w_loc = global.clone(); // local weights (== W during warm-up)
    let mut quantizer = TwoBitQuantizer::new(threshold);
    let loss_fn = SoftmaxCrossEntropy;
    let ipe = data.len() / cfg.batch_size;
    let mut prev_global = global.clone(); // W_r pulled at round end

    for (round, (x, y)) in worker_batches(&data, 0, cfg.seed, cfg.epochs, cfg.batch_size, ipe)
        .into_iter()
        .enumerate()
    {
        model.import_params(&w_loc);
        let logits = model.forward(&x, Mode::Train);
        let (_, dl) = loss_fn.loss_and_grad(&logits, &y);
        model.backward(&dl);
        let grads = model.export_grads();

        // Server side (eq. 10, N = 1), with 2-bit compression in the
        // compression iterations of the formal phase.
        let compress = round >= warmup && (round - warmup) % k != 0;
        for (key, (w, g)) in global.iter_mut().zip(&grads).enumerate() {
            if compress {
                let payload = quantizer.compress(key, g);
                let mut decoded = vec![0.0f32; g.len()];
                decompress(&payload, &mut decoded);
                for (wi, di) in w.iter_mut().zip(&decoded) {
                    *wi -= cfg.global_lr * di;
                }
            } else {
                for (wi, gi) in w.iter_mut().zip(g) {
                    *wi -= cfg.global_lr * gi;
                }
            }
        }

        // Worker side: warm-up adopts the new globals; the formal phase
        // builds W^loc_{r+1} = W_r − lr_loc·grad_r (eq. 11) where W_r is
        // the *previous* round's global weights.
        if round + 1 <= warmup {
            w_loc = global.clone();
        } else {
            w_loc = prev_global.clone();
            for (w, g) in w_loc.iter_mut().zip(&grads) {
                for (wi, gi) in w.iter_mut().zip(g) {
                    *wi -= local_lr * gi;
                }
            }
        }
        prev_global = global.clone();
    }
    assert_eq!(
        history.final_weights, global,
        "CD-SGD deviates from Algorithm 1 / eqs. 10-11"
    );
}

#[test]
fn od_sgd_is_cd_sgd_with_k1_and_no_warmup() {
    // With k = 1 every formal iteration is a correction (raw push), so
    // CD-SGD degenerates to OD-SGD exactly.
    let (data, base_cfg) = setup();
    let od = TrainConfig {
        algo: Algorithm::OdSgd { local_lr: 0.05 },
        ..base_cfg.clone()
    };
    let cd = TrainConfig {
        algo: Algorithm::cd_sgd(0.05, 0.5, 1, 0),
        ..base_cfg
    };
    let h_od = Trainer::new(od, |rng| models::mlp(&[6, 10, 3], rng), data.clone(), None).run();
    let h_cd = Trainer::new(cd, |rng| models::mlp(&[6, 10, 3], rng), data, None).run();
    assert_eq!(h_od.final_weights, h_cd.final_weights);
}

#[test]
fn training_is_deterministic_across_runs() {
    let (data, base_cfg) = setup();
    let cfg = TrainConfig {
        algo: Algorithm::cd_sgd(0.05, 0.2, 2, 2),
        num_workers: 2,
        ..base_cfg
    };
    let run = || {
        Trainer::new(
            cfg.clone(),
            |rng| models::mlp(&[6, 10, 3], rng),
            data.clone(),
            None,
        )
        .run()
    };
    let a = run();
    let b = run();
    // The server pops worker queues in fixed order, so even multi-worker
    // training is bit-deterministic.
    assert_eq!(a.final_weights, b.final_weights);
    let la: Vec<f32> = a.epochs.iter().map(|e| e.train_loss).collect();
    let lb: Vec<f32> = b.epochs.iter().map(|e| e.train_loss).collect();
    assert_eq!(la, lb);
}

#[test]
fn two_workers_average_gradients_per_eq10() {
    // One round, two workers, no shuffle effects (one batch per shard):
    // W_1 = W_0 − η/2 (g_a + g_b).
    let data = toy::gaussian_blobs(16, 6, 3, 0.5, 23);
    let cfg = TrainConfig::new(Algorithm::SSgd, 2)
        .with_lr(0.1)
        .with_batch_size(8)
        .with_epochs(1)
        .with_seed(55);
    let history = Trainer::new(
        cfg.clone(),
        |rng| models::mlp(&[6, 10, 3], rng),
        data.clone(),
        None,
    )
    .run();

    let loss_fn = SoftmaxCrossEntropy;
    let mut model = build_model(cfg.seed);
    let w0 = model.export_params();
    let mut sum_grads: Vec<Vec<f32>> = w0.iter().map(|w| vec![0.0; w.len()]).collect();
    for worker in 0..2 {
        let shard = data.shard(worker, 2);
        let batches = worker_batches(&shard, worker, cfg.seed, 1, 8, 1);
        let (x, y) = &batches[0];
        model.import_params(&w0);
        let logits = model.forward(x, Mode::Train);
        let (_, dl) = loss_fn.loss_and_grad(&logits, y);
        model.backward(&dl);
        for (s, g) in sum_grads.iter_mut().zip(model.export_grads()) {
            for (si, gi) in s.iter_mut().zip(g) {
                *si += gi;
            }
        }
    }
    let expect: Vec<Vec<f32>> = w0
        .iter()
        .zip(&sum_grads)
        .map(|(w, s)| {
            w.iter()
                .zip(s)
                .map(|(wi, si)| wi - 0.1 / 2.0 * si)
                .collect()
        })
        .collect();
    for (got, want) in history.final_weights.iter().zip(&expect) {
        for (a, b) in got.iter().zip(want) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
