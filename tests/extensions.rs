//! Integration tests for the extension features layered on the paper's
//! algorithm: pluggable codecs, adaptive thresholds, delay compensation
//! and the emulated network.

use cd_sgd::{Algorithm, Codec, TrainConfig, Trainer, TrainingHistory};
use cdsgd_data::toy;
use cdsgd_nn::models;

fn run(algo: Algorithm, epochs: usize) -> TrainingHistory {
    let data = toy::gaussian_blobs(480, 8, 4, 0.6, 13);
    let (train, test) = data.split(0.8);
    let cfg = TrainConfig::new(algo, 2)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(epochs)
        .with_seed(13);
    Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test)).run()
}

#[test]
fn cd_sgd_learns_with_every_codec() {
    for codec in [
        Codec::TwoBit { threshold: 0.05 },
        Codec::OneBit,
        Codec::TopK { ratio: 0.1 },
        Codec::Qsgd { levels: 4, seed: 1 },
        Codec::AdaptiveTwoBit { scale: 1.0 },
    ] {
        let name = codec.name();
        let h = run(Algorithm::cd_sgd_with(0.05, codec, 2, 10), 8);
        let acc = h.final_test_acc().unwrap();
        assert!(acc > 0.8, "codec {name}: acc {acc}");
    }
}

#[test]
fn adaptive_threshold_needs_no_tuning() {
    // Fixed threshold 5.0 is hostile on this problem (gradients ≪ 5);
    // the adaptive codec self-scales and converges fine with the same
    // "wrong" order of magnitude in its knob.
    let fixed = run(Algorithm::cd_sgd(0.05, 5.0, 1000, 0), 6);
    let adaptive = run(
        Algorithm::cd_sgd_with(0.05, Codec::AdaptiveTwoBit { scale: 1.0 }, 1000, 0),
        6,
    );
    let (f, a) = (
        fixed.final_train_loss().unwrap(),
        adaptive.final_train_loss().unwrap(),
    );
    // k=1000 means effectively no corrections, isolating the codec.
    assert!(
        a < f * 0.7,
        "adaptive {a} should beat hostile fixed threshold {f}"
    );
}

#[test]
fn delay_compensation_does_not_break_convergence() {
    let plain = run(Algorithm::cd_sgd(0.05, 0.05, 2, 10), 8);
    let dc = run(
        Algorithm::cd_sgd(0.05, 0.05, 2, 10).with_delay_compensation(0.04),
        8,
    );
    let (p, d) = (
        plain.final_test_acc().unwrap(),
        dc.final_test_acc().unwrap(),
    );
    assert!(d > 0.8, "DC variant acc {d}");
    assert!((p - d).abs() < 0.15, "plain {p} vs DC {d}");
}

#[test]
fn delay_compensation_changes_the_pushed_gradients() {
    // λ > 0 must actually alter training (different final weights).
    let plain = run(Algorithm::cd_sgd(0.05, 0.05, 2, 5), 2);
    let dc = run(
        Algorithm::cd_sgd(0.05, 0.05, 2, 5).with_delay_compensation(0.1),
        2,
    );
    assert_ne!(plain.final_weights, dc.final_weights);
}

#[test]
fn emulated_network_slows_training_but_preserves_results() {
    let data = toy::gaussian_blobs(120, 6, 3, 0.5, 21);
    let mk = |bps: Option<f64>| {
        let mut cfg = TrainConfig::new(Algorithm::SSgd, 2)
            .with_lr(0.2)
            .with_batch_size(10)
            .with_epochs(2)
            .with_seed(21);
        if let Some(b) = bps {
            cfg = cfg.with_emulated_network(b);
        }
        Trainer::new(cfg, |rng| models::mlp(&[6, 8, 3], rng), data.clone(), None).run()
    };
    let fast = mk(None);
    let slow = mk(Some(200_000.0)); // 200 KB/s — glacial
                                    // Identical math...
    assert_eq!(fast.final_weights, slow.final_weights);
    // ...but measurably slower wall clock.
    let tf: f64 = fast.epochs.iter().map(|e| e.epoch_time_s).sum();
    let ts: f64 = slow.epochs.iter().map(|e| e.epoch_time_s).sum();
    assert!(ts > tf * 2.0, "slow {ts} vs fast {tf}");
}

#[test]
fn profiling_records_all_op_kinds_for_delayed_algorithms() {
    use cd_sgd::profile::OpKind;
    let data = toy::gaussian_blobs(120, 6, 3, 0.5, 22);
    let cfg = TrainConfig::new(Algorithm::cd_sgd(0.05, 0.1, 2, 3), 2)
        .with_lr(0.2)
        .with_batch_size(10)
        .with_epochs(2)
        .with_seed(22)
        .with_profiling(true);
    let h = Trainer::new(cfg, |rng| models::mlp(&[6, 8, 3], rng), data, None).run();
    let events = h.profile.expect("profiling on");
    for kind in [
        OpKind::Forward,
        OpKind::Backward,
        OpKind::Compress,
        OpKind::LocalUpdate,
        OpKind::PullWait,
    ] {
        assert!(
            events.iter().any(|e| e.op == kind),
            "missing {kind:?} events"
        );
    }
    // Events from both workers.
    assert!(events.iter().any(|e| e.worker == 0));
    assert!(events.iter().any(|e| e.worker == 1));
}
