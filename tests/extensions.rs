//! Integration tests for the extension features layered on the paper's
//! algorithm: pluggable codecs, adaptive thresholds, delay compensation,
//! the emulated network, and the two strategy/server-opt extension leaves
//! (EF-blockSGD and Nesterov).

use cd_sgd::{Algorithm, Codec, ServerOptKind, TrainConfig, Trainer, TrainingHistory};
use cdsgd_data::toy;
use cdsgd_nn::models;
use cdsgd_ps::{InProcessBackend, ParamServer};

fn run(algo: Algorithm, epochs: usize) -> TrainingHistory {
    let data = toy::gaussian_blobs(480, 8, 4, 0.6, 13);
    let (train, test) = data.split(0.8);
    let cfg = TrainConfig::new(algo, 2)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(epochs)
        .with_seed(13);
    Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test)).run()
}

#[test]
fn cd_sgd_learns_with_every_codec() {
    for codec in [
        Codec::TwoBit { threshold: 0.05 },
        Codec::OneBit,
        Codec::TopK { ratio: 0.1 },
        Codec::Qsgd { levels: 4, seed: 1 },
        Codec::AdaptiveTwoBit { scale: 1.0 },
    ] {
        let name = codec.name();
        let h = run(Algorithm::cd_sgd_with(0.05, codec, 2, 10), 8);
        let acc = h.final_test_acc().unwrap();
        assert!(acc > 0.8, "codec {name}: acc {acc}");
    }
}

#[test]
fn adaptive_threshold_needs_no_tuning() {
    // Fixed threshold 5.0 is hostile on this problem (gradients ≪ 5);
    // the adaptive codec self-scales and converges fine with the same
    // "wrong" order of magnitude in its knob.
    let fixed = run(Algorithm::cd_sgd(0.05, 5.0, 1000, 0), 6);
    let adaptive = run(
        Algorithm::cd_sgd_with(0.05, Codec::AdaptiveTwoBit { scale: 1.0 }, 1000, 0),
        6,
    );
    let (f, a) = (
        fixed.final_train_loss().unwrap(),
        adaptive.final_train_loss().unwrap(),
    );
    // k=1000 means effectively no corrections, isolating the codec.
    assert!(
        a < f * 0.7,
        "adaptive {a} should beat hostile fixed threshold {f}"
    );
}

#[test]
fn delay_compensation_does_not_break_convergence() {
    let plain = run(Algorithm::cd_sgd(0.05, 0.05, 2, 10), 8);
    let dc = run(
        Algorithm::cd_sgd(0.05, 0.05, 2, 10).with_delay_compensation(0.04),
        8,
    );
    let (p, d) = (
        plain.final_test_acc().unwrap(),
        dc.final_test_acc().unwrap(),
    );
    assert!(d > 0.8, "DC variant acc {d}");
    assert!((p - d).abs() < 0.15, "plain {p} vs DC {d}");
}

#[test]
fn delay_compensation_changes_the_pushed_gradients() {
    // λ > 0 must actually alter training (different final weights).
    let plain = run(Algorithm::cd_sgd(0.05, 0.05, 2, 5), 2);
    let dc = run(
        Algorithm::cd_sgd(0.05, 0.05, 2, 5).with_delay_compensation(0.1),
        2,
    );
    assert_ne!(plain.final_weights, dc.final_weights);
}

#[test]
fn emulated_network_slows_training_but_preserves_results() {
    let data = toy::gaussian_blobs(120, 6, 3, 0.5, 21);
    let mk = |bps: Option<f64>| {
        let mut cfg = TrainConfig::new(Algorithm::SSgd, 2)
            .with_lr(0.2)
            .with_batch_size(10)
            .with_epochs(2)
            .with_seed(21);
        if let Some(b) = bps {
            cfg = cfg.with_emulated_network(b);
        }
        Trainer::new(cfg, |rng| models::mlp(&[6, 8, 3], rng), data.clone(), None).run()
    };
    let fast = mk(None);
    let slow = mk(Some(200_000.0)); // 200 KB/s — glacial
                                    // Identical math...
    assert_eq!(fast.final_weights, slow.final_weights);
    // ...but measurably slower wall clock.
    let tf: f64 = fast.epochs.iter().map(|e| e.epoch_time_s).sum();
    let ts: f64 = slow.epochs.iter().map(|e| e.epoch_time_s).sum();
    assert!(ts > tf * 2.0, "slow {ts} vs fast {tf}");
}

/// Build a trainer and run it explicitly through `Trainer::run_with` on
/// the in-process backend — the entry point the strategy/server-opt
/// extension leaves are required to work end-to-end through.
fn run_in_process(cfg: TrainConfig) -> TrainingHistory {
    let data = toy::gaussian_blobs(480, 8, 4, 0.6, 13);
    let (train, test) = data.split(0.8);
    Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test))
        .run_with(|init, server_cfg| {
            Ok(Box::new(InProcessBackend::new(ParamServer::start(
                init, server_cfg,
            ))))
        })
        .expect("in-process run")
}

fn base_cfg(algo: Algorithm) -> TrainConfig {
    TrainConfig::new(algo, 2)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(8)
        .with_seed(13)
}

#[test]
fn ef_blocksgd_strategy_trains_end_to_end() {
    // The first new UpdateStrategy leaf: blockwise momentum with error
    // feedback, pushing 1-bit payloads every iteration.
    let h = run_in_process(base_cfg(Algorithm::ef_sgd(0.9)).with_lr(0.05));
    assert!(
        h.epochs.last().unwrap().train_loss < h.epochs[0].train_loss,
        "EF-blockSGD loss should decrease: {:?}",
        h.epochs.iter().map(|e| e.train_loss).collect::<Vec<_>>()
    );
    let acc = h.final_test_acc().unwrap();
    assert!(acc > 0.8, "EF-blockSGD acc {acc}");

    // Its pushes are 1-bit sign payloads: traffic must be far below the
    // raw-f32 algorithm's.
    let raw = run_in_process(base_cfg(Algorithm::SSgd));
    let ef_bytes = h.epochs.last().unwrap().cumulative_push_bytes;
    let raw_bytes = raw.epochs.last().unwrap().cumulative_push_bytes;
    assert!(
        (ef_bytes as f64) < (raw_bytes as f64) / 8.0,
        "EF {ef_bytes} bytes should be ≪ raw {raw_bytes}"
    );
}

#[test]
fn nesterov_server_opt_trains_end_to_end() {
    // The new ServerOpt leaf: Nesterov momentum applied to the decoded
    // aggregate on the server. Momentum at lr 0.2 overshoots on this toy
    // problem; a lower lr is the standard pairing.
    let cfg = base_cfg(Algorithm::SSgd)
        .with_lr(0.05)
        .with_server_opt(ServerOptKind::Nesterov { momentum: 0.9 });
    let h = run_in_process(cfg);
    assert!(
        h.epochs.last().unwrap().train_loss < h.epochs[0].train_loss,
        "Nesterov loss should decrease"
    );
    let acc = h.final_test_acc().unwrap();
    assert!(acc > 0.8, "Nesterov acc {acc}");

    // And it must actually change the trajectory vs plain SGD.
    let plain = run_in_process(base_cfg(Algorithm::SSgd).with_lr(0.05));
    assert_ne!(h.final_weights, plain.final_weights);
}

#[test]
fn profiling_records_all_op_kinds_for_delayed_algorithms() {
    use cd_sgd::profile::OpKind;
    let data = toy::gaussian_blobs(120, 6, 3, 0.5, 22);
    let cfg = TrainConfig::new(Algorithm::cd_sgd(0.05, 0.1, 2, 3), 2)
        .with_lr(0.2)
        .with_batch_size(10)
        .with_epochs(2)
        .with_seed(22)
        .with_profiling(true);
    let h = Trainer::new(cfg, |rng| models::mlp(&[6, 8, 3], rng), data, None).run();
    let events = h.profile.expect("profiling on");
    for kind in [
        OpKind::Forward,
        OpKind::Backward,
        OpKind::Compress,
        OpKind::LocalUpdate,
        OpKind::PullWait,
    ] {
        assert!(
            events.iter().any(|e| e.op == kind),
            "missing {kind:?} events"
        );
    }
    // Events from both workers.
    assert!(events.iter().any(|e| e.worker == 0));
    assert!(events.iter().any(|e| e.worker == 1));
}
