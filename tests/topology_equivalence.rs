//! Topology equivalence (DESIGN.md §16): every allreduce transport —
//! in-memory channels, loopback wire, real TCP, ring or tree — must
//! produce *bit-identical* training runs, because all of them fold
//! chunks in the same pinned ring order. The decentralized compressed
//! topology is approximate by construction (gossip consensus instead of
//! exact averaging), so it is pinned by tolerance, and the ECQ-SGD leaf
//! is pinned by its exact BitSgd degeneracy at α = β = 1.

use cd_sgd::{Algorithm, Codec, Topology, TrainConfig, Trainer, TrainingHistory};
use cdsgd_data::toy;
use cdsgd_nn::models;
use cdsgd_ps::{AllReduceBackend, DecentralizedBackend, WireMode};

fn cfg(algo: Algorithm, workers: usize, epochs: usize) -> TrainConfig {
    TrainConfig::new(algo, workers)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(epochs)
        .with_seed(9)
}

fn trainer(cfg: TrainConfig) -> Trainer {
    let data = toy::gaussian_blobs(480, 8, 4, 0.6, 9);
    let (train, test) = data.split(0.8);
    Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test))
}

/// The model of the fixture: 8→32→4 MLP, 420 floats total.
const MODEL_FLOATS: u64 = 8 * 32 + 32 + 32 * 4 + 4;

#[test]
fn allreduce_bit_identical_across_transports_and_topologies() {
    // The reduction-order contract makes every backend exact: chunk c
    // accumulates in ring order starting at rank c (the tree root
    // replays the same fold), so not just close — equal bits.
    let reference = trainer(cfg(Algorithm::ArSgd, 4, 3)).run();
    assert!(
        reference.final_test_acc().unwrap() > 0.85,
        "fixture must actually learn"
    );

    let variants: Vec<(&str, TrainingHistory)> = vec![
        (
            "ring/loopback",
            trainer(cfg(Algorithm::ArSgd, 4, 3))
                .run_with(|_, _| Ok(Box::new(AllReduceBackend::ring(4, WireMode::Loopback)?) as _))
                .unwrap(),
        ),
        (
            "ring/tcp",
            trainer(cfg(Algorithm::ArSgd, 4, 3))
                .run_with(|_, _| Ok(Box::new(AllReduceBackend::ring(4, WireMode::Tcp)?) as _))
                .unwrap(),
        ),
        (
            "tree/loopback",
            trainer(cfg(Algorithm::ArSgd, 4, 3))
                .run_with(|_, _| Ok(Box::new(AllReduceBackend::tree(4, WireMode::Loopback)?) as _))
                .unwrap(),
        ),
        (
            "tree/tcp",
            trainer(cfg(Algorithm::ArSgd, 4, 3))
                .run_with(|_, _| Ok(Box::new(AllReduceBackend::tree(4, WireMode::Tcp)?) as _))
                .unwrap(),
        ),
        (
            "tree/fallback",
            trainer(cfg(Algorithm::ArSgd, 4, 3).with_topology(Topology::Tree)).run(),
        ),
    ];
    for (name, h) in &variants {
        assert_eq!(
            reference.final_weights, h.final_weights,
            "{name} diverged from the in-memory ring"
        );
        assert_eq!(
            reference
                .epochs
                .iter()
                .map(|e| e.test_acc)
                .collect::<Vec<_>>(),
            h.epochs.iter().map(|e| e.test_acc).collect::<Vec<_>>(),
            "{name} epoch accuracies diverged"
        );
    }
}

#[test]
fn tcp_ring_byte_accounting_is_exactly_bandwidth_optimal() {
    // The acceptance claim on real TCP: each of the N members sends
    // exactly 2(N−1)/N of the vector per round — counted from the
    // collective's own telemetry, not inferred.
    let n = 4usize;
    let epochs = 2usize;
    let backend = AllReduceBackend::ring(n, WireMode::Tcp).unwrap();
    let stats = backend.stats();
    let h = trainer(cfg(Algorithm::ArSgd, n, epochs))
        .run_with(move |_, _| Ok(Box::new(backend) as _))
        .unwrap();

    // 480 samples × 0.8 split ÷ 4 workers ÷ batch 16 = 6 rounds/epoch.
    let rounds = (epochs * 6) as u64;
    let vec_bytes = 4 * MODEL_FLOATS;
    let expect = rounds * n as u64 * (2 * (n as u64 - 1) * vec_bytes / n as u64);
    assert_eq!(
        h.epochs.last().unwrap().cumulative_push_bytes,
        expect,
        "ring payload must be 2(N\u{2212}1)/N of the vector per member per round"
    );
    // Frame-level conservation: every byte sent over a TCP link was
    // received on its other end (chunk frames + hello handshakes alike).
    assert_eq!(stats.bytes_sent(), stats.bytes_received());
    assert!(
        stats.bytes_sent() > 0,
        "TCP transports must route through the counted wire"
    );
}

#[test]
fn decentralized_compressed_within_tolerance_of_ps_baseline() {
    // Gossip consensus is approximate; pin it to the PS run at the
    // *matched* codec (2-bit, threshold 0.05), not to exact bits.
    let codec = Codec::TwoBit { threshold: 0.05 };
    let ps = trainer(cfg(Algorithm::cd_sgd_with(0.05, codec.clone(), 2, 6), 4, 4)).run();
    let dec = trainer(cfg(Algorithm::ArSgd, 4, 4).with_topology(Topology::Decentralized { codec }))
        .run_with(|_, _| Ok(Box::new(DecentralizedBackend::ring(4, WireMode::Tcp)?) as _))
        .unwrap();

    let (p, d) = (ps.final_test_acc().unwrap(), dec.final_test_acc().unwrap());
    assert!(d > 0.85, "decentralized must learn, got {d}");
    assert!(
        (p - d).abs() <= 0.15,
        "decentralized acc {d} drifted from PS baseline {p}"
    );
}

#[test]
fn decentralized_is_deterministic_across_transports() {
    // Approximate versus the PS — but still bit-deterministic: the same
    // seeds through memory channels and TCP sockets give the same run.
    let mk = || {
        cfg(Algorithm::ArSgd, 3, 2).with_topology(Topology::Decentralized {
            codec: Codec::TwoBit { threshold: 0.05 },
        })
    };
    let mem = trainer(mk()).run();
    let tcp = trainer(mk())
        .run_with(|_, _| Ok(Box::new(DecentralizedBackend::ring(3, WireMode::Tcp)?) as _))
        .unwrap();
    assert_eq!(mem.final_weights, tcp.final_weights);
}

#[test]
fn ecq_sgd_degenerates_to_bitsgd_bit_for_bit() {
    // α = β = 1 turns ECQ-SGD's scaled accumulation into plain error
    // feedback; both strategies then quantize the same corrected
    // gradient with the same threshold ladder, so the entire training
    // run — not just one step — matches bitwise.
    let bit = trainer(cfg(Algorithm::BitSgd { threshold: 0.05 }, 3, 3)).run();
    let ecq = trainer(cfg(Algorithm::ecq_sgd(0.05, 1.0, 1.0), 3, 3)).run();
    assert_eq!(bit.final_weights, ecq.final_weights);

    // Away from the degenerate corner it is a different algorithm —
    // and must still learn.
    let scaled = trainer(cfg(Algorithm::ecq_sgd(0.05, 0.9, 0.9), 3, 3)).run();
    assert_ne!(bit.final_weights, scaled.final_weights);
    assert!(scaled.final_test_acc().unwrap() > 0.85);
}
