//! Integration tests for AR-SGD: synchronous SGD over ring all-reduce,
//! the server-less collective baseline.

use cd_sgd::{Algorithm, TrainConfig, Trainer, TrainingHistory};
use cdsgd_data::toy;
use cdsgd_nn::models;

fn run(algo: Algorithm, workers: usize, epochs: usize) -> TrainingHistory {
    let data = toy::gaussian_blobs(480, 8, 4, 0.6, 51);
    let (train, test) = data.split(0.8);
    let cfg = TrainConfig::new(algo, workers)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(epochs)
        .with_seed(51);
    Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test)).run()
}

#[test]
fn ar_sgd_matches_ssgd_math() {
    // Same update rule (eq. 1), different reduction topology: results
    // agree to float-accumulation-order tolerance.
    let ssgd = run(Algorithm::SSgd, 2, 3);
    let ar = run(Algorithm::ArSgd, 2, 3);
    for (a, b) in ssgd.final_weights.iter().zip(&ar.final_weights) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }
    let sa = ssgd.final_test_acc().unwrap();
    let aa = ar.final_test_acc().unwrap();
    assert!((sa - aa).abs() < 0.05, "S-SGD {sa} vs AR-SGD {aa}");
}

#[test]
fn ar_sgd_learns_with_four_workers() {
    let h = run(Algorithm::ArSgd, 4, 6);
    let acc = h.final_test_acc().unwrap();
    assert!(acc > 0.85, "AR-SGD acc {acc}");
    // Final weights come from worker 0, not the idle server: nontrivial.
    assert!(h.final_weights.iter().flatten().any(|&v| v.abs() > 1e-6));
}

#[test]
fn ring_traffic_is_bandwidth_optimal_per_round() {
    // Each of N workers sends 2(N−1)/N of the model per round; compare
    // with the PS push traffic (N × model per round).
    let n = 4usize;
    let ar = run(Algorithm::ArSgd, n, 2);
    let ps = run(Algorithm::SSgd, n, 2);
    let ar_bytes = ar.epochs.last().unwrap().cumulative_push_bytes as f64;
    let ps_bytes = ps.epochs.last().unwrap().cumulative_push_bytes as f64;
    // Expected ratio: 2(N−1)/N ÷ 1 = 1.5 for N=4.
    let ratio = ar_bytes / ps_bytes;
    assert!((1.3..1.7).contains(&ratio), "ratio {ratio}");
}

#[test]
fn ar_sgd_is_deterministic() {
    let a = run(Algorithm::ArSgd, 3, 2);
    let b = run(Algorithm::ArSgd, 3, 2);
    assert_eq!(a.final_weights, b.final_weights);
}

#[test]
fn lr_schedule_applies_worker_side() {
    let data = toy::gaussian_blobs(200, 4, 2, 0.4, 52);
    let (train, test) = data.split(0.8);
    let cfg = TrainConfig::new(Algorithm::ArSgd, 2)
        .with_lr(0.2)
        .with_batch_size(10)
        .with_epochs(3)
        .with_seed(52)
        .with_lr_decay(1, 0.0);
    let h = Trainer::new(cfg, |rng| models::mlp(&[4, 2], rng), train, Some(test)).run();
    // lr 0 from epoch 1 freezes the weights.
    assert_eq!(h.epochs[1].test_acc, h.epochs[2].test_acc);
}
