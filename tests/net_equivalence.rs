//! The acceptance bar for the network subsystem: training over the wire
//! must be *bit-identical* to training in-process. Every f32 survives
//! the wire codec exactly, shards partition keys without reordering
//! per-key updates, and the per-worker aggregation queues make the
//! server-side float summation order deterministic — so the final
//! weights (and the loss history) must match to the last bit across
//! all three backends.

use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cd_sgd_repro::deploy;
use cdsgd_net::NetConfig;
use cdsgd_ps::NetCluster;

fn blob_trainer() -> Trainer {
    let (train, test) = deploy::build_dataset("blobs", 480, 5);
    let cfg = TrainConfig::new(Algorithm::cd_sgd(0.05, 0.05, 2, 3), 2)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(2)
        .with_seed(5);
    Trainer::new(
        cfg,
        |rng| deploy::build_model("mlp:8,32,4", rng),
        train,
        Some(test),
    )
}

#[test]
fn loopback_and_tcp_match_in_process_bit_for_bit() {
    let in_process = blob_trainer().run();

    let loopback = blob_trainer()
        .run_with(|init, cfg| Ok(Box::new(NetCluster::start_loopback(init, cfg, 2)?)))
        .expect("loopback run");

    let tcp = blob_trainer()
        .run_with(|init, cfg| {
            Ok(Box::new(NetCluster::start_tcp_local(
                init,
                cfg,
                2,
                NetConfig::default(),
            )?))
        })
        .expect("tcp run");

    assert!(!in_process.final_weights.is_empty());
    assert_eq!(
        in_process.final_weights, loopback.final_weights,
        "loopback run diverged from in-process run"
    );
    assert_eq!(
        in_process.final_weights, tcp.final_weights,
        "TCP run diverged from in-process run"
    );

    let losses = |h: &cd_sgd::TrainingHistory| -> Vec<f32> {
        h.epochs.iter().map(|e| e.train_loss).collect()
    };
    assert_eq!(losses(&in_process), losses(&loopback));
    assert_eq!(losses(&in_process), losses(&tcp));
}

#[test]
fn traffic_accounting_matches_across_backends() {
    // The networked backends charge the same frame formulas as the
    // in-process server, so the push-byte history must agree exactly.
    let in_process = blob_trainer().run();
    let tcp = blob_trainer()
        .run_with(|init, cfg| {
            Ok(Box::new(NetCluster::start_tcp_local(
                init,
                cfg,
                2,
                NetConfig::default(),
            )?))
        })
        .expect("tcp run");

    let pushed = |h: &cd_sgd::TrainingHistory| -> Vec<u64> {
        h.epochs.iter().map(|e| e.cumulative_push_bytes).collect()
    };
    assert_eq!(pushed(&in_process), pushed(&tcp));
    assert!(
        pushed(&tcp).last().copied().unwrap_or(0) > 0,
        "no bytes accounted — counters are not wired up"
    );
}
