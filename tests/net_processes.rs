//! End-to-end smoke test of the multi-process deployment: two `psd`
//! shard servers and two `worker` replicas run as real OS processes
//! talking over localhost TCP, and the resulting global weights must
//! be bit-identical to the same configuration trained in-process.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cd_sgd_repro::deploy;
use cdsgd_net::NetConfig;
use cdsgd_ps::{NetCluster, PsBackend};

const SEED: u64 = 5;
const WORKERS: usize = 2;
const SHARDS: usize = 2;
const MODEL: &str = "mlp:8,32,4";

/// Kills leftover children if an assertion fires before clean shutdown.
struct Reap(Vec<Child>);

impl Drop for Reap {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn spawn_psd(shard: usize) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_psd"))
        .args([
            "--shard",
            &shard.to_string(),
            "--num-shards",
            &SHARDS.to_string(),
            "--workers",
            &WORKERS.to_string(),
            "--lr",
            "0.2",
            "--port",
            "0",
            "--model",
            MODEL,
            "--seed",
            &SEED.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn psd");
    let stdout = child.stdout.take().expect("psd stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTENING line");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected psd output: {line:?}"))
        .to_string();
    (child, addr)
}

fn spawn_worker(id: usize, servers: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_worker"))
        .args([
            "--id",
            &id.to_string(),
            "--workers",
            &WORKERS.to_string(),
            "--servers",
            servers,
            "--algo",
            "cdsgd",
            "--dataset",
            "blobs",
            "--samples",
            "480",
            "--batch",
            "16",
            "--epochs",
            "2",
            "--lr",
            "0.2",
            "--local-lr",
            "0.05",
            "--threshold",
            "0.05",
            "--k",
            "2",
            "--warmup",
            "3",
            "--model",
            MODEL,
            "--seed",
            &SEED.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn worker")
}

#[test]
fn two_psd_processes_and_two_workers_match_in_process_run() {
    // Expected result: the identical configuration trained in-process.
    let (train, test) = deploy::build_dataset("blobs", 480, SEED);
    let cfg = TrainConfig::new(Algorithm::cd_sgd(0.05, 0.05, 2, 3), WORKERS)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(2)
        .with_seed(SEED);
    let expected = Trainer::new(
        cfg,
        |rng| deploy::build_model(MODEL, rng),
        train,
        Some(test),
    )
    .run();

    let mut reap = Reap(Vec::new());
    let mut addrs = Vec::new();
    for shard in 0..SHARDS {
        let (child, addr) = spawn_psd(shard);
        reap.0.push(child);
        addrs.push(addr);
    }
    let servers = addrs.join(",");

    let workers: Vec<Child> = (0..WORKERS).map(|id| spawn_worker(id, &servers)).collect();
    for (id, mut w) in workers.into_iter().enumerate() {
        let status = w.wait().expect("wait worker");
        assert!(status.success(), "worker {id} exited with {status}");
    }

    // Act as the controller: snapshot the live servers, then shut the
    // whole group down over the wire.
    let num_keys = deploy::initial_weights(MODEL, SEED).len();
    let cluster =
        NetCluster::connect(&addrs, num_keys, NetConfig::default()).expect("connect controller");
    let (weights, versions) = cluster.snapshot().expect("snapshot");
    Box::new(cluster).shutdown();

    assert_eq!(
        weights, expected.final_weights,
        "TCP multi-process run diverged"
    );
    assert!(
        versions.iter().all(|&v| v == versions[0]),
        "shards ended at different versions: {versions:?}"
    );

    for (shard, mut child) in reap.0.drain(..).enumerate() {
        let status = child.wait().expect("wait psd");
        assert!(status.success(), "psd shard {shard} exited with {status}");
    }
}
