//! End-to-end smoke test of the multi-process deployment: two `psd`
//! shard servers and two `worker` replicas run as real OS processes
//! talking over localhost TCP, and the resulting global weights must
//! be bit-identical to the same configuration trained in-process.

use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::Arc;

use cd_sgd::{
    telemetry::parse_jsonl_line, AggregateSink, Algorithm, Event, Telemetry, TrainConfig, Trainer,
};
use cd_sgd_repro::deploy;
use cdsgd_net::NetConfig;
use cdsgd_ps::{NetCluster, PsBackend};

const SEED: u64 = 5;
const WORKERS: usize = 2;
const SHARDS: usize = 2;
const MODEL: &str = "mlp:8,32,4";

/// Kills leftover children if an assertion fires before clean shutdown.
struct Reap(Vec<Child>);

impl Drop for Reap {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Spawn one shard server with `extra` flags appended, returning its
/// stdout reader (positioned after the LISTENING line) so callers can
/// keep the pipe open for later contract lines like `STATS`.
fn spawn_psd_with(shard: usize, extra: &[&str]) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_psd"))
        .args([
            "--shard",
            &shard.to_string(),
            "--num-shards",
            &SHARDS.to_string(),
            "--workers",
            &WORKERS.to_string(),
            "--lr",
            "0.2",
            "--port",
            "0",
            "--model",
            MODEL,
            "--seed",
            &SEED.to_string(),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn psd");
    let stdout = child.stdout.take().expect("psd stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read LISTENING line");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected psd output: {line:?}"))
        .to_string();
    (child, reader, addr)
}

fn spawn_psd(shard: usize) -> (Child, String) {
    let (child, _reader, addr) = spawn_psd_with(shard, &[]);
    (child, addr)
}

fn spawn_worker_with(id: usize, servers: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_worker"))
        .args([
            "--id",
            &id.to_string(),
            "--workers",
            &WORKERS.to_string(),
            "--servers",
            servers,
            "--algo",
            "cdsgd",
            "--dataset",
            "blobs",
            "--samples",
            "480",
            "--batch",
            "16",
            "--epochs",
            "2",
            "--lr",
            "0.2",
            "--local-lr",
            "0.05",
            "--threshold",
            "0.05",
            "--k",
            "2",
            "--warmup",
            "3",
            "--model",
            MODEL,
            "--seed",
            &SEED.to_string(),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn worker")
}

fn spawn_worker(id: usize, servers: &str) -> Child {
    spawn_worker_with(id, servers, &[])
}

#[test]
fn two_psd_processes_and_two_workers_match_in_process_run() {
    // Expected result: the identical configuration trained in-process.
    let (train, test) = deploy::build_dataset("blobs", 480, SEED);
    let cfg = TrainConfig::new(Algorithm::cd_sgd(0.05, 0.05, 2, 3), WORKERS)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(2)
        .with_seed(SEED);
    let expected = Trainer::new(
        cfg,
        |rng| deploy::build_model(MODEL, rng),
        train,
        Some(test),
    )
    .run();

    let mut reap = Reap(Vec::new());
    let mut addrs = Vec::new();
    for shard in 0..SHARDS {
        let (child, addr) = spawn_psd(shard);
        reap.0.push(child);
        addrs.push(addr);
    }
    let servers = addrs.join(",");

    let workers: Vec<Child> = (0..WORKERS).map(|id| spawn_worker(id, &servers)).collect();
    for (id, mut w) in workers.into_iter().enumerate() {
        let status = w.wait().expect("wait worker");
        assert!(status.success(), "worker {id} exited with {status}");
    }

    // Act as the controller: snapshot the live servers, then shut the
    // whole group down over the wire.
    let num_keys = deploy::initial_weights(MODEL, SEED).len();
    let cluster =
        NetCluster::connect(&addrs, num_keys, NetConfig::default()).expect("connect controller");
    let (weights, versions) = cluster.snapshot().expect("snapshot");
    Box::new(cluster).shutdown();

    assert_eq!(
        weights, expected.final_weights,
        "TCP multi-process run diverged"
    );
    assert!(
        versions.iter().all(|&v| v == versions[0]),
        "shards ended at different versions: {versions:?}"
    );

    for (shard, mut child) in reap.0.drain(..).enumerate() {
        let status = child.wait().expect("wait psd");
        assert!(status.success(), "psd shard {shard} exited with {status}");
    }
}

/// The multi-process telemetry contract: every frame byte the workers'
/// `--trace` JSONL files record as sent must show up in the shard
/// servers' `STATS` accounting as received, and vice versa — with the
/// controller (this test) as the only other traffic source, the books
/// must balance exactly.
#[test]
fn worker_traces_account_for_every_server_byte() {
    let trace_path = |id: usize| {
        std::env::temp_dir().join(format!(
            "cdsgd_{}_worker{id}_trace.jsonl",
            std::process::id()
        ))
    };

    let mut reap = Reap(Vec::new());
    let mut readers = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..SHARDS {
        let (child, reader, addr) = spawn_psd_with(shard, &["--stats"]);
        reap.0.push(child);
        readers.push(reader);
        addrs.push(addr);
    }
    let servers = addrs.join(",");

    let workers: Vec<Child> = (0..WORKERS)
        .map(|id| {
            let path = trace_path(id);
            let _ = std::fs::remove_file(&path);
            spawn_worker_with(id, &servers, &["--trace", path.to_str().unwrap()])
        })
        .collect();
    for (id, mut w) in workers.into_iter().enumerate() {
        let status = w.wait().expect("wait worker");
        assert!(status.success(), "worker {id} exited with {status}");
    }

    // Sum the workers' client-side frame accounting from their traces.
    let (mut traced_sent, mut traced_received) = (0u64, 0u64);
    for id in 0..WORKERS {
        let path = trace_path(id);
        let text = std::fs::read_to_string(&path).expect("read worker trace");
        for line in text.lines() {
            match parse_jsonl_line(line).expect("worker trace line parses") {
                Event::FrameSent { bytes, .. } => traced_sent += bytes,
                Event::FrameReceived { bytes, .. } => traced_received += bytes,
                _ => {}
            }
        }
        std::fs::remove_file(&path).ok();
    }
    assert!(
        traced_sent > 0 && traced_received > 0,
        "worker traces carry no frame events"
    );

    // Act as the controller, counting our own traffic the same way the
    // workers did, then shut the group down.
    let controller = Arc::new(AggregateSink::new());
    let num_keys = deploy::initial_weights(MODEL, SEED).len();
    let cluster = NetCluster::connect_traced(
        &addrs,
        num_keys,
        NetConfig::default(),
        Telemetry::new(Arc::clone(&controller) as _),
    )
    .expect("connect controller");
    cluster.snapshot().expect("snapshot");
    Box::new(cluster).shutdown();

    // Each shard prints its STATS contract line after joining every
    // connection thread, so the counters below are final.
    let (mut server_sent, mut server_received) = (0u64, 0u64);
    for (shard, reader) in readers.iter_mut().enumerate() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read STATS line");
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(
            (fields.first(), fields.len()),
            (Some(&"STATS"), 9),
            "shard {shard}: unexpected stats line {line:?}"
        );
        server_sent += fields[2].parse::<u64>().expect("sent bytes");
        server_received += fields[4].parse::<u64>().expect("received bytes");
    }
    for (shard, mut child) in reap.0.drain(..).enumerate() {
        let status = child.wait().expect("wait psd");
        assert!(status.success(), "psd shard {shard} exited with {status}");
    }

    assert_eq!(
        traced_sent + controller.bytes_sent(),
        server_received,
        "uplink: bytes the clients sent vs bytes the servers received"
    );
    assert_eq!(
        traced_received + controller.bytes_received(),
        server_sent,
        "downlink: bytes the servers sent vs bytes the clients received"
    );
}
