//! Table-driven proof that the `UpdateStrategy` extraction is bit-exact:
//! every `Algorithm` variant, run for 2 epochs on the in-process and
//! loopback backends, must reach the *same final-weight hash that the
//! pre-refactor worker loop produced* (captured from `main` before the
//! strategy layer existed). A hash change here means the refactor (or a
//! later edit) altered training semantics, not just structure.

use cd_sgd::{Algorithm, TrainConfig, Trainer, TrainingHistory};
use cd_sgd_repro::deploy;
use cdsgd_ps::NetCluster;

/// FNV-1a over the little-endian bit patterns of all final weights, in
/// key order. Bit-exact: any f32 that differs in any bit changes it.
fn weight_hash(h: &TrainingHistory) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for key in &h.final_weights {
        for w in key {
            for b in w.to_bits().to_le_bytes() {
                acc ^= b as u64;
                acc = acc.wrapping_mul(0x1000_0000_01b3);
            }
        }
    }
    acc
}

fn variants() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("ssgd", Algorithm::SSgd),
        ("odsgd", Algorithm::OdSgd { local_lr: 0.05 }),
        ("bitsgd", Algorithm::BitSgd { threshold: 0.05 }),
        ("cdsgd", Algorithm::cd_sgd(0.05, 0.05, 2, 3)),
        (
            "cdsgd+dc",
            Algorithm::cd_sgd(0.05, 0.05, 2, 3).with_delay_compensation(0.5),
        ),
        (
            "localsgd",
            Algorithm::LocalSgd {
                local_lr: 0.05,
                sync_period: 2,
            },
        ),
        ("arsgd", Algorithm::ArSgd),
    ]
}

fn trainer(algo: Algorithm) -> Trainer {
    let (train, test) = deploy::build_dataset("blobs", 480, 5);
    let cfg = TrainConfig::new(algo, 2)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(2)
        .with_seed(5);
    Trainer::new(
        cfg,
        |rng| deploy::build_model("mlp:8,32,4", rng),
        train,
        Some(test),
    )
}

/// Final-weight hashes captured from the pre-refactor `run_worker` loop
/// (commit 2478571, inline `AlgoState` branches) on this exact setup.
/// Both backends must still land on these bits.
const EXPECTED: &[(&str, u64)] = &[
    ("ssgd", 0x7e98a67774c3cf42),
    ("odsgd", 0x210320462b28bebb),
    ("bitsgd", 0xacea05643ae71028),
    ("cdsgd", 0xb27e0a89c55bc72b),
    ("cdsgd+dc", 0x0fb7dc6a90ea4fcd),
    ("localsgd", 0x28d9e01e938e4740),
    // AR-SGD's ring mean-reduce at the global lr is mathematically S-SGD
    // with N workers, and both paths sum in the same order — equal hashes
    // are expected, not a copy-paste error.
    ("arsgd", 0x7e98a67774c3cf42),
];

fn expected(name: &str) -> u64 {
    EXPECTED
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, h)| *h)
        .unwrap_or_else(|| panic!("no pinned hash for {name}"))
}

#[test]
fn every_variant_matches_pre_refactor_weights_in_process() {
    for (name, algo) in variants() {
        let h = trainer(algo).run();
        assert_eq!(
            weight_hash(&h),
            expected(name),
            "{name}: in-process final weights diverged from pre-refactor capture"
        );
    }
}

#[test]
fn every_variant_matches_pre_refactor_weights_loopback() {
    for (name, algo) in variants() {
        let h = trainer(algo)
            .run_with(|init, cfg| Ok(Box::new(NetCluster::start_loopback(init, cfg, 2)?)))
            .unwrap_or_else(|e| panic!("{name}: loopback run failed: {e}"));
        assert_eq!(
            weight_hash(&h),
            expected(name),
            "{name}: loopback final weights diverged from pre-refactor capture"
        );
    }
}

/// Capture helper: prints the hash table for pinning. Run with
/// `cargo test --test strategy_equivalence -- --ignored --nocapture`.
#[test]
#[ignore = "capture tool, not a gate"]
fn print_hashes() {
    for (name, algo) in variants() {
        let h_in = weight_hash(&trainer(algo.clone()).run());
        let h_lb = weight_hash(
            &trainer(algo)
                .run_with(|init, cfg| Ok(Box::new(NetCluster::start_loopback(init, cfg, 2)?)))
                .unwrap(),
        );
        println!("(\"{name}\", {h_in:#018x}), // loopback {h_lb:#018x}");
    }
}
