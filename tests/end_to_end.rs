//! End-to-end integration tests across all crates: real CNNs on synthetic
//! image data, trained by the threaded PS stack, checking the *relative*
//! behaviours the paper reports (not absolute accuracies).

use cd_sgd::{Algorithm, TrainConfig, Trainer, TrainingHistory};
use cdsgd_data::synth;
use cdsgd_nn::models;

fn run_lenet(algo: Algorithm, epochs: usize, workers: usize) -> TrainingHistory {
    let data = synth::mnist_like(600, 77);
    let (train, test) = data.split(0.8);
    let cfg = TrainConfig::new(algo, workers)
        .with_lr(0.1)
        .with_batch_size(16)
        .with_epochs(epochs)
        .with_seed(77);
    Trainer::new(cfg, |rng| models::lenet5(10, rng), train, Some(test)).run()
}

#[test]
fn lenet_on_images_learns_with_cd_sgd() {
    // The hardened MNIST-like task (classes share 95% of their template
    // structure) is deliberately difficult at this sample count; well
    // above the 10% chance level is the learning criterion.
    let warmup = 15;
    let h = run_lenet(Algorithm::cd_sgd(0.4, 0.5, 2, warmup), 4, 2);
    let acc = h.final_test_acc().unwrap();
    assert!(acc > 0.25, "CD-SGD test acc {acc}");
    assert!(
        h.epochs.last().unwrap().train_loss < h.epochs[0].train_loss,
        "loss should decrease"
    );
}

#[test]
fn quantization_with_large_threshold_hurts_and_correction_repairs() {
    // A deliberately hostile threshold (5.0 ≫ typical gradient magnitude)
    // makes BIT-SGD stall: almost everything lands in the residual and
    // weight updates are badly delayed. The k-step correction pushes the
    // true gradient every other step and rescues convergence — the
    // paper's central accuracy claim. Compared on training loss, which
    // does not saturate the way accuracy does.
    use cdsgd_data::toy;
    let data = toy::gaussian_blobs(400, 8, 4, 1.0, 31);
    let run = |algo: Algorithm| {
        let cfg = TrainConfig::new(algo, 2)
            .with_lr(0.2)
            .with_batch_size(16)
            .with_epochs(3)
            .with_seed(31);
        Trainer::new(cfg, |rng| models::mlp(&[8, 16, 4], rng), data.clone(), None).run()
    };
    let bit = run(Algorithm::BitSgd { threshold: 5.0 });
    let cd = run(Algorithm::cd_sgd(0.1, 5.0, 2, 10));
    let ssgd = run(Algorithm::SSgd);
    let (b, c, s) = (
        bit.final_train_loss().unwrap(),
        cd.final_train_loss().unwrap(),
        ssgd.final_train_loss().unwrap(),
    );
    assert!(
        c < b * 0.9,
        "k-step correction should rescue convergence: CD loss {c} vs BIT loss {b}"
    );
    assert!(
        s < b,
        "S-SGD loss {s} should beat hostile-threshold BIT-SGD {b}"
    );
}

#[test]
fn resnet_lite_trains_distributed_with_augmentation() {
    let data = synth::cifar_like(480, 11);
    let (train, test) = data.split(0.8);
    let cfg = TrainConfig::new(Algorithm::cd_sgd(0.05, 0.5, 2, 8), 2)
        .with_lr(0.4)
        .with_batch_size(16)
        .with_epochs(3)
        .with_seed(11)
        .with_augment(true);
    let h = Trainer::new(
        cfg,
        |rng| models::resnet_cifar(4, 1, 10, rng),
        train,
        Some(test),
    )
    .run();
    // Shape check only: the run is healthy (loss falls, weights finite);
    // 3 epochs on 384 hardened samples is far from convergence.
    assert!(
        h.epochs.last().unwrap().train_loss < h.epochs[0].train_loss,
        "training loss should decrease"
    );
    let acc = h.final_test_acc().unwrap();
    assert!(
        acc > 0.1,
        "augmented ResNet-lite should beat chance, acc {acc}"
    );
}

#[test]
fn cd_sgd_pushes_fraction_of_ssgd_traffic() {
    // With k = 4, three of four formal pushes are 2-bit: expected push
    // bytes ≈ (1/4 + 3/4 · 1/16) ≈ 30% of raw after the warm-up.
    let epochs = 3;
    let ssgd = run_lenet(Algorithm::SSgd, epochs, 2);
    let cd = run_lenet(Algorithm::cd_sgd(0.4, 0.5, 4, 0), epochs, 2);
    let raw = ssgd.epochs.last().unwrap().cumulative_push_bytes as f64;
    let cdb = cd.epochs.last().unwrap().cumulative_push_bytes as f64;
    let ratio = cdb / raw;
    assert!(
        (0.2..0.45).contains(&ratio),
        "CD-SGD push traffic should be ~30% of raw, got {ratio:.3}"
    );
}

#[test]
fn more_workers_same_data_converges_similarly() {
    let h2 = run_lenet(Algorithm::cd_sgd(0.4, 0.5, 2, 10), 3, 2);
    let h3 = run_lenet(Algorithm::cd_sgd(0.4, 0.5, 2, 10), 3, 3);
    let a2 = h2.final_test_acc().unwrap();
    let a3 = h3.final_test_acc().unwrap();
    assert!((a2 - a3).abs() < 0.25, "2w {a2} vs 3w {a3}");
}

#[test]
fn final_weights_are_finite_and_nontrivial() {
    for algo in [
        Algorithm::SSgd,
        Algorithm::OdSgd { local_lr: 0.4 },
        Algorithm::BitSgd { threshold: 0.5 },
        Algorithm::cd_sgd(0.4, 0.5, 2, 5),
    ] {
        let h = run_lenet(algo, 1, 2);
        assert!(!h.final_weights.is_empty());
        let mut moved = false;
        for w in &h.final_weights {
            assert!(
                w.iter().all(|v| v.is_finite()),
                "{}: non-finite weights",
                h.algo
            );
            if w.iter().any(|v| v.abs() > 1e-8) {
                moved = true;
            }
        }
        assert!(moved, "{}: weights never moved", h.algo);
    }
}
