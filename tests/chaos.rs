//! Chaos tests for the failure-supervision layer: kill or stall one
//! worker mid-training and assert the run fails *fast* with a typed
//! [`NetError::WorkerLost`] — on every backend — instead of deadlocking
//! the surviving workers on the epoch barrier and the server on a
//! forever-partial round. Faults are scripted ([`WorkerFault`],
//! [`FaultPlan`]) so every failure path is deterministic; no real
//! packet loss or process kills required.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cd_sgd::{Algorithm, RestartPolicy, TrainConfig, Trainer, WorkerFault};
use cd_sgd_repro::deploy;
use cdsgd_compress::{BufferPool, Compressed};
use cdsgd_net::{
    loopback_pair, FaultPlan, FaultyTransport, NetConfig, NetError, ReconnectConfig, TcpAcceptor,
    TcpTransport,
};
use cdsgd_ps::{
    partition_keys, ElasticConfig, InProcessBackend, NetCluster, ParamClient, ParamServer,
    PsBackend, PsNetServer, RemoteClient, ServerConfig, ShardedClient, TrafficStats,
};

/// The acceptance bound: a killed worker must surface as a typed error
/// well within this budget (the whole point is *not* hanging).
const BUDGET: Duration = Duration::from_secs(30);

fn chaos_trainer(
    algo: Algorithm,
    epochs: usize,
    customize: impl FnOnce(TrainConfig) -> TrainConfig,
) -> Trainer {
    let (train, test) = deploy::build_dataset("blobs", 480, 5);
    let cfg = customize(
        TrainConfig::new(algo, 2)
            .with_lr(0.2)
            .with_batch_size(16)
            .with_epochs(epochs)
            .with_seed(5),
    );
    Trainer::new(
        cfg,
        |rng| deploy::build_model("mlp:8,32,4", rng),
        train,
        Some(test),
    )
}

fn in_process(init: Vec<Vec<f32>>, cfg: ServerConfig) -> Result<Box<dyn PsBackend>, NetError> {
    Ok(Box::new(InProcessBackend::new(ParamServer::start(
        init, cfg,
    ))))
}

/// Run `trainer` against `backend` expecting the designated victim to be
/// lost, and assert the typed error arrives within the budget.
fn assert_worker_lost(
    trainer: &Trainer,
    backend: impl FnOnce(Vec<Vec<f32>>, ServerConfig) -> Result<Box<dyn PsBackend>, NetError>,
    victim: usize,
) {
    let start = Instant::now();
    let failure = trainer.try_run_with(backend).expect_err("run must fail");
    assert!(
        start.elapsed() < BUDGET,
        "failure took {:?}, budget is {BUDGET:?}",
        start.elapsed()
    );
    match failure.error {
        NetError::WorkerLost { id, .. } => assert_eq!(id, victim, "wrong victim named"),
        ref other => panic!("expected WorkerLost, got {other:?}"),
    }
    let aborted = failure
        .history
        .aborted
        .as_ref()
        .expect("history records the abort");
    assert!(
        aborted.error.contains("worker"),
        "abort record should carry the display error, got {:?}",
        aborted.error
    );
}

#[test]
fn killed_worker_fails_in_process_run_with_typed_error() {
    let trainer = chaos_trainer(Algorithm::SSgd, 3, |cfg| {
        cfg.with_fault(1, WorkerFault::KillAtRound { round: 2 })
    });
    assert_worker_lost(&trainer, in_process, 1);
}

#[test]
fn killed_worker_fails_loopback_run_with_typed_error() {
    let trainer = chaos_trainer(Algorithm::SSgd, 3, |cfg| {
        cfg.with_fault(1, WorkerFault::KillAtRound { round: 2 })
    });
    assert_worker_lost(
        &trainer,
        |init, cfg| Ok(Box::new(NetCluster::start_loopback(init, cfg, 2)?)),
        1,
    );
}

#[test]
fn killed_worker_fails_tcp_run_with_typed_error() {
    let trainer = chaos_trainer(Algorithm::SSgd, 3, |cfg| {
        cfg.with_fault(1, WorkerFault::KillAtRound { round: 2 })
    });
    assert_worker_lost(
        &trainer,
        |init, cfg| {
            Ok(Box::new(NetCluster::start_tcp_local(
                init,
                cfg,
                2,
                NetConfig::default(),
            )?))
        },
        1,
    );
}

#[test]
fn killed_worker_fails_delayed_algorithm_run() {
    // CD-SGD runs one round ahead of the server (deferred pulls), the
    // hardest case for supervision: kill after the warm-up so the victim
    // dies mid-pipeline.
    let trainer = chaos_trainer(Algorithm::cd_sgd(0.05, 0.05, 2, 3), 3, |cfg| {
        cfg.with_fault(1, WorkerFault::KillAtRound { round: 6 })
    });
    assert_worker_lost(&trainer, in_process, 1);
}

#[test]
fn killed_worker_preserves_completed_epochs_in_history() {
    // Die in the second epoch: the first epoch's metrics must survive.
    let ipe = chaos_trainer(Algorithm::SSgd, 3, |cfg| cfg).iters_per_epoch() as u64;
    let trainer = chaos_trainer(Algorithm::SSgd, 3, |cfg| {
        cfg.with_fault(1, WorkerFault::KillAtRound { round: ipe + 1 })
    });
    let failure = trainer.try_run_with(in_process).expect_err("run must fail");
    assert_eq!(failure.history.epochs.len(), 1, "epoch 0 completed");
    let aborted = failure.history.aborted.expect("abort recorded");
    assert_eq!(aborted.epoch, 1, "died during epoch 1");
}

#[test]
fn replaced_worker_completes_the_run_bit_identically() {
    // Hot replacement (DESIGN.md §14): worker 1 dies exactly at the
    // epoch-1 boundary — having pushed every round of epoch 0 and
    // nothing of epoch 1 — and the restart policy respawns it resuming
    // at epoch 1. The replacement continues the same per-worker push
    // queue at the same positions, so the run must not merely complete:
    // it must be bit-identical to the fault-free run.
    let fault_free = chaos_trainer(Algorithm::SSgd, 3, |cfg| cfg).run();
    let ipe = chaos_trainer(Algorithm::SSgd, 3, |cfg| cfg).iters_per_epoch() as u64;
    let trainer = chaos_trainer(Algorithm::SSgd, 3, |cfg| {
        cfg.with_fault(1, WorkerFault::KillAtRound { round: ipe })
            .with_restart_policy(RestartPolicy::new(1, Duration::from_millis(10)))
    });
    let start = Instant::now();
    let history = trainer
        .try_run_with(in_process)
        .expect("the replacement must absorb the loss");
    assert!(start.elapsed() < BUDGET, "replacement run stalled");
    assert!(
        history.aborted.is_none(),
        "a granted restart is not an abort"
    );
    assert_eq!(history.epochs.len(), 3, "every epoch must complete");
    assert_eq!(
        history.final_weights, fault_free.final_weights,
        "epoch-aligned replacement must be bit-identical"
    );
}

#[test]
fn replaced_worker_restores_strategy_state_from_checkpoint() {
    // The stateful-algorithm variant: EF-SGD's worker-private velocity
    // and error-feedback residuals do not live on the server, so a
    // bit-identical replacement needs the worker checkpoint written at
    // the epoch boundary. With `with_worker_checkpoints` the respawned
    // worker reloads model + strategy blobs and the run stays exact.
    let dir = std::env::temp_dir().join(format!("cdsgd_wkpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fault_free = chaos_trainer(Algorithm::ef_sgd(0.9), 3, |cfg| cfg).run();
    let ipe = chaos_trainer(Algorithm::ef_sgd(0.9), 3, |cfg| cfg).iters_per_epoch() as u64;
    let trainer = chaos_trainer(Algorithm::ef_sgd(0.9), 3, |cfg| {
        cfg.with_fault(1, WorkerFault::KillAtRound { round: ipe })
            .with_restart_policy(RestartPolicy::new(1, Duration::from_millis(10)))
            .with_worker_checkpoints(&dir, 1)
    });
    let history = trainer
        .try_run_with(in_process)
        .expect("the replacement must absorb the loss");
    assert!(history.aborted.is_none());
    assert_eq!(
        history.final_weights, fault_free.final_weights,
        "checkpointed EF-SGD replacement must be bit-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_policy_does_not_perturb_fault_free_runs() {
    // Arming the policy without a fault must leave training untouched:
    // the Respawner only changes behaviour when a worker actually dies.
    let plain = chaos_trainer(Algorithm::cd_sgd(0.05, 0.05, 2, 3), 2, |cfg| cfg).run();
    let armed = chaos_trainer(Algorithm::cd_sgd(0.05, 0.05, 2, 3), 2, |cfg| {
        cfg.with_restart_policy(RestartPolicy::new(2, Duration::from_millis(10)))
    })
    .try_run_with(in_process)
    .expect("fault-free armed run succeeds");
    assert!(armed.aborted.is_none());
    assert_eq!(
        armed.final_weights, plain.final_weights,
        "an unused restart policy perturbed training"
    );
}

#[test]
fn stalled_worker_trips_the_epoch_deadline() {
    let trainer = chaos_trainer(Algorithm::SSgd, 2, |cfg| {
        cfg.with_fault(
            1,
            WorkerFault::StallAtRound {
                round: 1,
                stall: Duration::from_secs(5),
            },
        )
        .with_epoch_deadline(Duration::from_secs(1))
    });
    let start = Instant::now();
    let failure = trainer
        .try_run_with(in_process)
        .expect_err("stall must trip the epoch deadline");
    assert!(start.elapsed() < BUDGET);
    assert!(
        matches!(failure.error, NetError::WorkerLost { .. }),
        "expected WorkerLost, got {:?}",
        failure.error
    );
}

#[test]
fn fault_free_run_with_deadlines_is_bit_identical() {
    // Arming the supervision machinery must not perturb training: same
    // weights as a plain run, no abort record.
    let plain = chaos_trainer(Algorithm::cd_sgd(0.05, 0.05, 2, 3), 2, |cfg| cfg).run();
    let guarded = chaos_trainer(Algorithm::cd_sgd(0.05, 0.05, 2, 3), 2, |cfg| {
        cfg.with_round_deadline(BUDGET).with_epoch_deadline(BUDGET)
    });
    let h = guarded
        .try_run_with(in_process)
        .expect("fault-free guarded run succeeds");
    assert!(h.aborted.is_none());
    assert_eq!(
        h.final_weights, plain.final_weights,
        "deadlines perturbed training"
    );
}

#[test]
fn membership_churn_scripted_departure_completes_tcp_training() {
    // Elastic-membership chaos: worker 1 gracefully leaves at the start
    // of epoch 1 and the survivor must finish the remaining epochs over
    // real TCP — the server re-sizes its round quorum instead of
    // waiting forever on the departed worker's pushes.
    let trainer = chaos_trainer(Algorithm::SSgd, 3, |cfg| cfg.with_departure(1, 1));
    let start = Instant::now();
    let history = trainer
        .try_run_with(|init, cfg| {
            Ok(Box::new(NetCluster::start_tcp_local(
                init,
                cfg,
                2,
                NetConfig::default(),
            )?))
        })
        .expect("run with a scripted departure must complete");
    assert!(start.elapsed() < BUDGET, "churn run stalled");
    assert!(history.aborted.is_none(), "graceful leave is not a fault");
    assert_eq!(history.epochs.len(), 3, "survivor must finish every epoch");
}

#[test]
fn membership_join_push_leave_cycles_keep_the_server_alive() {
    // Repeated join/leave churn against one elastic TCP server: a
    // transient worker registers, contributes to one round, and leaves
    // — ten times over — while a permanent worker keeps pushing. No
    // cycle may fail the server, and every round must aggregate both
    // contributions.
    const KEY_LEN: usize = 8;
    let cfg = ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1));
    let server = PsNetServer::start(vec![vec![0.0; KEY_LEN]], cfg);
    let (acceptor, addr) = TcpAcceptor::bind(("127.0.0.1", 0), NetConfig::default()).unwrap();
    server.listen(acceptor);

    let stats = Arc::new(TrafficStats::new());
    let net = NetConfig::default();
    let connect = || {
        RemoteClient::new(
            Box::new(TcpTransport::connect(addr, &net).unwrap()),
            Arc::clone(&stats),
            BufferPool::new(),
        )
        .unwrap()
    };
    let permanent = connect();

    let start = Instant::now();
    for cycle in 0..10u64 {
        let transient = connect();
        let acked = transient.register(1).expect("register transient worker");
        assert_eq!(acked, vec![cycle], "join must ack the exact round");
        permanent
            .push(0, 0, Compressed::Raw(vec![1.0; KEY_LEN]))
            .unwrap();
        transient
            .push(1, 0, Compressed::Raw(vec![1.0; KEY_LEN]))
            .unwrap();
        // Both gradients land in this round: Σ = 2, two contributors,
        // lr 1.0 → step −1.0 per cycle.
        let w = permanent.pull(0, cycle + 1).expect("round completes");
        assert_eq!(w[0], -((cycle + 1) as f32), "round missed a contribution");
        transient.leave(1).expect("graceful leave");
        drop(transient);
        assert!(start.elapsed() < BUDGET, "churn cycle {cycle} stalled");
    }

    assert!(
        server.failure().is_none(),
        "join/leave churn must not fail the server: {:?}",
        server.failure()
    );
    drop(permanent);
    server.shutdown();
}

#[test]
fn tcp_leave_below_quorum_fails_the_server_with_typed_error() {
    // The failure side of elastic membership, over the wire: with
    // min_quorum 2, a worker's Leave strands the survivor below quorum
    // and the server must fail fast with the typed WorkerLost — naming
    // the leaver — instead of letting the survivor block on a pull that
    // can never complete.
    const KEY_LEN: usize = 8;
    let cfg = ServerConfig::new(2, 1.0).with_elastic(ElasticConfig::new(2));
    let server = PsNetServer::start(vec![vec![0.0; KEY_LEN]], cfg);
    let (acceptor, addr) = TcpAcceptor::bind(("127.0.0.1", 0), NetConfig::default()).unwrap();
    server.listen(acceptor);

    let stats = Arc::new(TrafficStats::new());
    let net = NetConfig::default();
    let survivor = RemoteClient::new(
        Box::new(TcpTransport::connect(addr, &net).unwrap()),
        Arc::clone(&stats),
        BufferPool::new(),
    )
    .unwrap();
    let leaver = RemoteClient::new(
        Box::new(TcpTransport::connect(addr, &net).unwrap()),
        Arc::clone(&stats),
        BufferPool::new(),
    )
    .unwrap();

    let start = Instant::now();
    survivor
        .push(0, 0, Compressed::Raw(vec![1.0; KEY_LEN]))
        .unwrap();
    leaver
        .leave(1)
        .expect("the leave frame itself is delivered");

    let failure = loop {
        if let Some(e) = server.failure() {
            break e;
        }
        assert!(start.elapsed() < BUDGET, "below-quorum leave never failed");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        matches!(failure, NetError::WorkerLost { id: 1, .. }),
        "expected WorkerLost for the leaver, got {failure:?}"
    );
    assert_eq!(server.wait_for_shutdown().unwrap_err(), failure);
    drop(survivor);
    drop(leaver);
    server.shutdown();
}

#[test]
fn tcp_process_kill_and_replace_completes_within_tolerance() {
    // The full kill-and-replace scenario across real OS processes: an
    // elastic `psd` shard with a heartbeat eviction window, worker 0
    // healthy (emitting heartbeats), worker 1 scripted to die silently
    // mid-run. The server must evict the corpse instead of stalling,
    // and a replacement re-admitted through the register/rebase path
    // must finish training — no `WorkerLost` abort anywhere — with a
    // final model whose quality is within tolerance of the fault-free
    // run (the elastic path trades bit-identity for availability).
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    const MODEL: &str = "mlp:8,32,4";
    const SEED: u64 = 5;
    const EPOCHS: usize = 3;

    // Fault-free reference: the same configuration in-process.
    let (train, test) = deploy::build_dataset("blobs", 480, SEED);
    let reference = Trainer::new(
        TrainConfig::new(Algorithm::SSgd, 2)
            .with_lr(0.2)
            .with_batch_size(16)
            .with_epochs(EPOCHS)
            .with_seed(SEED),
        |rng| deploy::build_model(MODEL, rng),
        train.clone(),
        Some(test.clone()),
    )
    .run();
    let reference_acc = accuracy_of(&reference.final_weights, &test);

    struct Reap(Vec<std::process::Child>);
    impl Drop for Reap {
        fn drop(&mut self) {
            for c in &mut self.0 {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
    let mut reap = Reap(Vec::new());

    // One elastic shard: eviction window well above the workers'
    // heartbeat interval, min-quorum 1 so the pool may drain.
    let mut psd = Command::new(env!("CARGO_BIN_EXE_psd"))
        .args(["--shard", "0", "--num-shards", "1", "--workers", "2"])
        .args(["--min-quorum", "1", "--heartbeat-ms", "1200"])
        .args(["--lr", "0.2", "--port", "0"])
        .args(["--model", MODEL, "--seed", &SEED.to_string()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn psd");
    let mut psd_out = BufReader::new(psd.stdout.take().expect("psd stdout piped"));
    reap.0.push(psd);
    let mut line = String::new();
    psd_out.read_line(&mut line).expect("read LISTENING line");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected psd output: {line:?}"))
        .to_string();

    let spawn_worker = |id: usize, extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_worker"))
            .args(["--id", &id.to_string(), "--workers", "2"])
            .args(["--servers", &addr, "--algo", "ssgd"])
            .args(["--dataset", "blobs", "--samples", "480", "--batch", "16"])
            .args(["--epochs", &EPOCHS.to_string(), "--lr", "0.2"])
            .args(["--model", MODEL, "--seed", &SEED.to_string()])
            .args(["--heartbeat-ms", "50"])
            .args(extra)
            .spawn()
            .expect("spawn worker")
    };

    // Worker 0 registers so its end-of-run Leave shrinks the quorum;
    // worker 1 is the victim, dying silently mid-run.
    reap.0.push(spawn_worker(0, &["--register"]));
    reap.0.push(spawn_worker(1, &["--chaos-kill-round", "12"]));

    let start = Instant::now();
    let victim_status = reap.0[2].wait().expect("wait victim");
    assert!(
        !victim_status.success(),
        "the scripted death must exit nonzero"
    );
    // Re-admit a replacement for the evicted id through register/rebase.
    reap.0.push(spawn_worker(1, &["--register"]));

    for idx in [1, 3] {
        let status = reap.0[idx].wait().expect("wait worker");
        assert!(status.success(), "process {idx} exited with {status}");
        assert!(start.elapsed() < BUDGET, "kill-and-replace run stalled");
    }

    // Controller epilogue: snapshot the drained shard, shut it down, and
    // compare model quality against the fault-free reference.
    let num_keys = deploy::initial_weights(MODEL, SEED).len();
    let addrs = [addr];
    let cluster =
        NetCluster::connect(&addrs, num_keys, NetConfig::default()).expect("controller connect");
    let (weights, _versions) = cluster.snapshot().expect("snapshot");
    Box::new(cluster).shutdown();
    let psd_status = reap.0[0].wait().expect("wait psd");
    assert!(psd_status.success(), "psd exited with {psd_status}");
    reap.0.clear();

    let chaos_acc = accuracy_of(&weights, &test);
    assert!(
        (chaos_acc - reference_acc).abs() <= 0.25,
        "kill-and-replace accuracy {chaos_acc} strays too far from fault-free {reference_acc}"
    );
}

/// Test-set accuracy of a weight snapshot, for tolerance comparisons.
fn accuracy_of(weights: &[Vec<f32>], test: &cdsgd_data::Dataset) -> f32 {
    use cdsgd_nn::{Layer, Mode, SoftmaxCrossEntropy};
    let mut rng = cdsgd_tensor::SmallRng64::new(1);
    let mut model = deploy::build_model("mlp:8,32,4", &mut rng);
    model.import_params(weights);
    let loss_fn = SoftmaxCrossEntropy;
    let mut correct = 0.0f64;
    let mut total = 0usize;
    for batch in test.batches(64) {
        let logits = model.forward(&batch.x, Mode::Eval);
        correct += loss_fn.accuracy(&logits, &batch.y) as f64 * batch.y.len() as f64;
        total += batch.y.len();
    }
    (correct / total.max(1) as f64) as f32
}

#[test]
fn tcp_connection_drop_trips_the_server_round_deadline() {
    // The rawest failure mode: a worker's TCP connection goes silent
    // (FaultyTransport kills sends without notifying the peer). The
    // server's round deadline must name the worker whose pushes stopped.
    let init = partition_keys(deploy::initial_weights("mlp:8,32,4", 5), 1).swap_remove(0);
    let sizes: Vec<usize> = init.iter().map(Vec::len).collect();
    let cfg = ServerConfig::new(2, 0.2).with_round_deadline(Duration::from_millis(200));
    let server = PsNetServer::start(init, cfg);
    let (acceptor, addr) = TcpAcceptor::bind(("127.0.0.1", 0), NetConfig::default()).unwrap();
    server.listen(acceptor);

    let stats = Arc::new(TrafficStats::new());
    let net = NetConfig::default();
    let healthy = RemoteClient::new(
        Box::new(TcpTransport::connect(addr, &net).unwrap()),
        Arc::clone(&stats),
        BufferPool::new(),
    )
    .unwrap();
    // Worker 1's link dies before its first frame leaves the machine —
    // the server is never notified.
    let silent = RemoteClient::new(
        Box::new(FaultyTransport::new(
            Box::new(TcpTransport::connect(addr, &net).unwrap()),
            FaultPlan::new().kill_after_sends(0),
        )),
        Arc::clone(&stats),
        BufferPool::new(),
    )
    .unwrap();

    let start = Instant::now();
    for (key, &len) in sizes.iter().enumerate() {
        healthy
            .push(0, key, Compressed::Raw(vec![0.1; len]))
            .unwrap();
        assert_eq!(
            silent.push(1, key, Compressed::Raw(vec![0.1; len])),
            Err(NetError::Closed),
            "the faulty link must drop worker 1's pushes"
        );
    }

    // The server sees a forever-partial round and must blame worker 1.
    let failure = loop {
        if let Some(e) = server.failure() {
            break e;
        }
        assert!(start.elapsed() < BUDGET, "round deadline never fired");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        matches!(failure, NetError::WorkerLost { id: 1, .. }),
        "expected WorkerLost for worker 1, got {failure:?}"
    );
    assert_eq!(server.wait_for_shutdown().unwrap_err(), failure);
    drop(healthy);
    drop(silent);
    server.shutdown();
}

#[test]
fn partial_shard_failure_rolls_back_cross_shard_join() {
    // Transactional cross-shard join (DESIGN.md §13): worker 1 joins a
    // two-shard cluster but shard 1's link dies before the Register
    // frame leaves the machine. The two-phase register must admit on
    // shard 0, fail on shard 1, roll the shard-0 admission back — and
    // the surviving member must keep completing rounds on *both*
    // shards. Without the rollback, shard 0 would wait forever on the
    // phantom joiner's pushes.
    const KEY_LEN: usize = 4;
    let cfg = ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1));
    let shards = [
        PsNetServer::start(vec![vec![0.0; KEY_LEN]], cfg),
        PsNetServer::start(vec![vec![0.0; KEY_LEN]], cfg),
    ];
    let stats = Arc::new(TrafficStats::new());
    let clean = |shard: usize| {
        let (a, b) = loopback_pair();
        shards[shard].attach(Box::new(b)).unwrap();
        RemoteClient::new(Box::new(a), Arc::clone(&stats), BufferPool::new()).unwrap()
    };
    let dead = |shard: usize| {
        let (a, b) = loopback_pair();
        shards[shard].attach(Box::new(b)).unwrap();
        RemoteClient::new(
            Box::new(FaultyTransport::new(
                Box::new(a),
                FaultPlan::new().kill_after_sends(0),
            )),
            Arc::clone(&stats),
            BufferPool::new(),
        )
        .unwrap()
    };

    let joiner = ShardedClient::from_clients(vec![clean(0), dead(1)], BufferPool::new());
    match joiner
        .register(1)
        .expect_err("the cross-shard join must fail")
    {
        NetError::Membership { op, shards, .. } => {
            assert_eq!(op, "register");
            assert_eq!(shards, vec![1], "shard 1's dead link is the culprit");
        }
        other => panic!("expected a typed Membership error, got {other:?}"),
    }

    // Rollback proof: worker 0 — the initial member — alone completes a
    // round touching both shards. Guarded by a timeout so a botched
    // rollback shows up as a named failure, not a hung test.
    let w0 = ShardedClient::from_clients(vec![clean(0), clean(1)], BufferPool::new());
    let (tx, rx) = std::sync::mpsc::channel();
    let round = std::thread::spawn(move || {
        for key in 0..2 {
            w0.push(0, key, Compressed::Raw(vec![1.0; KEY_LEN]))
                .unwrap();
        }
        let pulls: Vec<_> = (0..2)
            .map(|key| w0.pull(key, 1).expect("round completes"))
            .collect();
        tx.send(pulls).unwrap();
    });
    let pulls = rx
        .recv_timeout(BUDGET)
        .expect("round stalled: the aborted join left a shard counting the phantom member");
    round.join().unwrap();
    for w in pulls {
        assert_eq!(&*w, &[-1.0f32; KEY_LEN][..], "round missed the survivor");
    }
    for s in &shards {
        assert!(s.failure().is_none(), "rollback must not fail any shard");
        s.shutdown();
    }
}

#[test]
fn tcp_link_drop_reconnects_and_stays_bit_exact() {
    // The worker-side reconnect path over real sockets: both shard
    // links die mid-run (silently — the server is never notified), the
    // reconnecting client redials, re-registers, replays exactly the
    // unaggregated pushes, and rebases its in-flight pulls. The run
    // must finish with *bit-identical* server state to the fault-free
    // run, because replay is exactly-once and the round structure is
    // preserved.
    const KEY_LEN: usize = 4;
    const ROUNDS: u64 = 4;
    fn run(chaos: Option<FaultPlan>) -> (Vec<Vec<f32>>, Vec<u64>, u64) {
        let init = vec![vec![0.0; KEY_LEN], vec![1.0; KEY_LEN]];
        let cfg = ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1));
        let cluster = NetCluster::start_tcp_local(init.clone(), cfg, 2, NetConfig::default())
            .expect("start cluster");
        if let Some(plan) = chaos {
            cluster.arm_chaos(plan);
        }
        let rc = ReconnectConfig {
            retries: 5,
            backoff: Duration::from_millis(10),
        };
        let client = cluster
            .reconnecting_client(0, rc)
            .expect("open connections");
        client.register(0).expect("register");
        for round in 1..=ROUNDS {
            for key in 0..2 {
                client
                    .push(0, key, Compressed::Raw(vec![1.0; KEY_LEN]))
                    .expect("push survives the link drop");
            }
            for (key, w0) in init.iter().enumerate() {
                let w = client
                    .pull_async(key, round)
                    .expect("pull")
                    .wait()
                    .expect("pull survives the link drop");
                assert_eq!(&*w, &[w0[0] - round as f32; KEY_LEN][..]);
            }
        }
        let reconnects = client.reconnects();
        drop(client);
        let (weights, versions) = cluster.snapshot().expect("snapshot");
        Box::new(cluster).shutdown();
        (weights, versions, reconnects)
    }

    let guarded = |chaos: Option<FaultPlan>| {
        let (tx, rx) = std::sync::mpsc::channel();
        let t = std::thread::spawn(move || {
            tx.send(run(chaos)).ok();
        });
        let out = rx.recv_timeout(BUDGET).expect("reconnect run stalled");
        t.join().unwrap();
        out
    };

    let (w_ref, v_ref, n_ref) = guarded(None);
    assert_eq!(n_ref, 0, "a fault-free run must never redial");
    let (w, v, n) = guarded(Some(FaultPlan::new().kill_after_sends(5)));
    assert!(n >= 1, "the armed link drop never fired");
    assert_eq!(v, v_ref, "reconnect must not skip or repeat rounds");
    assert_eq!(w, w_ref, "reconnect must be bit-exact, not merely close");
}

#[test]
fn tcp_process_link_drop_reconnects_within_tolerance() {
    // The tentpole scenario end-to-end across real OS processes: an
    // elastic `psd` shard, two real `worker` binaries, and worker 1's
    // TCP link scripted to die silently mid-run. With `--reconnect-*`
    // armed the worker must absorb the drop — redial, re-register,
    // replay — and *both* workers must exit 0, with the final model
    // within tolerance of the fault-free run. No replacement process is
    // ever spawned: the same worker recovers its own link.
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    const MODEL: &str = "mlp:8,32,4";
    const SEED: u64 = 5;
    const EPOCHS: usize = 3;

    let (train, test) = deploy::build_dataset("blobs", 480, SEED);
    let reference = Trainer::new(
        TrainConfig::new(Algorithm::SSgd, 2)
            .with_lr(0.2)
            .with_batch_size(16)
            .with_epochs(EPOCHS)
            .with_seed(SEED),
        |rng| deploy::build_model(MODEL, rng),
        train.clone(),
        Some(test.clone()),
    )
    .run();
    let reference_acc = accuracy_of(&reference.final_weights, &test);

    struct Reap(Vec<std::process::Child>);
    impl Drop for Reap {
        fn drop(&mut self) {
            for c in &mut self.0 {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
    let mut reap = Reap(Vec::new());

    // No heartbeat eviction window: the dropped link is recovered by
    // the worker itself, and nothing must race to evict it meanwhile.
    let mut psd = Command::new(env!("CARGO_BIN_EXE_psd"))
        .args(["--shard", "0", "--num-shards", "1", "--workers", "2"])
        .args(["--min-quorum", "1"])
        .args(["--lr", "0.2", "--port", "0"])
        .args(["--model", MODEL, "--seed", &SEED.to_string()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn psd");
    let mut psd_out = BufReader::new(psd.stdout.take().expect("psd stdout piped"));
    reap.0.push(psd);
    let mut line = String::new();
    psd_out.read_line(&mut line).expect("read LISTENING line");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected psd output: {line:?}"))
        .to_string();

    let spawn_worker = |id: usize, extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_worker"))
            .args(["--id", &id.to_string(), "--workers", "2"])
            .args(["--servers", &addr, "--algo", "ssgd"])
            .args(["--dataset", "blobs", "--samples", "480", "--batch", "16"])
            .args(["--epochs", &EPOCHS.to_string(), "--lr", "0.2"])
            .args(["--model", MODEL, "--seed", &SEED.to_string()])
            .args(["--register"])
            .args(extra)
            .spawn()
            .expect("spawn worker")
    };

    // Worker 1's link drops after 40 frames (~round 5 of 45); five
    // retries at 50 ms backoff must absorb it.
    reap.0.push(spawn_worker(0, &[]));
    reap.0.push(spawn_worker(
        1,
        &[
            "--chaos-drop-sends",
            "40",
            "--reconnect-retries",
            "5",
            "--reconnect-backoff-ms",
            "50",
        ],
    ));

    let start = Instant::now();
    for idx in [1, 2] {
        let status = reap.0[idx].wait().expect("wait worker");
        assert!(
            status.success(),
            "worker process {idx} exited with {status}: the reconnect did not absorb the drop"
        );
        assert!(start.elapsed() < BUDGET, "link-drop run stalled");
    }

    let num_keys = deploy::initial_weights(MODEL, SEED).len();
    let addrs = [addr];
    let cluster =
        NetCluster::connect(&addrs, num_keys, NetConfig::default()).expect("controller connect");
    let (weights, _versions) = cluster.snapshot().expect("snapshot");
    Box::new(cluster).shutdown();
    let psd_status = reap.0[0].wait().expect("wait psd");
    assert!(psd_status.success(), "psd exited with {psd_status}");
    reap.0.clear();

    let chaos_acc = accuracy_of(&weights, &test);
    assert!(
        (chaos_acc - reference_acc).abs() <= 0.25,
        "link-drop accuracy {chaos_acc} strays too far from fault-free {reference_acc}"
    );
}

#[test]
fn trailing_heartbeat_after_leave_does_not_resurrect_the_worker() {
    // The goodbye wins: a heartbeat frame that lands *after* the same
    // worker's Leave (same connection, FIFO order) must not touch the
    // departed slot — the survivor's rounds keep completing without
    // the leaver, the server stays healthy, and the slot remains
    // re-admittable through a fresh register.
    const KEY_LEN: usize = 8;
    let cfg = ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1));
    let server = PsNetServer::start(vec![vec![0.0; KEY_LEN]], cfg);
    let (acceptor, addr) = TcpAcceptor::bind(("127.0.0.1", 0), NetConfig::default()).unwrap();
    server.listen(acceptor);

    let stats = Arc::new(TrafficStats::new());
    let net = NetConfig::default();
    let connect = || {
        RemoteClient::new(
            Box::new(TcpTransport::connect(addr, &net).unwrap()),
            Arc::clone(&stats),
            BufferPool::new(),
        )
        .unwrap()
    };
    let permanent = connect();
    let transient = connect();

    let start = Instant::now();
    assert_eq!(transient.register(1).expect("join"), vec![0]);
    permanent
        .push(0, 0, Compressed::Raw(vec![1.0; KEY_LEN]))
        .unwrap();
    transient
        .push(1, 0, Compressed::Raw(vec![1.0; KEY_LEN]))
        .unwrap();
    assert_eq!(permanent.pull(0, 1).expect("joint round")[0], -1.0);

    transient.leave(1).expect("graceful leave");
    transient
        .heartbeat(1)
        .expect("a trailing heartbeat frame is still deliverable");
    drop(transient);

    // The survivor alone completes the next round: the trailing
    // heartbeat did not re-admit worker 1 into the quorum.
    permanent
        .push(0, 0, Compressed::Raw(vec![1.0; KEY_LEN]))
        .unwrap();
    assert_eq!(permanent.pull(0, 2).expect("solo round")[0], -2.0);
    assert!(
        server.failure().is_none(),
        "heartbeat-after-leave must not fail the server: {:?}",
        server.failure()
    );

    // And the slot is cleanly re-admittable afterwards.
    let replacement = connect();
    assert_eq!(replacement.register(1).expect("re-join"), vec![2]);
    permanent
        .push(0, 0, Compressed::Raw(vec![1.0; KEY_LEN]))
        .unwrap();
    replacement
        .push(1, 0, Compressed::Raw(vec![1.0; KEY_LEN]))
        .unwrap();
    assert_eq!(permanent.pull(0, 3).expect("rejoined round")[0], -3.0);
    assert!(start.elapsed() < BUDGET, "heartbeat-after-leave stalled");

    drop(permanent);
    drop(replacement);
    server.shutdown();
}
