//! Cross-layer telemetry acceptance tests: the typed event stream must
//! agree *exactly* with the legacy counters it replaced, on every
//! backend. An attached [`AggregateSink`] folds the same events the
//! internal `TrafficStats` counters fold, so the two views must be
//! bit-for-bit equal — in-process, over loopback transports, and over
//! real TCP sockets. Profiled runs must stream the paper's Fig. 5 op
//! spans, and a JSONL trace must round-trip through the parser without
//! losing an event.

use std::sync::{Arc, Mutex};

use cd_sgd::{
    telemetry::parse_jsonl_line, AggregateSink, Algorithm, Event, JsonlSink, MemorySink, Telemetry,
    TrainConfig, Trainer,
};
use cd_sgd_repro::deploy;
use cdsgd_net::NetConfig;
use cdsgd_ps::{InProcessBackend, NetCluster, ParamServer, TrafficStats};
use cdsgd_telemetry::Op;

fn blob_config() -> TrainConfig {
    TrainConfig::new(Algorithm::cd_sgd(0.05, 0.05, 2, 3), 2)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(2)
        .with_seed(5)
}

fn blob_trainer(cfg: TrainConfig) -> Trainer {
    let (train, test) = deploy::build_dataset("blobs", 480, 5);
    Trainer::new(
        cfg,
        |rng| deploy::build_model("mlp:8,32,4", rng),
        train,
        Some(test),
    )
}

/// A slot the `run_with` closure fills with the backend's shared
/// counters, so they stay readable after the run consumes the backend.
type StatsSlot = Arc<Mutex<Option<Arc<TrafficStats>>>>;

/// All seven counters of the sink view vs the legacy accessor view,
/// bit for bit. Runs after the backend shut down (threads joined), so
/// both views are final.
fn assert_views_equal(name: &str, sink: &AggregateSink, stats: &TrafficStats) {
    assert_eq!(
        sink.bytes_pushed(),
        stats.bytes_pushed(),
        "{name}: bytes_pushed"
    );
    assert_eq!(
        sink.bytes_pulled(),
        stats.bytes_pulled(),
        "{name}: bytes_pulled"
    );
    assert_eq!(sink.num_pushes(), stats.num_pushes(), "{name}: num_pushes");
    assert_eq!(sink.num_pulls(), stats.num_pulls(), "{name}: num_pulls");
    assert_eq!(
        sink.bytes_copied(),
        stats.bytes_copied(),
        "{name}: bytes_copied"
    );
    assert_eq!(sink.bytes_sent(), stats.bytes_sent(), "{name}: bytes_sent");
    assert_eq!(
        sink.bytes_received(),
        stats.bytes_received(),
        "{name}: bytes_received"
    );
    assert!(sink.bytes_pushed() > 0, "{name}: counters are not wired up");
}

#[test]
fn aggregate_sink_matches_traffic_stats_on_every_backend() {
    // In-process: the sink attaches to the server's TrafficStats, so it
    // sees the same Push/Pull/SnapshotCopy events the internal counters
    // fold.
    let in_proc_sink = Arc::new(AggregateSink::new());
    let in_proc_tel = Telemetry::new(Arc::clone(&in_proc_sink) as _);
    let in_proc_slot: StatsSlot = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&in_proc_slot);
    let in_proc = blob_trainer(blob_config())
        .run_with(move |init, cfg| {
            let ps = ParamServer::start_traced(init, cfg, in_proc_tel.clone());
            *slot.lock().unwrap() = Some(ps.shared_stats());
            Ok(Box::new(InProcessBackend::new(ps)))
        })
        .expect("in-process run");

    // Loopback and TCP: the sink attaches to the cluster's client-side
    // TrafficStats, which charges the identical frame formulas.
    let loop_sink = Arc::new(AggregateSink::new());
    let loop_tel = Telemetry::new(Arc::clone(&loop_sink) as _);
    let loop_slot: StatsSlot = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&loop_slot);
    let loopback = blob_trainer(blob_config())
        .run_with(move |init, cfg| {
            let cluster = NetCluster::start_loopback_traced(init, cfg, 2, loop_tel.clone())?;
            *slot.lock().unwrap() = Some(cluster.shared_stats());
            Ok(Box::new(cluster))
        })
        .expect("loopback run");

    let tcp_sink = Arc::new(AggregateSink::new());
    let tcp_tel = Telemetry::new(Arc::clone(&tcp_sink) as _);
    let tcp_slot: StatsSlot = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&tcp_slot);
    let tcp = blob_trainer(blob_config())
        .run_with(move |init, cfg| {
            let cluster = NetCluster::start_tcp_local_traced(
                init,
                cfg,
                2,
                NetConfig::default(),
                tcp_tel.clone(),
            )?;
            *slot.lock().unwrap() = Some(cluster.shared_stats());
            Ok(Box::new(cluster))
        })
        .expect("tcp run");

    // The three runs are bit-identical (the repo's standing invariant),
    // so the telemetry comparison below compares like with like.
    assert_eq!(in_proc.final_weights, loopback.final_weights);
    assert_eq!(in_proc.final_weights, tcp.final_weights);

    for (name, sink, slot) in [
        ("in-process", &in_proc_sink, &in_proc_slot),
        ("loopback", &loop_sink, &loop_slot),
        ("tcp", &tcp_sink, &tcp_slot),
    ] {
        let stats = slot.lock().unwrap().take().expect("backend was built");
        assert_views_equal(name, sink, &stats);
    }

    // The message-level accounting is identical across all three
    // backends (the bit-determinism invariant extended to telemetry).
    for sink in [&loop_sink, &tcp_sink] {
        assert_eq!(sink.bytes_pushed(), in_proc_sink.bytes_pushed());
        assert_eq!(sink.bytes_pulled(), in_proc_sink.bytes_pulled());
        assert_eq!(sink.num_pushes(), in_proc_sink.num_pushes());
        assert_eq!(sink.num_pulls(), in_proc_sink.num_pulls());
    }

    // Frame events exist only where frames exist: never in-process,
    // identically on the two wire backends (same codec, same frames).
    assert_eq!(in_proc_sink.bytes_sent(), 0);
    assert_eq!(in_proc_sink.bytes_received(), 0);
    assert!(loop_sink.bytes_sent() > 0);
    assert_eq!(loop_sink.bytes_sent(), tcp_sink.bytes_sent());
    assert_eq!(loop_sink.bytes_received(), tcp_sink.bytes_received());
}

#[test]
fn profiled_run_streams_op_spans_with_monotonic_timestamps() {
    let mem = Arc::new(MemorySink::new());
    let cfg = blob_config()
        .with_profiling(true)
        .with_telemetry(Telemetry::new(Arc::clone(&mem) as _));
    let history = blob_trainer(cfg).run();
    assert!(history.profile.is_some(), "profiling was enabled");

    let spans: Vec<(usize, Op, f64, f64)> = mem
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::OpSpan {
                worker,
                op,
                start_s,
                end_s,
                ..
            } => Some((worker, op, start_s, end_s)),
            _ => None,
        })
        .collect();

    // The paper's Fig. 5 categories all appear for CD-SGD: forward,
    // backward, quantization, and the pull wait it tries to hide.
    for op in [Op::Forward, Op::Backward, Op::Compress, Op::PullWait] {
        assert!(
            spans.iter().any(|(_, o, _, _)| *o == op),
            "no {op:?} ({}) span in a profiled CD-SGD run",
            op.name()
        );
    }

    // Per worker, spans arrive in recording order: timestamps are
    // monotonic and every interval is well-formed.
    for w in 0..2 {
        let mut last = f64::NEG_INFINITY;
        let mut count = 0;
        for (worker, _, start_s, end_s) in &spans {
            if *worker != w {
                continue;
            }
            assert!(*end_s >= *start_s, "inverted span interval");
            assert!(
                *start_s >= last,
                "worker {w} spans out of order: {start_s} after {last}"
            );
            last = *start_s;
            count += 1;
        }
        assert!(count > 0, "worker {w} recorded no spans");
    }
}

#[test]
fn jsonl_trace_round_trips_every_event() {
    let path = std::env::temp_dir().join(format!("cdsgd_{}_trace.jsonl", std::process::id()));
    let mem = Arc::new(MemorySink::new());
    let jsonl = Telemetry::new(Arc::new(JsonlSink::create(&path).expect("create trace")) as _);
    let tel = Telemetry::new(Arc::clone(&mem) as _).and(&jsonl);

    let history = blob_trainer(blob_config().with_profiling(true).with_telemetry(tel)).run();
    jsonl.flush();

    let text = std::fs::read_to_string(&path).expect("read trace");
    let parsed: Vec<Event> = text
        .lines()
        .map(|l| parse_jsonl_line(l).unwrap_or_else(|e| panic!("unparsable line {l:?}: {e:?}")))
        .collect();

    // The file holds exactly the event stream the memory sink saw,
    // value for value (f32/f64 survive the JSON round trip exactly).
    // Compared as sorted multisets: the two sinks receive every event,
    // but concurrent worker flushes may interleave differently.
    let canon = |events: &[Event]| -> Vec<String> {
        let mut v: Vec<String> = events
            .iter()
            .map(|e| serde_json::to_string(e).expect("event serializes"))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        canon(&parsed),
        canon(&mem.events()),
        "JSONL trace diverged from the event stream"
    );

    // And the epoch rollups in the trace match the history rows.
    let epochs: Vec<&Event> = parsed
        .iter()
        .filter(|e| matches!(e, Event::Epoch { .. }))
        .collect();
    assert_eq!(epochs.len(), history.epochs.len());
    for (ev, row) in epochs.iter().zip(&history.epochs) {
        let Event::Epoch {
            epoch,
            train_loss,
            push_bytes,
            pull_bytes,
            ..
        } = ev
        else {
            unreachable!()
        };
        assert_eq!(*epoch, row.epoch);
        assert_eq!(*train_loss, row.train_loss);
        assert_eq!(*push_bytes, row.cumulative_push_bytes);
        assert_eq!(*pull_bytes, row.cumulative_pull_bytes);
    }
    std::fs::remove_file(&path).ok();
}
