//! Connection-scaling soak test for the event-loop server: one `psd`
//! process must sustain well over a hundred concurrent TCP workers with
//! a *fixed* IO-thread pool and bounded per-connection memory. The old
//! thread-per-connection server would burn two OS threads and two
//! stacks per worker; the readiness-polling loop keeps the server's
//! footprint flat no matter how many sockets attach, and this test
//! pins that property with an RSS delta read from the server process's
//! own `/proc/<pid>/status`.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::thread;

use cd_sgd_repro::deploy;
use cdsgd_compress::Compressed;
use cdsgd_net::{NetConfig, TcpAcceptor};
use cdsgd_ps::{NetCluster, PsBackend, PsNetServer, ServerConfig};

const SEED: u64 = 5;
const MODEL: &str = "mlp:8,32,4";
/// The acceptance bar from the control-plane redesign: ≥128 concurrent
/// worker connections against a single shard server.
const SOAK_WORKERS: usize = 128;
const SOAK_ROUNDS: u64 = 3;
/// RSS growth budget for the server across all soak connections —
/// 512 KiB per connection, an order of magnitude above the real
/// steady-state cost, but far below what a per-connection thread pair
/// (two stacks) or an unbounded write buffer would show.
const RSS_BUDGET_KIB: u64 = (SOAK_WORKERS as u64) * 512;

/// Kills leftover children if an assertion fires before clean shutdown.
struct Reap(Vec<Child>);

impl Drop for Reap {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Resident set size of `pid` in KiB, from `/proc/<pid>/status`.
/// `None` where procfs is unavailable — the soak still runs, only the
/// memory assertion is skipped.
fn rss_kib(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn one_psd_sustains_128_concurrent_workers_with_bounded_rss() {
    let mut reap = Reap(Vec::new());
    let mut child = Command::new(env!("CARGO_BIN_EXE_psd"))
        .args([
            "--shard",
            "0",
            "--num-shards",
            "1",
            "--workers",
            &SOAK_WORKERS.to_string(),
            "--lr",
            "0.2",
            "--port",
            "0",
            "--model",
            MODEL,
            "--seed",
            &SEED.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn psd");
    let stdout = child.stdout.take().expect("psd stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read LISTENING line");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected psd output: {line:?}"))
        .to_string();
    let pid = child.id();
    reap.0.push(child);

    let init = deploy::initial_weights(MODEL, SEED);
    let key_lens: Vec<usize> = init.iter().map(Vec::len).collect();
    let num_keys = key_lens.len();
    let rss_before = rss_kib(pid);

    // Every worker holds its connections open across two barrier stops:
    // the first lets the main thread measure the server's RSS while all
    // sockets are attached and every round has completed; the second
    // releases the workers to disconnect.
    let barrier = Arc::new(Barrier::new(SOAK_WORKERS + 1));
    let handles: Vec<_> = (0..SOAK_WORKERS)
        .map(|w| {
            let addr = addr.clone();
            let key_lens = key_lens.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let cluster = NetCluster::connect(
                    std::slice::from_ref(&addr),
                    key_lens.len(),
                    NetConfig::default(),
                )
                .expect("connect soak worker");
                let client = cluster.client().expect("open connection");
                // Zero gradients keep the global weights bit-equal to
                // the init, so the final snapshot is self-checking.
                for round in 0..SOAK_ROUNDS {
                    for (key, &len) in key_lens.iter().enumerate() {
                        client
                            .push(w, key, Compressed::Raw(vec![0.0; len]))
                            .expect("push");
                    }
                    for (key, &len) in key_lens.iter().enumerate() {
                        let weights = client.pull(key, round + 1).expect("pull");
                        assert_eq!(weights.len(), len, "pull returned wrong key shape");
                    }
                }
                barrier.wait(); // rounds done, connection still open
                barrier.wait(); // main thread has measured RSS
                drop(cluster);
            })
        })
        .collect();

    barrier.wait();
    let rss_after = rss_kib(pid);
    if let (Some(before), Some(after)) = (rss_before, rss_after) {
        let grew = after.saturating_sub(before);
        assert!(
            grew < RSS_BUDGET_KIB,
            "server RSS grew {grew} KiB across {SOAK_WORKERS} connections \
             (budget {RSS_BUDGET_KIB} KiB): per-connection memory is not bounded"
        );
    }
    barrier.wait();
    for h in handles {
        h.join().expect("soak worker thread panicked");
    }

    // Controller: the zero-gradient rounds must have left the weights
    // untouched and advanced every key to exactly SOAK_ROUNDS.
    let cluster = NetCluster::connect(std::slice::from_ref(&addr), num_keys, NetConfig::default())
        .expect("connect controller");
    let (weights, versions) = cluster.snapshot().expect("snapshot");
    Box::new(cluster).shutdown();
    assert_eq!(weights, init, "zero gradients must not move the weights");
    assert!(
        versions.iter().all(|&v| v == SOAK_ROUNDS),
        "every key must finish {SOAK_ROUNDS} rounds, got {versions:?}"
    );

    let status = reap.0.remove(0).wait().expect("wait psd");
    assert!(status.success(), "psd exited with {status}");
}

#[test]
fn io_thread_pool_stays_fixed_as_connections_attach() {
    // The in-process twin of the soak: the event loop serves every
    // connection from the same small pool — attaching more sockets must
    // not grow it.
    const WORKERS: usize = 32;
    let server = PsNetServer::start(vec![vec![0.0; 8]], ServerConfig::new(WORKERS, 1.0));
    let (acceptor, addr) = TcpAcceptor::bind(("127.0.0.1", 0), NetConfig::default()).unwrap();
    server.listen(acceptor);
    let pool_at_start = server.io_threads();

    let addr = addr.to_string();
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let addr = addr.clone();
            thread::spawn(move || {
                let cluster =
                    NetCluster::connect(std::slice::from_ref(&addr), 1, NetConfig::default())
                        .expect("connect");
                let client = cluster.client().expect("open connection");
                client.push(w, 0, Compressed::Raw(vec![1.0; 8])).unwrap();
                let weights = client.pull(0, 1).unwrap();
                // lr 1.0, 32 workers, Σgrad = 32 → step −1.0 on every lane.
                assert_eq!(&*weights, &[-1.0f32; 8][..]);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    assert_eq!(
        server.io_threads(),
        pool_at_start,
        "IO pool grew with connection count"
    );
    assert_eq!(server.rejected_connections(), 0);
    server.shutdown();
}

#[test]
fn reconnecting_worker_survives_repeated_link_drops_exactly() {
    // Endurance for the reconnect path: one worker rides out *three*
    // scripted link drops in a single 40-round run — every session is
    // torn down mid-stream, redialed, re-registered, and its
    // unaggregated pushes replayed. The final server state must be
    // exact: any lost or double-counted replay shows up as a wrong
    // weight or a skipped round.
    use std::time::Duration;

    use cdsgd_net::{FaultPlan, ReconnectConfig};
    use cdsgd_ps::{ElasticConfig, ParamClient};

    const KEY_LEN: usize = 8;
    const ROUNDS: u64 = 40;
    const DROPS: u64 = 3;
    const SOAK_BUDGET: Duration = Duration::from_secs(60);

    fn run() -> (Vec<Vec<f32>>, Vec<u64>, u64) {
        let init = vec![vec![0.0; KEY_LEN], vec![1.0; KEY_LEN]];
        let cfg = cdsgd_ps::ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1));
        let cluster = NetCluster::start_tcp_local(init.clone(), cfg, 2, NetConfig::default())
            .expect("start cluster");
        // Each armed plan is consumed by exactly one dial, so keeping
        // one plan armed ahead of the next redial chains the drops:
        // the initial dial and the first two redials all get dying
        // links; the last redial finds nothing armed and runs clean.
        let drop_plan = || FaultPlan::new().kill_after_sends(20);
        cluster.arm_chaos(drop_plan());
        let rc = ReconnectConfig {
            retries: 5,
            backoff: Duration::from_millis(10),
        };
        let client = cluster
            .reconnecting_client(0, rc)
            .expect("open connections");
        cluster.arm_chaos(drop_plan());
        let mut armed = 2u64;

        client.register(0).expect("register");
        for round in 1..=ROUNDS {
            for key in 0..2 {
                client
                    .push(0, key, Compressed::Raw(vec![1.0; KEY_LEN]))
                    .expect("push survives every drop");
            }
            for (key, w0) in init.iter().enumerate() {
                let w = client
                    .pull_async(key, round)
                    .expect("pull")
                    .wait()
                    .expect("pull survives every drop");
                assert_eq!(&*w, &[w0[0] - round as f32; KEY_LEN][..]);
            }
            // A redial consumed the armed plan: arm the next one until
            // the drop quota is reached.
            if client.reconnects() >= armed - 1 && armed < DROPS {
                cluster.arm_chaos(drop_plan());
                armed += 1;
            }
        }
        let reconnects = client.reconnects();
        drop(client);
        let (weights, versions) = cluster.snapshot().expect("snapshot");
        Box::new(cluster).shutdown();
        (weights, versions, reconnects)
    }

    let (tx, rx) = std::sync::mpsc::channel();
    let t = thread::spawn(move || {
        tx.send(run()).ok();
    });
    let (weights, versions, reconnects) = rx
        .recv_timeout(SOAK_BUDGET)
        .expect("repeated-drop soak stalled");
    t.join().unwrap();

    assert_eq!(
        reconnects, DROPS,
        "every armed drop must fire and be recovered exactly once"
    );
    assert_eq!(versions, vec![ROUNDS; 2], "no round skipped or repeated");
    assert_eq!(
        weights,
        vec![
            vec![0.0 - ROUNDS as f32; KEY_LEN],
            vec![1.0 - ROUNDS as f32; KEY_LEN]
        ],
        "replay must be exactly-once: drift here means a lost or doubled push"
    );
}
