//! Fault-recovery integration (DESIGN.md §14): consistent durable
//! checkpoints and resume across real `psd`/`worker` OS processes.
//!
//! The acceptance bar is bit-identity: a `psd` group killed with
//! SIGKILL exactly at a checkpoint boundary and resumed with `--resume`
//! — together with workers relaunched at the matching `--start-epoch` —
//! must finish with globals byte-for-byte equal to an uninterrupted
//! run. The cross-shard manifest makes the boundary consistent: a round
//! is resumable only when *every* shard's file for it exists.

use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cd_sgd_repro::deploy;
use cdsgd_net::NetConfig;
use cdsgd_ps::recover::{latest_complete_round, ShardCheckpoint};
use cdsgd_ps::{NetCluster, PsBackend};

const SEED: u64 = 5;
const WORKERS: usize = 2;
const SHARDS: usize = 2;
const MODEL: &str = "mlp:8,32,4";
const BUDGET: Duration = Duration::from_secs(60);

/// Kills leftover children if an assertion fires before clean shutdown.
struct Reap(Vec<Child>);

impl Drop for Reap {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn spawn_psd(shard: usize, extra: &[&str]) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_psd"))
        .args(["--shard", &shard.to_string()])
        .args(["--num-shards", &SHARDS.to_string()])
        .args(["--workers", &WORKERS.to_string()])
        .args(["--lr", "0.2", "--port", "0"])
        .args(["--model", MODEL, "--seed", &SEED.to_string()])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn psd");
    let stdout = child.stdout.take().expect("psd stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read LISTENING line");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected psd output: {line:?}"))
        .to_string();
    (child, reader, addr)
}

fn spawn_worker(id: usize, servers: &str, algo: &str, epochs: usize, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_worker"))
        .args(["--id", &id.to_string(), "--workers", &WORKERS.to_string()])
        .args(["--servers", servers, "--algo", algo])
        .args(["--dataset", "blobs", "--samples", "480", "--batch", "16"])
        .args(["--epochs", &epochs.to_string(), "--lr", "0.2"])
        .args(["--model", MODEL, "--seed", &SEED.to_string()])
        .args(extra)
        .spawn()
        .expect("spawn worker")
}

/// The uninterrupted in-process reference run.
fn reference_run(algo: Algorithm, epochs: usize) -> (Vec<Vec<f32>>, usize) {
    let (train, test) = deploy::build_dataset("blobs", 480, SEED);
    let trainer = Trainer::new(
        TrainConfig::new(algo, WORKERS)
            .with_lr(0.2)
            .with_batch_size(16)
            .with_epochs(epochs)
            .with_seed(SEED),
        |rng| deploy::build_model(MODEL, rng),
        train,
        Some(test),
    );
    let ipe = trainer.iters_per_epoch();
    (trainer.run().final_weights, ipe)
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cdsgd_recovery_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The full scenario: train to the checkpoint boundary, SIGKILL every
/// shard, resume from the checkpoint set, finish, and return the final
/// reassembled globals.
fn kill9_resume_run(algo_flag: &str, worker_extra: &[&str], ipe: usize) -> Vec<Vec<f32>> {
    let ckpt_dir = fresh_dir(algo_flag);
    let boundary = (2 * ipe) as u64;
    let every = boundary.to_string();
    let psd_flags = |resume: bool| -> Vec<String> {
        let mut f = vec![
            "--checkpoint-dir".into(),
            ckpt_dir.display().to_string(),
            "--checkpoint-every".into(),
            every.clone(),
        ];
        if resume {
            f.push("--resume".into());
        }
        f
    };

    // ---- phase 1: run the first two epochs, then SIGKILL the group ----
    let mut reap = Reap(Vec::new());
    let mut addrs = Vec::new();
    for shard in 0..SHARDS {
        let flags: Vec<String> = psd_flags(false);
        let flags: Vec<&str> = flags.iter().map(String::as_str).collect();
        let (child, _reader, addr) = spawn_psd(shard, &flags);
        reap.0.push(child);
        addrs.push(addr);
    }
    let servers = addrs.join(",");
    let workers: Vec<Child> = (0..WORKERS)
        .map(|id| spawn_worker(id, &servers, algo_flag, 2, worker_extra))
        .collect();
    for (id, mut w) in workers.into_iter().enumerate() {
        let status = w.wait().expect("wait worker");
        assert!(status.success(), "phase-1 worker {id} exited with {status}");
    }

    // The boundary capture happens inside the server loop as the last
    // key's version crosses it — wait for the manifest to be complete
    // before pulling the plug, so the kill lands exactly on a boundary.
    let start = Instant::now();
    loop {
        match latest_complete_round(&ckpt_dir, SHARDS) {
            Ok(Some(round)) if round == boundary => break,
            Ok(_) => {}
            Err(e) => panic!("manifest scan failed: {e}"),
        }
        assert!(
            start.elapsed() < BUDGET,
            "checkpoint set at round {boundary} never completed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    for c in &mut reap.0 {
        c.kill().expect("SIGKILL psd");
        c.wait().expect("reap killed psd");
    }
    reap.0.clear();

    // ---- phase 2: resume the group and finish the remaining epochs ----
    let mut addrs = Vec::new();
    for shard in 0..SHARDS {
        let flags: Vec<String> = psd_flags(true);
        let flags: Vec<&str> = flags.iter().map(String::as_str).collect();
        let (child, _reader, addr) = spawn_psd(shard, &flags);
        reap.0.push(child);
        addrs.push(addr);
    }
    let servers = addrs.join(",");
    let resume_extra: Vec<&str> = [worker_extra, &["--start-epoch", "2"]].concat();
    let workers: Vec<Child> = (0..WORKERS)
        .map(|id| spawn_worker(id, &servers, algo_flag, 4, &resume_extra))
        .collect();
    for (id, mut w) in workers.into_iter().enumerate() {
        let status = w.wait().expect("wait worker");
        assert!(status.success(), "phase-2 worker {id} exited with {status}");
    }

    let num_keys = deploy::initial_weights(MODEL, SEED).len();
    let cluster =
        NetCluster::connect(&addrs, num_keys, NetConfig::default()).expect("connect controller");
    let (weights, versions) = cluster.snapshot().expect("snapshot");
    Box::new(cluster).shutdown();
    for (shard, mut child) in reap.0.drain(..).enumerate() {
        let status = child.wait().expect("wait psd");
        assert!(status.success(), "psd shard {shard} exited with {status}");
    }
    assert!(
        versions.iter().all(|&v| v == (4 * ipe) as u64),
        "resumed shards must end at round {}: {versions:?}",
        4 * ipe
    );
    std::fs::remove_dir_all(&ckpt_dir).ok();
    weights
}

#[test]
fn kill9_at_checkpoint_boundary_resumes_bit_identically() {
    // S-SGD: the workers' state is fully determined by the server's
    // globals at an epoch boundary, so resume needs no worker
    // checkpoint — only the shards' durable snapshots and the replayed
    // shuffle RNG.
    let (expected, ipe) = reference_run(Algorithm::SSgd, 4);
    let weights = kill9_resume_run("ssgd", &[], ipe);
    assert_eq!(
        weights, expected,
        "kill -9 + resume diverged from the uninterrupted run"
    );
}

#[test]
fn kill9_resume_restores_worker_private_state_bit_identically() {
    // EF-SGD: velocity and error-feedback residuals live only in the
    // workers, so bit-identical resume additionally needs the worker
    // checkpoints (`--checkpoint-dir` on the worker side).
    let wdir = fresh_dir("efsgd_workers");
    let wdir_s = wdir.display().to_string();
    let (expected, ipe) = reference_run(Algorithm::ef_sgd(0.9), 4);
    let worker_extra = ["--checkpoint-dir", &wdir_s, "--checkpoint-every", "2"];
    let weights = kill9_resume_run("efsgd", &worker_extra, ipe);
    assert_eq!(
        weights, expected,
        "EF-SGD kill -9 + resume diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&wdir).ok();
}

#[test]
fn torn_checkpoint_sets_are_never_resumed() {
    // The manifest invariant: a round is resumable only when every
    // shard's file exists. A torn set (one shard crashed before its
    // write) must be skipped in favour of the older complete one.
    let dir = fresh_dir("torn");
    let ck = |shard: usize, round: u64| ShardCheckpoint {
        shard,
        num_shards: 2,
        round,
        weights: vec![vec![round as f32]],
        opt_state: vec![vec![]],
    };
    ck(0, 4).save_atomic(&dir).unwrap();
    ck(1, 4).save_atomic(&dir).unwrap();
    ck(0, 8).save_atomic(&dir).unwrap(); // shard 1 never wrote round 8
    assert_eq!(
        latest_complete_round(&dir, 2).unwrap(),
        Some(4),
        "the torn round-8 set must be invisible to resume"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_empty_directory_starts_fresh() {
    // `--resume` against a directory with no complete set is a fresh
    // start, not an error — and the stdout contract holds: LISTENING is
    // still the first stdout line (spawn_psd would panic otherwise).
    let dir = fresh_dir("fresh");
    let dir_s = dir.display().to_string();
    let (child, _reader, addr) = spawn_psd(0, &["--checkpoint-dir", &dir_s, "--resume"]);
    let mut reap = Reap(vec![child]);
    let num_keys = deploy::initial_weights(MODEL, SEED).len();
    // Shard 0 of SHARDS serves a subset of keys; connect to it alone as
    // a single-shard group for the shutdown handshake.
    let cluster = NetCluster::connect(std::slice::from_ref(&addr), num_keys, NetConfig::default());
    match cluster {
        Ok(c) => Box::new(c).shutdown(),
        Err(e) => panic!("controller connect failed: {e}"),
    }
    let status = reap.0[0].wait().expect("wait psd");
    assert!(status.success(), "psd exited with {status}");
    reap.0.clear();
    std::fs::remove_dir_all(&dir).ok();
}
