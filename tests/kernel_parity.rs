//! End-to-end backend parity: one full CD-SGD training run must land on
//! bit-identical final weights whether the kernel layer dispatches to
//! the native SIMD backend or is pinned to the scalar reference with
//! `CDSGD_FORCE_SCALAR=1`.
//!
//! The backend choice is cached process-wide (a `OnceLock` read once at
//! first kernel call), so the scalar run happens in a child process: the
//! test re-executes its own binary with the override set and compares
//! the hash the child prints against the parent's native-run hash.

use cd_sgd::{Algorithm, TrainConfig, Trainer, TrainingHistory};
use cd_sgd_repro::deploy;
use cdsgd_tensor::kernel;
use std::process::Command;

const CHILD_ENV: &str = "CDSGD_PARITY_CHILD";

/// FNV-1a over the little-endian bit patterns of all final weights, in
/// key order — same digest as `tests/strategy_equivalence.rs`.
fn weight_hash(h: &TrainingHistory) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for key in &h.final_weights {
        for w in key {
            for b in w.to_bits().to_le_bytes() {
                acc ^= b as u64;
                acc = acc.wrapping_mul(0x1000_0000_01b3);
            }
        }
    }
    acc
}

/// A short CD-SGD run that exercises every kernel family: GEMM (dense
/// layers), 2-bit threshold scan + packing (the codec), residual
/// accumulate, and the server's `sgd_step` apply path.
fn run_once() -> u64 {
    let (train, test) = deploy::build_dataset("blobs", 480, 5);
    let cfg = TrainConfig::new(Algorithm::cd_sgd(0.05, 0.05, 2, 3), 2)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(2)
        .with_seed(5);
    let h = Trainer::new(
        cfg,
        |rng| deploy::build_model("mlp:8,32,4", rng),
        train,
        Some(test),
    )
    .run();
    weight_hash(&h)
}

#[test]
fn native_and_forced_scalar_runs_produce_identical_weights() {
    if std::env::var(CHILD_ENV).is_ok() {
        // Child mode: forced-scalar run, report the hash on stdout.
        assert_eq!(
            kernel::backend().name(),
            "scalar",
            "child must run on the scalar reference backend"
        );
        println!("PARITY_HASH {:#018x}", run_once());
        return;
    }

    let native = run_once();

    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args([
            "--exact",
            "native_and_forced_scalar_runs_produce_identical_weights",
            "--nocapture",
        ])
        .env(CHILD_ENV, "1")
        .env("CDSGD_FORCE_SCALAR", "1")
        .output()
        .expect("spawn forced-scalar child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "forced-scalar child failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // libtest may interleave its progress line with ours, so locate the
    // marker anywhere in the stream rather than at line starts.
    let scalar = stdout
        .split("PARITY_HASH ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|h| u64::from_str_radix(h.trim_start_matches("0x"), 16).ok())
        .unwrap_or_else(|| panic!("no PARITY_HASH marker in child output:\n{stdout}"));

    assert_eq!(
        native,
        scalar,
        "final weights diverged between the {} backend and the scalar reference",
        kernel::backend().name()
    );
}
