#!/usr/bin/env python3
"""Plot training histories exported by `cd_sgd::checkpoint::save_history`
(or the `cdsgd train --history out.json` CLI flag).

Usage:
    python3 scripts/plot_history.py run1.json [run2.json ...] \
        [--metric test_acc|train_loss|train_acc] [--out curves.png]

With matplotlib installed this writes a PNG; without it, it prints an
ASCII table so the script is still useful on minimal machines.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        h = json.load(f)
    label = f"{h['algo']} (M={h['num_workers']})"
    epochs = [e["epoch"] for e in h["epochs"]]
    return label, epochs, h["epochs"]


def series(rows, metric):
    out = []
    for r in rows:
        v = r.get(metric)
        out.append(float("nan") if v is None else v)
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("histories", nargs="+")
    ap.add_argument("--metric", default="test_acc",
                    choices=["test_acc", "train_loss", "train_acc"])
    ap.add_argument("--out", default=None, help="PNG path (needs matplotlib)")
    args = ap.parse_args()

    runs = [load(p) for p in args.histories]

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None

    if plt is not None and args.out:
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for label, epochs, rows in runs:
            ax.plot(epochs, series(rows, args.metric), marker="o", label=label)
        ax.set_xlabel("epoch")
        ax.set_ylabel(args.metric)
        ax.grid(True, alpha=0.3)
        ax.legend()
        fig.tight_layout()
        fig.savefig(args.out, dpi=150)
        print(f"wrote {args.out}")
        return

    # ASCII fallback.
    width = 12
    header = "epoch".ljust(8) + "".join(label[:width].ljust(width + 2) for label, _, _ in runs)
    print(header)
    max_epochs = max(len(rows) for _, _, rows in runs)
    for e in range(max_epochs):
        line = str(e).ljust(8)
        for _, _, rows in runs:
            if e < len(rows):
                v = rows[e].get(args.metric)
                line += (f"{v:.4f}" if v is not None else "-").ljust(width + 2)
            else:
                line += "-".ljust(width + 2)
        print(line)
    if args.out and plt is None:
        print("matplotlib not available; printed table instead", file=sys.stderr)


if __name__ == "__main__":
    main()
