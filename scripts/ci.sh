#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Explicit gate on the network subsystem: loopback/TCP equivalence and
# the multi-process (psd + worker over localhost TCP) smoke test. Both
# are part of the workspace run above; calling them out keeps a wire
# regression from hiding in the aggregate output.
echo "==> cargo test --test net_equivalence --test net_processes"
cargo test -q --test net_equivalence --test net_processes

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
