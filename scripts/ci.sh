#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# A hung test (the exact failure class tests/chaos.rs exists to prevent)
# must fail CI, not wedge it: every test invocation gets a hard wall-clock
# cap. `--foreground` lets cargo's own output through and signals the
# whole process group on expiry.
TEST_TIMEOUT=600
run_tests() {
    timeout --foreground "$TEST_TIMEOUT" "$@" || {
        status=$?
        if [ "$status" -eq 124 ]; then
            echo "ERROR: '$*' exceeded ${TEST_TIMEOUT}s — deadlocked test?" >&2
        fi
        exit "$status"
    }
}

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
run_tests cargo test -q --workspace

# The whole suite again pinned to the scalar reference kernels
# (DESIGN.md §15). The SIMD backend is bit-identical by contract, so
# every test must pass under either backend; running both catches a
# kernel that drifts from its scalar twin anywhere the proptests'
# input distribution misses.
echo "==> CDSGD_FORCE_SCALAR=1 cargo test -q --workspace"
run_tests env CDSGD_FORCE_SCALAR=1 cargo test -q --workspace

# The release build once more with the host's full ISA enabled — the
# configuration benchmark numbers are quoted from — to catch
# target-feature-dependent compile errors the portable build skips.
echo "==> RUSTFLAGS='-C target-cpu=native' cargo build --release"
RUSTFLAGS="-C target-cpu=native" CARGO_TARGET_DIR=target/native cargo build --release

# Explicit gate on the network subsystem: loopback/TCP equivalence, the
# multi-process (psd + worker over localhost TCP) smoke test, and the
# worker-failure chaos suite. All are part of the workspace run above;
# calling them out keeps a wire or supervision regression from hiding in
# the aggregate output.
echo "==> cargo test --test net_equivalence --test net_processes --test chaos"
run_tests cargo test -q --test net_equivalence --test net_processes --test chaos

# Explicit gate on the fault-recovery subsystem (DESIGN.md §14): SIGKILL
# at a checkpoint boundary + `psd --resume` must be bit-identical to the
# uninterrupted run, torn cross-shard checkpoint sets must never be
# resumed, and the durable-snapshot codecs must round-trip.
echo "==> cargo test --test recovery + checkpoint suites"
run_tests cargo test -q --test recovery
run_tests cargo test -q -p cdsgd-ps recover
run_tests cargo test -q -p cd-sgd -- recover checkpoint supervise

# Explicit gate on the elastic control plane: the dynamic-membership
# state machine (join acks, quorum resize, heartbeat eviction, drain to
# zero), the mid-run joiner's pull rebase, scripted departures through
# the trainer, the 128-connection soak against one psd process with
# its bounded-RSS assertion, and the repeated-link-drop reconnect soak.
echo "==> cargo test --test soak + membership suites"
run_tests cargo test -q --test soak
run_tests cargo test -q -p cdsgd-ps -- quorum elastic_join heartbeat_timeout \
    graceful rebased fixed_membership
run_tests cargo test -q -p cd-sgd depart
run_tests cargo test -q parse_elastic

# Explicit gate on the partial-failure cluster (DESIGN.md §13): the
# transactional cross-shard join must roll back when one shard's link
# dies, the worker-side reconnect must absorb scripted TCP drops —
# bit-exactly in-process and within tolerance across real psd/worker
# processes — and fault-free runs with no --reconnect-* flags must
# take the exact old code paths.
echo "==> cargo test reconnect + rollback suites"
run_tests cargo test -q -p cdsgd-ps -- reconnect register_rolls_back \
    partial_register fenced
run_tests cargo test -q --test chaos -- rolls_back link_drop \
    trailing_heartbeat
run_tests cargo test -q parse_reconnect

# Explicit gate on the collective layer (DESIGN.md §16): allreduce must
# be bit-identical across the in-memory ring, loopback/TCP wire rings,
# and the tree — the pinned reduction-order contract — the TCP ring's
# telemetry byte accounting must land exactly on 2(N−1)/N of the vector
# per member per round, decentralized compressed gossip must stay within
# tolerance of the PS baseline at the matched codec, and ECQ-SGD must
# degenerate to BIT-SGD bit-for-bit at α = β = 1.
echo "==> cargo test --test topology_equivalence + collective suites"
run_tests cargo test -q --test topology_equivalence
run_tests cargo test -q -p cdsgd-ps -- collective allreduce
run_tests cargo test -q parse_topology

# Explicit gate on the update-strategy layer: every algorithm variant must
# reproduce the final-weight hashes captured before the UpdateStrategy
# refactor, on both the in-process and loopback backends. A hash change
# means training semantics moved, which is never an accident to wave
# through.
echo "==> cargo test --test strategy_equivalence"
run_tests cargo test -q --test strategy_equivalence

# Explicit gate on the telemetry subsystem: the AggregateSink view must
# stay bit-for-bit equal to the legacy TrafficStats counters on every
# backend, profiled runs must stream the Fig. 5 op spans, JSONL traces
# must round-trip, and the multi-process byte books must balance.
echo "==> cargo test --test telemetry"
run_tests cargo test -q --test telemetry
run_tests cargo test -q -p cdsgd-telemetry

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
