#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
