//! Networked front-end: serve a [`ParamServer`] over any
//! [`Transport`], talk to one through [`RemoteClient`], and deploy whole
//! sharded groups with [`NetCluster`].
//!
//! The protocol is the frame vocabulary of [`cdsgd_net::wire`]; encoding
//! is deterministic and f32 round-trips are bit-exact, so training over
//! loopback or TCP follows *exactly* the same trajectory as the
//! in-process channels — the transport changes wall-clock cost, never
//! math. The per-worker FIFO the server's aggregation relies on is
//! preserved because each worker's pushes travel one ordered connection.
//!
//! The server side multiplexes every connection onto a small fixed pool
//! of I/O threads (readiness polling over non-blocking transports — see
//! [`Transport::poll_recv_frame`] and friends) instead of spawning a
//! reader/writer thread pair per connection, so one `psd` process
//! sustains hundreds of workers with a constant thread count. Each
//! connection keeps a per-connection read buffer and a FIFO of pending
//! replies with a bounded outbound queue: replies go out in request
//! order, and a pull for a not-yet-reached version delays later replies
//! on *that connection only* — harmless for the training workload, where
//! workers request versions in nondecreasing order and never gate a push
//! on an outstanding reply.

use crate::api::{ParamClient, PsBackend};
use crate::client::{PendingPull, PsClient};
use crate::recover::Durability;
use crate::server::{ParamServer, ServerConfig};
use crate::sharded::{partition_keys, reassemble_snapshots, ShardedClient};
use crate::stats::TrafficStats;
use crate::Key;
use cdsgd_compress::{BufferPool, Compressed};
use cdsgd_net::wire::{self, WireMsg, FRAME_PREFIX_BYTES};
use cdsgd_net::{
    loopback_pair, FaultPlan, FaultyTransport, NetConfig, NetError, ReconnectConfig, TcpAcceptor,
    TcpTransport, Transport,
};
use cdsgd_telemetry::Event;
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval for stoppable blocking reads. Short enough that
/// shutdown feels instant, long enough to stay off the scheduler.
const POLL: Duration = Duration::from_millis(200);

/// Number of I/O threads a [`PsNetServer`] multiplexes its connections
/// over — fixed, independent of how many workers connect.
const IO_THREADS: usize = 2;

/// Per-connection bound on queued outbound bytes: while a connection's
/// transport holds at least this much unflushed output, the event loop
/// stops popping further replies for it (backpressure) until the socket
/// drains.
const MAX_CONN_WBUF: usize = 1 << 20;

/// Frames read from one connection per event-loop visit, so a firehose
/// connection cannot starve its neighbours on the same I/O thread.
const READ_BURST: usize = 32;

/// Event-loop sleep when a full pass over all connections moved no
/// bytes. Short enough to keep added latency in the noise, long enough
/// to keep an idle server off the scheduler.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

fn spawn_err(e: std::io::Error) -> NetError {
    NetError::Io(format!("spawn connection thread: {e}"))
}

// ---------------------------------------------------------------------------
// server side
// ---------------------------------------------------------------------------

/// A reply owed to a connection, queued in request order. Only the front
/// of a connection's queue is ever polled, so replies can never reorder.
enum Reply {
    Pull {
        key: u32,
        min_version: u64,
        pending: PendingPull,
    },
    Snapshot(Receiver<(Vec<Vec<f32>>, Vec<u64>)>),
    Register(Receiver<Vec<u64>>),
    Checkpoint(Receiver<Option<u64>>),
}

/// Per-connection state owned by one I/O thread: the non-blocking
/// transport, a reusable read buffer, and the FIFO of replies owed.
struct Conn {
    t: Box<dyn Transport>,
    rbuf: Vec<u8>,
    replies: VecDeque<Reply>,
    /// Transport connection id, tagged onto frame events.
    id: u64,
}

/// One parameter-server shard served over transports: wraps an ordinary
/// in-process [`ParamServer`] and speaks the wire protocol to any number
/// of attached connections ([`PsNetServer::attach`]) or a whole TCP
/// listener ([`PsNetServer::listen`]). This is the engine of the `psd`
/// server binary and of [`NetCluster`]'s local deployments.
///
/// All connections are multiplexed over a fixed pool of
/// [`PsNetServer::io_threads`] event-loop threads — per-connection cost
/// is a buffer, not a thread pair.
pub struct PsNetServer {
    ps: Mutex<Option<ParamServer>>,
    stats: Arc<TrafficStats>,
    failure: Arc<Mutex<Option<NetError>>>,
    stop: Arc<AtomicBool>,
    shutdown_signal: Arc<(Mutex<bool>, Condvar)>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// New connections are handed to I/O threads round-robin.
    conn_txs: Vec<Sender<Conn>>,
    next_io: AtomicUsize,
    rejected: Arc<AtomicU64>,
}

impl PsNetServer {
    /// Start a server thread owning `init` and ready to accept
    /// connections.
    pub fn start(init: Vec<Vec<f32>>, cfg: ServerConfig) -> Arc<Self> {
        Self::start_traced(init, cfg, cdsgd_telemetry::Telemetry::disabled())
    }

    /// [`PsNetServer::start`] with a telemetry sink attached: every
    /// protocol-, transport- and round-lifecycle event this shard
    /// produces is forwarded to `telemetry` in addition to the counters.
    pub fn start_traced(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        telemetry: cdsgd_telemetry::Telemetry,
    ) -> Arc<Self> {
        Self::start_durable(init, cfg, telemetry, Durability::default())
    }

    /// [`PsNetServer::start_traced`] with the recovery subsystem wired
    /// in: optionally restore the inner server from a shard checkpoint
    /// and/or write new checkpoints (see [`crate::recover`]). This is
    /// the engine of `psd --checkpoint-dir/--checkpoint-every/--resume`.
    pub fn start_durable(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        telemetry: cdsgd_telemetry::Telemetry,
        durability: Durability,
    ) -> Arc<Self> {
        let ps = ParamServer::start_durable(init, cfg, telemetry, durability);
        let client = ps.client();
        let stats = ps.stats_arc();
        let stop = Arc::new(AtomicBool::new(false));
        let signal = Arc::new((Mutex::new(false), Condvar::new()));
        let mut threads = Vec::new();
        let mut conn_txs = Vec::new();
        for i in 0..IO_THREADS {
            let (tx, rx) = unbounded::<Conn>();
            conn_txs.push(tx);
            let client = client.clone();
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let signal = Arc::clone(&signal);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("psd-io-{i}"))
                    .spawn(move || io_loop(rx, client, stats, stop, signal))
                    .expect("spawn I/O thread"),
            );
        }
        Arc::new(Self {
            stats,
            failure: ps.failure_arc(),
            ps: Mutex::new(Some(ps)),
            stop,
            shutdown_signal: signal,
            threads: Mutex::new(threads),
            conn_txs,
            next_io: AtomicUsize::new(0),
            rejected: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Serve one established connection: switch it to non-blocking mode
    /// and hand it to an I/O thread (round-robin).
    pub fn attach(&self, transport: Box<dyn Transport>) -> Result<(), NetError> {
        let mut t = transport;
        t.set_nonblocking(true)?;
        let conn = Conn {
            id: t.conn_id(),
            t,
            rbuf: Vec::new(),
            replies: VecDeque::new(),
        };
        let i = self.next_io.fetch_add(1, Ordering::Relaxed) % self.conn_txs.len();
        self.conn_txs[i]
            .send(conn)
            .map_err(|_| NetError::ServerGone)
    }

    /// Accept connections from `acceptor` until shutdown. A connection
    /// that fails to attach is counted ([`PsNetServer::rejected_connections`])
    /// and reported as a [`Event::ConnRejected`] instead of silently
    /// dropped — and does not tear down the acceptor.
    pub fn listen(self: &Arc<Self>, acceptor: TcpAcceptor) {
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("psd-accept".into())
            .spawn(move || loop {
                if me.stop.load(Ordering::Relaxed) {
                    break;
                }
                match acceptor.accept(POLL) {
                    Ok(t) => {
                        if let Err(e) = me.attach(Box::new(t)) {
                            me.reject(&e);
                        }
                    }
                    Err(NetError::Timeout) => continue,
                    Err(e) => {
                        // The listener itself is broken; report once and
                        // stop accepting (unless this is just shutdown).
                        if !me.stop.load(Ordering::Relaxed) {
                            me.reject(&e);
                        }
                        break;
                    }
                }
            })
            .expect("spawn accept thread");
        self.threads.lock().unwrap().push(handle);
    }

    /// Count and report one failed/rejected connection attempt.
    fn reject(&self, err: &NetError) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.stats.telemetry().emit(|| Event::ConnRejected {
            reason: err.to_string(),
        });
    }

    /// Number of I/O threads multiplexing this server's connections —
    /// fixed at startup, independent of how many workers attach.
    pub fn io_threads(&self) -> usize {
        self.conn_txs.len()
    }

    /// Connection attempts that failed to attach (see
    /// [`PsNetServer::listen`]).
    pub fn rejected_connections(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The failure that ended aggregation (the inner server's round
    /// deadline fired), if any.
    pub fn failure(&self) -> Option<NetError> {
        self.failure.lock().unwrap().clone()
    }

    /// Block until some client sends a [`WireMsg::Shutdown`] frame (the
    /// `psd` binary parks its main thread here) — `Ok(())` — or the inner
    /// server's round deadline declares a worker lost — `Err(WorkerLost)`,
    /// so the hosting process can exit nonzero instead of serving a dead
    /// round forever.
    pub fn wait_for_shutdown(&self) -> Result<(), NetError> {
        let (flag, cv) = &*self.shutdown_signal;
        let mut stopped = flag.lock().unwrap();
        loop {
            if let Some(err) = self.failure() {
                return Err(err);
            }
            if *stopped {
                return Ok(());
            }
            // Timed wait: the failure cell is written by the server
            // thread, which does not signal this condvar.
            let (guard, _) = cv
                .wait_timeout(stopped, Duration::from_millis(100))
                .unwrap();
            stopped = guard;
        }
    }

    /// Traffic counters (shared with the inner server: protocol-level
    /// push/pull plus transport-level sent/received).
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Stop serving: drop all connections, then stop the server thread.
    /// Idempotent (connection threads may already be gone).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let (flag, cv) = &*self.shutdown_signal;
        *flag.lock().unwrap() = true;
        cv.notify_all();
        // Stopping the inner server first unblocks writer threads parked
        // in `PendingPull::wait` on versions that will never arrive.
        if let Some(ps) = self.ps.lock().unwrap().take() {
            ps.shutdown();
        }
        let threads = std::mem::take(&mut *self.threads.lock().unwrap());
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for PsNetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One I/O thread: adopt connections from `rx`, then loop over all of
/// them — read ready frames, dispatch to the in-process client, pop
/// resolved replies (FIFO, bounded outbound queue), flush. Sleeps only
/// when a full pass moved nothing.
fn io_loop(
    rx: Receiver<Conn>,
    client: PsClient,
    stats: Arc<TrafficStats>,
    stop: Arc<AtomicBool>,
    signal: Arc<(Mutex<bool>, Condvar)>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut wbuf = Vec::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        while let Ok(c) = rx.try_recv() {
            conns.push(c);
        }
        if conns.is_empty() {
            // Nothing to poll: park until a connection arrives (bounded,
            // so the stop flag stays responsive).
            match rx.recv_timeout(POLL) {
                Ok(c) => conns.push(c),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            match service_conn(&mut conns[i], &client, &stats, &signal, &mut wbuf) {
                Ok(p) => {
                    progress |= p;
                    i += 1;
                }
                // Dead connection (peer hung up, protocol violation, or
                // server gone): drop it; its transport closes on drop.
                Err(_) => {
                    conns.swap_remove(i);
                }
            }
        }
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// One event-loop visit to one connection. `Ok(true)` if any frame moved
/// in either direction; `Err` retires the connection.
fn service_conn(
    c: &mut Conn,
    client: &PsClient,
    stats: &TrafficStats,
    signal: &(Mutex<bool>, Condvar),
    wbuf: &mut Vec<u8>,
) -> Result<bool, NetError> {
    let mut progress = false;
    // Inbound: drain up to READ_BURST ready frames.
    for _ in 0..READ_BURST {
        if !c.t.poll_recv_frame(&mut c.rbuf)? {
            break;
        }
        progress = true;
        stats.record_received(c.id, FRAME_PREFIX_BYTES + c.rbuf.len());
        match wire::decode_msg(&c.rbuf)? {
            WireMsg::Push {
                worker,
                key,
                payload,
            } => client.push_from(c.id, worker as usize, key as usize, payload)?,
            WireMsg::Pull { key, min_version } => {
                let pending = client.pull_async(key as usize, min_version)?;
                c.replies.push_back(Reply::Pull {
                    key,
                    min_version,
                    pending,
                });
            }
            WireMsg::SetLr { lr } => client.set_lr(lr)?,
            WireMsg::Snapshot => c
                .replies
                .push_back(Reply::Snapshot(client.snapshot_async()?)),
            WireMsg::Register { worker } => c.replies.push_back(Reply::Register(
                client.join_async_from(c.id, worker as usize)?,
            )),
            WireMsg::Heartbeat { worker } => client.heartbeat(worker as usize)?,
            WireMsg::Leave { worker } => client.leave(worker as usize)?,
            WireMsg::CancelJoin { worker } => client.cancel_join_from(c.id, worker as usize)?,
            WireMsg::Checkpoint => c
                .replies
                .push_back(Reply::Checkpoint(client.checkpoint_async()?)),
            WireMsg::Shutdown => {
                let (flag, cv) = signal;
                *flag.lock().unwrap() = true;
                cv.notify_all();
                return Err(NetError::ServerGone);
            }
            // Server-to-client messages arriving at the server are a
            // protocol violation; drop the connection.
            WireMsg::PullReply { .. }
            | WireMsg::SnapshotReply { .. }
            | WireMsg::RegisterAck { .. }
            | WireMsg::CheckpointAck { .. } => {
                return Err(NetError::Io("unexpected server-to-client frame".into()))
            }
        }
    }
    // Outbound: pop resolved replies in request order while the
    // transport's queued output stays under the per-connection bound.
    while c.t.pending_out_bytes() < MAX_CONN_WBUF {
        let ready = match c.replies.front() {
            None => break,
            Some(Reply::Pull {
                key,
                min_version,
                pending,
            }) => match pending.try_wait() {
                None => break,
                // A typed failure (round deadline, shutdown) kills the
                // connection; the remote client surfaces ServerGone,
                // same as the old writer-thread behaviour.
                Some(Err(e)) => return Err(e),
                Some(Ok(w)) => {
                    wire::encode_pull_reply_into(*key, *min_version, &w, wbuf);
                    true
                }
            },
            Some(Reply::Snapshot(rx)) => match rx.try_recv() {
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Err(NetError::ServerGone),
                Ok((w, v)) => {
                    wire::encode_snapshot_reply_into(&w, &v, wbuf);
                    true
                }
            },
            Some(Reply::Register(rx)) => match rx.try_recv() {
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Err(NetError::ServerGone),
                Ok(versions) => {
                    wire::encode_register_ack_into(&versions, wbuf);
                    true
                }
            },
            Some(Reply::Checkpoint(rx)) => match rx.try_recv() {
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Err(NetError::ServerGone),
                Ok(round) => {
                    wire::encode_checkpoint_ack_into(round, wbuf);
                    true
                }
            },
        };
        if ready {
            c.replies.pop_front();
            c.t.poll_send_frame(wbuf)?;
            stats.record_sent(c.id, FRAME_PREFIX_BYTES + wbuf.len());
            progress = true;
        }
    }
    // Move queued output toward the socket without blocking.
    if c.t.pending_out_bytes() > 0 {
        c.t.poll_flush()?;
        progress = true;
    }
    Ok(progress)
}

// ---------------------------------------------------------------------------
// client side
// ---------------------------------------------------------------------------

struct WriteHalf {
    t: Box<dyn Transport>,
    buf: Vec<u8>,
}

/// One outstanding pull: its `(key, version)` and the reply channel.
type PendingPullEntry = ((u32, u64), Sender<Result<Arc<[f32]>, NetError>>);
/// A full server snapshot: per-key weights and per-key versions.
type SnapshotReply = (Vec<Vec<f32>>, Vec<u64>);

#[derive(Default)]
struct Pending {
    /// Outstanding pulls in request order, matched by `(key, version)`.
    pulls: VecDeque<PendingPullEntry>,
    snapshot: Option<Sender<SnapshotReply>>,
    /// Outstanding membership registration, resolved by `RegisterAck`.
    register: Option<Sender<Vec<u64>>>,
    /// Outstanding checkpoint request, resolved by `CheckpointAck`.
    checkpoint: Option<Sender<Option<u64>>>,
}

/// A [`ParamClient`] talking to one remote shard over a transport.
///
/// Requests are encoded under a small writer lock; replies arrive on a
/// dedicated reader thread that resolves the matching [`PendingPull`], so
/// the blocking/overlap semantics are identical to the in-process
/// [`PsClient`]. If the connection dies, outstanding and future requests
/// surface [`NetError`]s instead of panicking.
pub struct RemoteClient {
    writer: Mutex<WriteHalf>,
    pending: Arc<Mutex<Pending>>,
    stats: Arc<TrafficStats>,
    pool: BufferPool,
    stop: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
    /// Transport connection id, tagged onto frame events.
    conn: u64,
}

impl RemoteClient {
    /// Wrap an established connection. `stats` aggregates client-side
    /// traffic (shared across shards of a cluster); `pool` recycles push
    /// payload storage after encoding.
    pub fn new(
        transport: Box<dyn Transport>,
        stats: Arc<TrafficStats>,
        pool: BufferPool,
    ) -> Result<Self, NetError> {
        let mut read_t = transport.try_clone()?;
        read_t.set_recv_timeout(Some(POLL))?;
        let conn = transport.conn_id();
        let pending = Arc::new(Mutex::new(Pending::default()));
        let stop = Arc::new(AtomicBool::new(false));

        let pending2 = Arc::clone(&pending);
        let stop2 = Arc::clone(&stop);
        let stats2 = Arc::clone(&stats);
        let reader = std::thread::Builder::new()
            .name("ps-client-read".into())
            .spawn(move || {
                let mut buf = Vec::new();
                loop {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    match read_t.recv_frame(&mut buf) {
                        Ok(()) => {}
                        Err(NetError::Timeout) => continue,
                        Err(_) => break,
                    }
                    stats2.record_received(conn, FRAME_PREFIX_BYTES + buf.len());
                    match wire::decode_msg(&buf) {
                        Ok(WireMsg::PullReply {
                            key,
                            min_version,
                            weights,
                        }) => {
                            stats2.record_pull(FRAME_PREFIX_BYTES + buf.len());
                            let sender = {
                                let mut p = pending2.lock().unwrap();
                                p.pulls
                                    .iter()
                                    .position(|(id, _)| *id == (key, min_version))
                                    .and_then(|i| p.pulls.remove(i))
                                    .map(|(_, tx)| tx)
                            };
                            if let Some(tx) = sender {
                                // The waiter may have been dropped; fine.
                                let _ = tx.send(Ok(weights.into()));
                            }
                        }
                        Ok(WireMsg::SnapshotReply { weights, versions }) => {
                            let tx = pending2.lock().unwrap().snapshot.take();
                            if let Some(tx) = tx {
                                let _ = tx.send((weights, versions));
                            }
                        }
                        Ok(WireMsg::RegisterAck { versions }) => {
                            let tx = pending2.lock().unwrap().register.take();
                            if let Some(tx) = tx {
                                let _ = tx.send(versions);
                            }
                        }
                        Ok(WireMsg::CheckpointAck { round }) => {
                            let tx = pending2.lock().unwrap().checkpoint.take();
                            if let Some(tx) = tx {
                                let _ = tx.send(round);
                            }
                        }
                        // Anything else from the server is a protocol
                        // violation; treat as a dead connection.
                        _ => break,
                    }
                }
                // Dropping the registered senders makes every outstanding
                // wait return `NetError::ServerGone`.
                let mut p = pending2.lock().unwrap();
                p.pulls.clear();
                p.snapshot = None;
                p.register = None;
                p.checkpoint = None;
            })
            .map_err(spawn_err)?;

        Ok(Self {
            writer: Mutex::new(WriteHalf {
                t: transport,
                buf: Vec::new(),
            }),
            pending,
            stats,
            pool,
            stop,
            reader: Some(reader),
            conn,
        })
    }

    /// Encode and send one frame; returns the full frame size.
    fn send(&self, msg: &WireMsg) -> Result<usize, NetError> {
        let mut w = self.writer.lock().unwrap();
        let WriteHalf { t, buf } = &mut *w;
        wire::encode_msg_into(msg, buf);
        t.send_frame(buf)?;
        let n = FRAME_PREFIX_BYTES + buf.len();
        drop(w);
        self.stats.record_sent(self.conn, n);
        Ok(n)
    }

    /// Fetch all weights + versions from this shard. Like
    /// [`RemoteClient::register`], a concurrent second request is
    /// rejected instead of silently dropping the first caller's slot.
    pub fn snapshot(&self) -> Result<(Vec<Vec<f32>>, Vec<u64>), NetError> {
        let (tx, rx) = bounded(1);
        {
            let mut p = self.pending.lock().unwrap();
            if p.snapshot.is_some() {
                return Err(NetError::Io(
                    "a snapshot request is already outstanding on this connection".into(),
                ));
            }
            p.snapshot = Some(tx);
        }
        if let Err(e) = self.send(&WireMsg::Snapshot) {
            self.pending.lock().unwrap().snapshot = None;
            return Err(e);
        }
        rx.recv().map_err(|_| NetError::ServerGone)
    }

    /// Ask this shard to write a durable checkpoint of its current state
    /// ([`WireMsg::Checkpoint`]). Returns the captured round, or `None`
    /// if the shard refused (see [`PsClient::checkpoint_now`]). Subject
    /// to the same single-outstanding-request guard as `snapshot`.
    pub fn checkpoint_now(&self) -> Result<Option<u64>, NetError> {
        let (tx, rx) = bounded(1);
        {
            let mut p = self.pending.lock().unwrap();
            if p.checkpoint.is_some() {
                return Err(NetError::Io(
                    "a checkpoint request is already outstanding on this connection".into(),
                ));
            }
            p.checkpoint = Some(tx);
        }
        if let Err(e) = self.send(&WireMsg::Checkpoint) {
            self.pending.lock().unwrap().checkpoint = None;
            return Err(e);
        }
        rx.recv().map_err(|_| NetError::ServerGone)
    }

    /// Tell the remote server process to exit ([`WireMsg::Shutdown`]).
    pub fn shutdown_server(&self) -> Result<(), NetError> {
        self.send(&WireMsg::Shutdown).map(|_| ())
    }
}

impl ParamClient for RemoteClient {
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError> {
        let n = {
            let mut w = self.writer.lock().unwrap();
            let WriteHalf { t, buf } = &mut *w;
            wire::encode_push_into(worker as u32, key as u32, &payload, buf);
            t.send_frame(buf)?;
            FRAME_PREFIX_BYTES + buf.len()
        };
        // Same formula the in-process server charges, so histories match
        // across backends bit-for-bit.
        self.stats.record_push(n);
        self.stats.record_sent(self.conn, n);
        payload.recycle(&self.pool);
        Ok(())
    }

    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError> {
        let id = (key as u32, min_version);
        let (tx, rx) = bounded(1);
        // Register before sending: the reply may race back before we
        // would re-acquire the pending lock.
        self.pending.lock().unwrap().pulls.push_back((id, tx));
        if let Err(e) = self.send(&WireMsg::Pull {
            key: id.0,
            min_version,
        }) {
            let mut p = self.pending.lock().unwrap();
            if let Some(i) = p.pulls.iter().position(|(pid, _)| *pid == id) {
                p.pulls.remove(i);
            }
            return Err(e);
        }
        Ok(PendingPull(rx))
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        self.send(&WireMsg::SetLr { lr }).map(|_| ())
    }

    /// Register over this connection. A second register while one is
    /// outstanding is rejected with [`NetError::RegisterPending`]: the
    /// single reply slot would otherwise silently drop the first
    /// caller's sender, leaving it to starve and misdeliver the ack.
    fn register(&self, worker: usize) -> Result<Vec<u64>, NetError> {
        let (tx, rx) = bounded(1);
        {
            let mut p = self.pending.lock().unwrap();
            if p.register.is_some() {
                return Err(NetError::RegisterPending);
            }
            p.register = Some(tx);
        }
        if let Err(e) = self.send(&WireMsg::Register {
            worker: worker as u32,
        }) {
            // Nothing went out, so no ack can arrive: reclaim the slot
            // (still ours — concurrent registers were rejected above).
            self.pending.lock().unwrap().register = None;
            return Err(e);
        }
        rx.recv().map_err(|_| NetError::ServerGone)
    }

    /// Rides the same ordered stream as this client's pushes, so a leave
    /// can never overtake an in-flight push.
    fn leave(&self, worker: usize) -> Result<(), NetError> {
        self.send(&WireMsg::Leave {
            worker: worker as u32,
        })
        .map(|_| ())
    }

    /// Rides the same ordered stream as this connection's register, so
    /// the cancel can never overtake the registration it revokes.
    fn cancel_join(&self, worker: usize) -> Result<(), NetError> {
        self.send(&WireMsg::CancelJoin {
            worker: worker as u32,
        })
        .map(|_| ())
    }

    fn heartbeat(&self, worker: usize) -> Result<(), NetError> {
        self.send(&WireMsg::Heartbeat {
            worker: worker as u32,
        })
        .map(|_| ())
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

// ---------------------------------------------------------------------------
// reconnect layer
// ---------------------------------------------------------------------------

/// Per-key bound on the reconnect replay buffer. Workers lag the server
/// by at most one round (two for the deferred pulls of CD-SGD), so the
/// unconfirmed suffix stays tiny; the bound only guards against a
/// pathological run that pushes a key it never pulls.
const REPLAY_DEPTH: usize = 8;

/// One pull owned by the reconnect supervisor: the caller-requested
/// global version, the (possibly clamped) version actually on the wire,
/// the in-flight inner pull, and the channel the caller waits on.
struct OutstandingPull {
    key: Key,
    version: u64,
    issued: u64,
    /// Session epoch the pull was issued under: a failure from an older
    /// epoch must not trigger a redundant reconnect of the newer one.
    epoch: u64,
    pending: PendingPull,
    out: Sender<Result<Arc<[f32]>, NetError>>,
}

enum PullCmd {
    Pull {
        key: Key,
        version: u64,
        out: Sender<Result<Arc<[f32]>, NetError>>,
    },
}

/// The mutable half of a [`ReconnectingClient`]: the live connections
/// plus the bookkeeping that makes a reconnect exactly-once.
struct Session {
    /// Bumped on every successful (or terminally failed) reconnect, so
    /// concurrent failure observers of the *same* dead session trigger
    /// one redial, not one each.
    epoch: u64,
    inner: ShardedClient<RemoteClient>,
    /// Global per-key versions at the caller's registration (zeros for a
    /// worker in the server's initial set): local round `r` of key `k`
    /// is global version `base[k] + r`. Fixed for the client's lifetime —
    /// replay guarantees reconnects never shift the mapping.
    base: Vec<u64>,
    /// Per-key count of pushes sent — the local round cursor.
    pushed: Vec<u64>,
    /// Per-key unconfirmed pushes as `(local_round, payload)`: kept
    /// until a pull (or a re-register ack) proves the round aggregated,
    /// replayed after a reconnect.
    replay: Vec<VecDeque<(u64, Compressed)>>,
    /// The most recent register ack (global versions), used to clamp
    /// re-issued pulls the server can no longer serve exactly.
    acked: Option<Vec<u64>>,
    /// Terminal failure once the retry budget is exhausted; every
    /// subsequent operation returns it.
    failed: Option<NetError>,
}

/// The shared core of a [`ReconnectingClient`]: the session under its
/// own lock, plus everything a redial needs. Held in an `Arc` by the
/// client handle and its supervisor thread.
struct ReconnectCtx {
    /// The mutable session state. Never held across a backoff sleep or
    /// a dial — pushes and heartbeats must stay responsive while a
    /// redial is in flight, or a starved heartbeat could trip the
    /// server's liveness eviction before the reconnect lands.
    session: Mutex<Session>,
    /// Serializes redials. With the session lock released during the
    /// dial, two unserialized observers of the same dead epoch would
    /// race fresh registrations: the loser's discarded connection would
    /// end up the server-side push-fence owner, silently dropping the
    /// winner's pushes. The epoch is only ever advanced while holding
    /// this lock, so a staleness check taken under it cannot be raced.
    redial: Mutex<()>,
    dialer: ShardDialer,
    pool: BufferPool,
    worker: usize,
    rc: ReconnectConfig,
    reconnects: AtomicU64,
}

/// Redial every shard, re-register, prune + replay unconfirmed pushes.
/// `observed_epoch` is the epoch the caller saw the failure under: if
/// the session has moved on since, another thread already reconnected
/// and this call is a no-op. Callers must NOT hold the session lock —
/// the backoff schedule (up to `retries × RECONNECT_BACKOFF_CAP`) runs
/// outside it, and only the final prune/replay/install reacquires it.
fn reconnect_session(ctx: &ReconnectCtx, observed_epoch: u64) -> Result<(), NetError> {
    let _redial = ctx.redial.lock().unwrap();
    {
        let s = ctx.session.lock().unwrap();
        if let Some(e) = &s.failed {
            return Err(e.clone());
        }
        if s.epoch != observed_epoch {
            return Ok(());
        }
    }
    let mut last = NetError::ServerGone;
    for attempt in 0..ctx.rc.retries {
        // Session lock released across the slow parts: heartbeats keep
        // flowing (best-effort, on the dead link) and pushes keep
        // buffering into the replay queue meanwhile.
        std::thread::sleep(ctx.rc.backoff_for(attempt));
        let fresh = match ctx.dialer.dial(&ctx.pool) {
            Ok(clients) => ShardedClient::from_clients(clients, ctx.pool.clone()),
            Err(e) => {
                last = e;
                continue;
            }
        };
        // Re-register: re-admits the worker on every shard (the server
        // clears the slot's stale queued pushes at admission) and acks
        // the current global versions. Transactional, so a partial
        // failure rolls itself back (a `CancelJoin`, which cannot demote
        // the still-active member) before we retry.
        let acked = match fresh.register(ctx.worker) {
            Ok(v) => v,
            Err(e) => {
                last = e;
                continue;
            }
        };
        // Prune, replay and install under one continuous session-lock
        // hold: a concurrently-buffered push is either already in
        // `replay` here (and is re-sent below) or buffered after the
        // install (and goes out on the fresh session directly) — never
        // lost between sessions.
        let mut guard = ctx.session.lock().unwrap();
        let s = &mut *guard;
        // Prune: local rounds at or below the acked version were
        // aggregated before the drop and must not be re-sent.
        for (k, q) in s.replay.iter_mut().enumerate() {
            let done = acked[k].saturating_sub(s.base[k]);
            while q.front().is_some_and(|(r, _)| *r <= done) {
                let (_, payload) = q.pop_front().expect("front checked");
                payload.recycle(&ctx.pool);
            }
        }
        // Replay the unconsumed suffix in round order per key. The
        // payloads stay buffered (re-cloned) in case this session drops
        // too.
        let mut replay_err = None;
        'replay: for (k, q) in s.replay.iter().enumerate() {
            for (_, payload) in q {
                if let Err(e) = fresh.push(ctx.worker, k, payload.clone()) {
                    replay_err = Some(e);
                    break 'replay;
                }
            }
        }
        if let Some(e) = replay_err {
            last = e;
            continue;
        }
        s.inner = fresh;
        s.acked = Some(acked);
        s.epoch += 1;
        ctx.reconnects.fetch_add(1, Ordering::Relaxed);
        return Ok(());
    }
    let mut s = ctx.session.lock().unwrap();
    s.failed = Some(last.clone());
    s.epoch += 1;
    Err(last)
}

/// A [`ParamClient`] that survives transient link drops: any send
/// failure (or an outstanding pull resolving [`NetError::ServerGone`])
/// triggers a bounded-backoff redial of every shard, a re-`Register`,
/// and an exactly-once replay of the pushes the completed rounds did not
/// consume; outstanding pulls are re-issued on the fresh connections by
/// a supervisor thread. Requires an elastic server (re-registration is
/// what clears the server-side queues); see DESIGN.md §13. Never built
/// unless reconnect flags are set, so fault-free runs are untouched.
pub struct ReconnectingClient {
    ctx: Arc<ReconnectCtx>,
    cmd_tx: Sender<PullCmd>,
    supervisor: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl ReconnectingClient {
    pub(crate) fn new(
        dialer: ShardDialer,
        worker: usize,
        num_keys: usize,
        rc: ReconnectConfig,
    ) -> Result<Self, NetError> {
        let pool = BufferPool::new();
        let inner = ShardedClient::from_clients(dialer.dial(&pool)?, pool.clone());
        let ctx = Arc::new(ReconnectCtx {
            session: Mutex::new(Session {
                epoch: 0,
                inner,
                base: vec![0; num_keys],
                pushed: vec![0; num_keys],
                replay: vec![VecDeque::new(); num_keys],
                acked: None,
                failed: None,
            }),
            redial: Mutex::new(()),
            dialer,
            pool,
            worker,
            rc,
            reconnects: AtomicU64::new(0),
        });
        let (cmd_tx, cmd_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let supervisor = spawn_supervisor(Arc::clone(&ctx), cmd_rx, Arc::clone(&stop))?;
        Ok(Self {
            ctx,
            cmd_tx,
            supervisor: Some(supervisor),
            stop,
        })
    }

    /// How many times this client successfully reconnected (diagnostics
    /// and test hooks).
    pub fn reconnects(&self) -> u64 {
        self.ctx.reconnects.load(Ordering::Relaxed)
    }
}

/// Issue one pull on the current session, reconnecting as needed; on
/// success the in-flight pull joins `outstanding`, on terminal failure
/// the caller's channel gets the error.
fn issue_pull(
    ctx: &ReconnectCtx,
    key: Key,
    version: u64,
    out: Sender<Result<Arc<[f32]>, NetError>>,
    outstanding: &mut Vec<OutstandingPull>,
) {
    loop {
        let epoch = {
            let s = ctx.session.lock().unwrap();
            if let Some(e) = &s.failed {
                let _ = out.send(Err(e.clone()));
                return;
            }
            // Clamp a pull the server can no longer serve exactly (only
            // reachable through CD-SGD's one-round-deep deferred pulls
            // when the drop ate the reply): `version - 1` is the oldest
            // the server keeps, and anything older would trip its
            // staleness panic.
            let issued = match &s.acked {
                Some(a) if version + 1 < a[key] => a[key] - 1,
                _ => version,
            };
            match s.inner.pull_async(key, issued) {
                Ok(pending) => {
                    outstanding.push(OutstandingPull {
                        key,
                        version,
                        issued,
                        epoch: s.epoch,
                        pending,
                        out,
                    });
                    return;
                }
                Err(_) => s.epoch,
            }
        };
        // Redial with the session lock released (see `reconnect_session`).
        if reconnect_session(ctx, epoch).is_err() {
            let e = ctx
                .session
                .lock()
                .unwrap()
                .failed
                .clone()
                .unwrap_or(NetError::ServerGone);
            let _ = out.send(Err(e));
            return;
        }
        // Retry on the fresh session.
    }
}

fn spawn_supervisor(
    ctx: Arc<ReconnectCtx>,
    cmd_rx: Receiver<PullCmd>,
    stop: Arc<AtomicBool>,
) -> Result<JoinHandle<()>, NetError> {
    std::thread::Builder::new()
        .name("ps-reconnect".into())
        .spawn(move || {
            let mut outstanding: Vec<OutstandingPull> = Vec::new();
            loop {
                if stop.load(Ordering::Relaxed) {
                    // Dropping `outstanding` drops the out-senders, so
                    // any remaining waiters resolve ServerGone.
                    break;
                }
                // Adopt queued pull requests; park briefly when idle.
                loop {
                    let cmd = if outstanding.is_empty() {
                        match cmd_rx.recv_timeout(POLL) {
                            Ok(c) => Some(c),
                            Err(RecvTimeoutError::Timeout) => None,
                            Err(RecvTimeoutError::Disconnected) => return,
                        }
                    } else {
                        match cmd_rx.try_recv() {
                            Ok(c) => Some(c),
                            Err(TryRecvError::Empty) => None,
                            Err(TryRecvError::Disconnected) => return,
                        }
                    };
                    match cmd {
                        Some(PullCmd::Pull { key, version, out }) => {
                            issue_pull(&ctx, key, version, out, &mut outstanding)
                        }
                        None => break,
                    }
                }
                // Poll the in-flight pulls.
                let mut progress = false;
                let mut i = 0;
                while i < outstanding.len() {
                    match outstanding[i].pending.try_wait() {
                        None => i += 1,
                        Some(Ok(weights)) => {
                            let o = outstanding.swap_remove(i);
                            {
                                // Round `issued` completed, so every
                                // local round at or below it was
                                // aggregated: confirm (drop) those
                                // replay entries.
                                let mut s = ctx.session.lock().unwrap();
                                let done = o.issued.saturating_sub(s.base[o.key]);
                                while s.replay[o.key].front().is_some_and(|(r, _)| *r <= done) {
                                    let (_, payload) =
                                        s.replay[o.key].pop_front().expect("front checked");
                                    payload.recycle(&ctx.pool);
                                }
                            }
                            let _ = o.out.send(Ok(weights));
                            progress = true;
                        }
                        Some(Err(_)) => {
                            // The connection died under this pull:
                            // reconnect (a no-op if a newer epoch
                            // already did) and re-issue it verbatim.
                            let o = outstanding.swap_remove(i);
                            let _ = reconnect_session(&ctx, o.epoch);
                            issue_pull(&ctx, o.key, o.version, o.out, &mut outstanding);
                            progress = true;
                        }
                    }
                }
                if !progress && !outstanding.is_empty() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        })
        .map_err(spawn_err)
}

impl ParamClient for ReconnectingClient {
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError> {
        let epoch = {
            let mut s = self.ctx.session.lock().unwrap();
            if let Some(e) = &s.failed {
                return Err(e.clone());
            }
            s.pushed[key] += 1;
            let round = s.pushed[key];
            s.replay[key].push_back((round, payload.clone()));
            if s.replay[key].len() > REPLAY_DEPTH {
                // Keep the buffer bounded for keys that are pushed but
                // never pulled; under the normal ≤2-round lag this never
                // trips.
                let (_, stale) = s.replay[key].pop_front().expect("len checked");
                stale.recycle(&self.ctx.pool);
            }
            match s.inner.push(worker, key, payload) {
                Ok(()) => return Ok(()),
                Err(_) => s.epoch,
            }
        };
        // The replay buffer holds this push: it was buffered under the
        // session lock, strictly before any install, so whichever redial
        // installs the next session replays it.
        reconnect_session(&self.ctx, epoch)
    }

    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError> {
        let (tx, rx) = bounded(1);
        self.cmd_tx
            .send(PullCmd::Pull {
                key,
                version: min_version,
                out: tx,
            })
            .map_err(|_| NetError::ServerGone)?;
        Ok(PendingPull(rx))
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        self.ctx.session.lock().unwrap().inner.set_lr(lr)
    }

    /// Registers on the current connections (retrying through a
    /// reconnect) and fixes the local→global version mapping to the
    /// ack. Must precede the first push, which the worker binary's flow
    /// guarantees.
    fn register(&self, worker: usize) -> Result<Vec<u64>, NetError> {
        debug_assert_eq!(
            worker, self.ctx.worker,
            "one reconnecting client per worker"
        );
        let epoch = {
            let mut s = self.ctx.session.lock().unwrap();
            if let Some(e) = &s.failed {
                return Err(e.clone());
            }
            match s.inner.register(worker) {
                Ok(acked) => {
                    s.base = acked.clone();
                    s.acked = Some(acked.clone());
                    return Ok(acked);
                }
                Err(_) => s.epoch,
            }
        };
        reconnect_session(&self.ctx, epoch)?;
        let mut s = self.ctx.session.lock().unwrap();
        let acked = s.acked.clone().expect("reconnect stores the ack");
        s.base = acked.clone();
        Ok(acked)
    }

    fn leave(&self, worker: usize) -> Result<(), NetError> {
        let epoch = {
            let s = self.ctx.session.lock().unwrap();
            if let Some(e) = &s.failed {
                return Err(e.clone());
            }
            match s.inner.leave(worker) {
                Ok(()) => return Ok(()),
                Err(_) => s.epoch,
            }
        };
        reconnect_session(&self.ctx, epoch)?;
        self.ctx.session.lock().unwrap().inner.leave(worker)
    }

    /// Forwarded to the current session without a redial on failure: a
    /// cancel is only honoured from the connections whose registration
    /// it rolls back, so re-sending it on a fresh session would be a
    /// server-side no-op anyway.
    fn cancel_join(&self, worker: usize) -> Result<(), NetError> {
        let s = self.ctx.session.lock().unwrap();
        if let Some(e) = &s.failed {
            return Err(e.clone());
        }
        s.inner.cancel_join(worker)
    }

    /// Best-effort: a failed heartbeat means the link is down, and the
    /// push or pull that discovers that triggers the reconnect — the
    /// heartbeat thread must not die (or redial) over it. Takes only a
    /// brief session-lock hold, so heartbeats stay responsive even while
    /// a redial sleeps through its backoff schedule.
    fn heartbeat(&self, worker: usize) -> Result<(), NetError> {
        let s = self.ctx.session.lock().unwrap();
        if let Some(e) = &s.failed {
            return Err(e.clone());
        }
        let _ = s.inner.heartbeat(worker);
        Ok(())
    }

    fn pool(&self) -> &BufferPool {
        &self.ctx.pool
    }
}

impl Drop for ReconnectingClient {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.supervisor.take() {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// deployment
// ---------------------------------------------------------------------------

/// How [`NetCluster`] reaches one shard.
#[derive(Clone)]
enum ShardConn {
    /// In-memory loopback to a server in this process.
    Loopback(Arc<PsNetServer>),
    /// TCP to `addr` (same process, another process, another host).
    Tcp(String),
}

/// Everything needed to (re)dial every shard of a cluster — the piece
/// of [`NetCluster`] a [`ReconnectingClient`] carries so it can rebuild
/// its connections after a link drop without holding the cluster.
#[derive(Clone)]
pub(crate) struct ShardDialer {
    conns: Vec<ShardConn>,
    net: NetConfig,
    stats: Arc<TrafficStats>,
    /// One-shot fault plan: armed by [`NetCluster::arm_chaos`], consumed
    /// by the *next* dial so the redial after an injected drop gets
    /// clean transports.
    chaos: Arc<Mutex<Option<FaultPlan>>>,
}

impl ShardDialer {
    fn open(&self, conn: &ShardConn) -> Result<Box<dyn Transport>, NetError> {
        match conn {
            ShardConn::Loopback(server) => {
                let (client_end, server_end) = loopback_pair();
                server.attach(Box::new(server_end))?;
                Ok(Box::new(client_end))
            }
            ShardConn::Tcp(addr) => Ok(Box::new(TcpTransport::connect(addr.as_str(), &self.net)?)),
        }
    }

    /// Fresh connections to every shard, in shard order. When a chaos
    /// plan is armed, this dial takes it and wraps every transport in a
    /// [`FaultyTransport`] sharing that plan's counters.
    fn dial(&self, pool: &BufferPool) -> Result<Vec<RemoteClient>, NetError> {
        let plan = self.chaos.lock().unwrap().take();
        self.conns
            .iter()
            .map(|c| {
                let mut t = self.open(c)?;
                if let Some(plan) = &plan {
                    t = Box::new(FaultyTransport::new(t, plan.clone()));
                }
                RemoteClient::new(t, Arc::clone(&self.stats), pool.clone())
            })
            .collect()
    }
}

/// A sharded parameter-server deployment behind real transports: the
/// [`PsBackend`] the trainer uses to run *identical* training over
/// loopback, local TCP, or external `psd` server processes.
pub struct NetCluster {
    conns: Vec<ShardConn>,
    /// Locally-owned shard servers (empty when connecting to external
    /// processes).
    local: Vec<Arc<PsNetServer>>,
    /// Send [`WireMsg::Shutdown`] on shutdown (external `psd` processes).
    remote_shutdown: bool,
    num_keys: usize,
    net: NetConfig,
    stats: Arc<TrafficStats>,
    control: Vec<RemoteClient>,
    /// Fault plan for the next worker client dialed (tests / chaos
    /// flags); control clients never see it.
    chaos: Arc<Mutex<Option<FaultPlan>>>,
}

impl NetCluster {
    /// Shards in this process, reached over in-memory loopback
    /// transports — full wire protocol, zero sockets.
    pub fn start_loopback(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        num_shards: usize,
    ) -> Result<Self, NetError> {
        Self::start_loopback_traced(
            init,
            cfg,
            num_shards,
            cdsgd_telemetry::Telemetry::disabled(),
        )
    }

    /// [`NetCluster::start_loopback`] with a telemetry sink attached to
    /// the cluster's client-side traffic accounting.
    pub fn start_loopback_traced(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        num_shards: usize,
        telemetry: cdsgd_telemetry::Telemetry,
    ) -> Result<Self, NetError> {
        let num_keys = init.len();
        let local: Vec<_> = partition_keys(init, num_shards)
            .into_iter()
            .map(|shard_init| PsNetServer::start(shard_init, cfg))
            .collect();
        let conns = local
            .iter()
            .map(|s| ShardConn::Loopback(Arc::clone(s)))
            .collect();
        Self::assemble(
            conns,
            local,
            false,
            num_keys,
            NetConfig::default(),
            telemetry,
        )
    }

    /// Shards in this process, each listening on an ephemeral localhost
    /// TCP port — the full socket path without managing processes.
    pub fn start_tcp_local(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        num_shards: usize,
        net: NetConfig,
    ) -> Result<Self, NetError> {
        Self::start_tcp_local_traced(
            init,
            cfg,
            num_shards,
            net,
            cdsgd_telemetry::Telemetry::disabled(),
        )
    }

    /// [`NetCluster::start_tcp_local`] with a telemetry sink attached to
    /// the cluster's client-side traffic accounting.
    pub fn start_tcp_local_traced(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        num_shards: usize,
        net: NetConfig,
        telemetry: cdsgd_telemetry::Telemetry,
    ) -> Result<Self, NetError> {
        let num_keys = init.len();
        let mut local = Vec::new();
        let mut conns = Vec::new();
        for shard_init in partition_keys(init, num_shards) {
            let server = PsNetServer::start(shard_init, cfg);
            let (acceptor, addr) = TcpAcceptor::bind("127.0.0.1:0", net.clone())?;
            server.listen(acceptor);
            conns.push(ShardConn::Tcp(addr.to_string()));
            local.push(server);
        }
        Self::assemble(conns, local, false, num_keys, net, telemetry)
    }

    /// Connect to already-running `psd` shard processes, `addrs[i]`
    /// serving global keys `{k : k % addrs.len() == i}`. Shutdown frames
    /// are sent to every shard when this cluster shuts down.
    pub fn connect(addrs: &[String], num_keys: usize, net: NetConfig) -> Result<Self, NetError> {
        Self::connect_traced(addrs, num_keys, net, cdsgd_telemetry::Telemetry::disabled())
    }

    /// [`NetCluster::connect`] with a telemetry sink attached to the
    /// client-side traffic accounting: every push/pull/frame event any
    /// client of this cluster records is forwarded to `telemetry`.
    pub fn connect_traced(
        addrs: &[String],
        num_keys: usize,
        net: NetConfig,
        telemetry: cdsgd_telemetry::Telemetry,
    ) -> Result<Self, NetError> {
        assert!(!addrs.is_empty(), "need at least one shard address");
        let conns = addrs.iter().map(|a| ShardConn::Tcp(a.clone())).collect();
        Self::assemble(conns, Vec::new(), true, num_keys, net, telemetry)
    }

    fn assemble(
        conns: Vec<ShardConn>,
        local: Vec<Arc<PsNetServer>>,
        remote_shutdown: bool,
        num_keys: usize,
        net: NetConfig,
        telemetry: cdsgd_telemetry::Telemetry,
    ) -> Result<Self, NetError> {
        let mut cluster = Self {
            conns,
            local,
            remote_shutdown,
            num_keys,
            net,
            stats: Arc::new(TrafficStats::with_telemetry(telemetry)),
            control: Vec::new(),
            chaos: Arc::new(Mutex::new(None)),
        };
        let pool = BufferPool::new();
        cluster.control = cluster
            .conns
            .iter()
            .map(|c| cluster.open_client(c, pool.clone()))
            .collect::<Result<_, _>>()?;
        Ok(cluster)
    }

    fn open(&self, conn: &ShardConn) -> Result<Box<dyn Transport>, NetError> {
        match conn {
            ShardConn::Loopback(server) => {
                let (client_end, server_end) = loopback_pair();
                server.attach(Box::new(server_end))?;
                Ok(Box::new(client_end))
            }
            ShardConn::Tcp(addr) => Ok(Box::new(TcpTransport::connect(addr.as_str(), &self.net)?)),
        }
    }

    fn open_client(&self, conn: &ShardConn, pool: BufferPool) -> Result<RemoteClient, NetError> {
        RemoteClient::new(self.open(conn)?, Arc::clone(&self.stats), pool)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.conns.len()
    }

    /// Client-side aggregate traffic counters (all shards, all clients
    /// handed out by this cluster).
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Shared ownership of the client-side counters, so a caller can
    /// keep reading them after the cluster has been consumed (e.g. to
    /// check final accounting once a training run shuts it down).
    pub fn shared_stats(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.stats)
    }

    fn dialer(&self) -> ShardDialer {
        ShardDialer {
            conns: self.conns.clone(),
            net: self.net.clone(),
            stats: Arc::clone(&self.stats),
            chaos: Arc::clone(&self.chaos),
        }
    }

    /// Arm a one-shot [`FaultPlan`] for the *next* worker client dialed
    /// from this cluster (via [`PsBackend::client`] or
    /// [`NetCluster::reconnecting_client`]): every transport of that
    /// dial is wrapped in a [`FaultyTransport`] sharing the plan's
    /// counters. Subsequent dials — including the reconnect redial after
    /// the injected drop — get clean transports unless re-armed.
    pub fn arm_chaos(&self, plan: FaultPlan) {
        *self.chaos.lock().unwrap() = Some(plan);
    }

    /// A worker client that survives transient link drops: see
    /// [`ReconnectingClient`]. Requires the shards to be elastic
    /// (`--min-quorum` / [`ElasticConfig`](crate::ElasticConfig)),
    /// since recovery re-registers.
    pub fn reconnecting_client(
        &self,
        worker: usize,
        rc: ReconnectConfig,
    ) -> Result<ReconnectingClient, NetError> {
        ReconnectingClient::new(self.dialer(), worker, self.num_keys, rc)
    }
}

impl PsBackend for NetCluster {
    /// Fresh connections to every shard, routed behind one
    /// [`ShardedClient`]. Each worker gets its own connections (its own
    /// ordered push stream), mirroring a real deployment.
    fn client(&self) -> Result<Box<dyn ParamClient>, NetError> {
        let pool = BufferPool::new();
        let clients = self.dialer().dial(&pool)?;
        Ok(Box::new(ShardedClient::from_clients(clients, pool)))
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        for c in &self.control {
            ParamClient::set_lr(c, lr)?;
        }
        Ok(())
    }

    fn snapshot(&self) -> Result<(Vec<Vec<f32>>, Vec<u64>), NetError> {
        let shards = self
            .control
            .iter()
            .map(|c| c.snapshot())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(reassemble_snapshots(shards, self.num_keys))
    }

    fn bytes_pushed(&self) -> u64 {
        self.stats.bytes_pushed()
    }

    fn bytes_pulled(&self) -> u64 {
        self.stats.bytes_pulled()
    }

    fn failure(&self) -> Option<NetError> {
        self.local.iter().find_map(|s| s.failure())
    }

    fn shutdown(self: Box<Self>) {
        if self.remote_shutdown {
            for c in &self.control {
                let _ = c.shutdown_server();
            }
        }
        let Self { control, local, .. } = *self;
        // Control clients first (joins their reader threads), then the
        // locally-owned servers.
        drop(control);
        for server in local {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_net::wire::{pull_reply_frame_bytes, push_frame_bytes};

    fn init(keys: usize) -> Vec<Vec<f32>> {
        (0..keys).map(|k| vec![k as f32; 3]).collect()
    }

    fn loopback_client(server: &Arc<PsNetServer>) -> RemoteClient {
        let (a, b) = loopback_pair();
        server.attach(Box::new(b)).unwrap();
        RemoteClient::new(
            Box::new(a),
            Arc::new(TrafficStats::new()),
            BufferPool::new(),
        )
        .unwrap()
    }

    #[test]
    fn remote_client_round_trips_over_loopback() {
        let server = PsNetServer::start(init(2), ServerConfig::new(1, 1.0));
        let c = loopback_client(&server);
        c.push(0, 1, Compressed::Raw(vec![1.0, 2.0, 3.0])).unwrap();
        assert_eq!(*c.pull(1, 1).unwrap(), [0.0, -1.0, -2.0]);
        assert_eq!(*c.pull(0, 0).unwrap(), [0.0; 3]);
        c.set_lr(0.5).unwrap();
        let (w, v) = c.snapshot().unwrap();
        assert_eq!(v, vec![0, 1]);
        assert_eq!(w[1], vec![0.0, -1.0, -2.0]);
        server.shutdown();
    }

    #[test]
    fn outstanding_pulls_resolve_as_versions_arrive() {
        let server = PsNetServer::start(init(1), ServerConfig::new(1, 1.0));
        let c = loopback_client(&server);
        // Two pulls outstanding at once; the second waits for a version
        // that only exists after a later push on the same connection —
        // the reader keeps processing while the writer blocks on it.
        let now = c.pull_async(0, 0).unwrap();
        let future = c.pull_async(0, 1).unwrap();
        assert_eq!(*now.wait().unwrap(), [0.0; 3]);
        c.push(0, 0, Compressed::Raw(vec![1.0; 3])).unwrap();
        assert_eq!(*future.wait().unwrap(), [-1.0; 3]);
        server.shutdown();
    }

    #[test]
    fn client_side_stats_use_frame_formulas() {
        let server = PsNetServer::start(init(1), ServerConfig::new(1, 1.0));
        let stats = Arc::new(TrafficStats::new());
        let (a, b) = loopback_pair();
        server.attach(Box::new(b)).unwrap();
        let c = RemoteClient::new(Box::new(a), Arc::clone(&stats), BufferPool::new()).unwrap();
        let payload = Compressed::Raw(vec![1.0; 3]);
        let wire_bytes = payload.wire_bytes();
        c.push(0, 0, payload).unwrap();
        c.pull(0, 1).unwrap();
        assert_eq!(stats.bytes_pushed() as usize, push_frame_bytes(wire_bytes));
        assert_eq!(stats.bytes_pulled() as usize, pull_reply_frame_bytes(3));
        // Transport counters additionally cover the pull request frame:
        // 4 prefix + 1 opcode + 4 key + 8 version = 17 bytes.
        assert_eq!(
            stats.bytes_sent() as usize,
            push_frame_bytes(wire_bytes) + 17
        );
        assert_eq!(stats.bytes_received() as usize, pull_reply_frame_bytes(3));
        drop(c);
        server.shutdown();
    }

    #[test]
    fn server_and_client_agree_on_traffic() {
        let server = PsNetServer::start(init(1), ServerConfig::new(1, 1.0));
        let c = loopback_client(&server);
        c.push(0, 0, Compressed::Raw(vec![1.0; 3])).unwrap();
        c.pull(0, 1).unwrap();
        assert_eq!(server.stats().bytes_pushed(), push_frame_bytes(16) as u64);
        assert_eq!(
            server.stats().bytes_pulled(),
            pull_reply_frame_bytes(3) as u64
        );
        server.shutdown();
    }

    #[test]
    fn loopback_cluster_trains_and_snapshots() {
        let cluster: Box<dyn PsBackend> =
            Box::new(NetCluster::start_loopback(init(5), ServerConfig::new(2, 1.0), 2).unwrap());
        let workers: Vec<_> = (0..2).map(|_| cluster.client().unwrap()).collect();
        std::thread::scope(|s| {
            for (w, c) in workers.iter().enumerate() {
                s.spawn(move || {
                    for k in 0..5 {
                        c.push(w, k, Compressed::Raw(vec![1.0; 3])).unwrap();
                    }
                    c.pull_all(5, 1).unwrap()
                });
            }
        });
        let (w, v) = cluster.snapshot().unwrap();
        assert_eq!(v, vec![1; 5]);
        for (k, wk) in w.iter().enumerate() {
            assert_eq!(*wk, vec![k as f32 - 1.0; 3], "key {k}");
        }
        assert!(cluster.bytes_pushed() > 0);
        cluster.shutdown();
    }

    #[test]
    fn tcp_local_cluster_matches_loopback() {
        let run = |cluster: Box<dyn PsBackend>| {
            let c = cluster.client().unwrap();
            for k in 0..3 {
                c.push(0, k, Compressed::Raw(vec![0.5; 3])).unwrap();
            }
            let w = c.pull_all(3, 1).unwrap();
            drop(c);
            let snap = cluster.snapshot().unwrap();
            cluster.shutdown();
            (w.iter().map(|a| a.to_vec()).collect::<Vec<_>>(), snap)
        };
        let a = run(Box::new(
            NetCluster::start_loopback(init(3), ServerConfig::new(1, 1.0), 2).unwrap(),
        ));
        let b = run(Box::new(
            NetCluster::start_tcp_local(
                init(3),
                ServerConfig::new(1, 1.0),
                2,
                NetConfig::default(),
            )
            .unwrap(),
        ));
        assert_eq!(a, b);
    }

    #[test]
    fn shutdown_frame_wakes_wait_for_shutdown() {
        let server = PsNetServer::start(init(1), ServerConfig::new(1, 1.0));
        let c = loopback_client(&server);
        let s2 = Arc::clone(&server);
        let waiter = std::thread::spawn(move || s2.wait_for_shutdown());
        c.shutdown_server().unwrap();
        waiter.join().unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn membership_round_trips_over_loopback() {
        use crate::ElasticConfig;
        let server = PsNetServer::start(
            init(1),
            ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1)),
        );
        let c = loopback_client(&server);
        c.push(0, 0, Compressed::Raw(vec![2.0; 3])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-2.0; 3]);
        // A second worker joins over its own connection; the ack carries
        // the per-key versions its first pulls must target.
        let c1 = loopback_client(&server);
        assert_eq!(c1.register(1).unwrap(), vec![1]);
        c.push(0, 0, Compressed::Raw(vec![2.0; 3])).unwrap();
        c1.push(1, 0, Compressed::Raw(vec![4.0; 3])).unwrap();
        assert_eq!(*c1.pull(0, 2).unwrap(), [-5.0; 3]);
        // Graceful leave travels the leaver's own push stream; the
        // remaining worker then completes rounds alone.
        c1.heartbeat(1).unwrap();
        c1.leave(1).unwrap();
        c.push(0, 0, Compressed::Raw(vec![2.0; 3])).unwrap();
        assert_eq!(*c.pull(0, 3).unwrap(), [-7.0; 3]);
        assert_eq!(server.rejected_connections(), 0);
        drop(c1);
        server.shutdown();
    }

    #[test]
    fn concurrent_register_is_rejected_not_silently_dropped() {
        // A peer that never answers keeps the first register parked in
        // the reply slot while the second one arrives.
        let (a, quiet_peer) = loopback_pair();
        let c = Arc::new(
            RemoteClient::new(
                Box::new(a),
                Arc::new(TrafficStats::new()),
                BufferPool::new(),
            )
            .unwrap(),
        );
        let c2 = Arc::clone(&c);
        let first = std::thread::spawn(move || c2.register(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while c.pending.lock().unwrap().register.is_none() {
            assert!(
                std::time::Instant::now() < deadline,
                "first register never claimed the reply slot"
            );
            std::thread::yield_now();
        }
        // The overlapping register is rejected with the typed error;
        // the first caller's slot is untouched.
        assert_eq!(c.register(2), Err(NetError::RegisterPending));
        assert!(c.pending.lock().unwrap().register.is_some());
        // Closing the peer wakes the reader, which clears the slot and
        // resolves the first caller with ServerGone instead of hanging.
        drop(quiet_peer);
        assert_eq!(first.join().unwrap(), Err(NetError::ServerGone));
    }

    #[test]
    fn on_demand_checkpoint_round_trips_over_loopback() {
        use crate::recover::{self, CheckpointPolicy};
        let dir = std::env::temp_dir().join(format!("cdsgd-net-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = PsNetServer::start_durable(
            init(2),
            ServerConfig::new(1, 1.0),
            cdsgd_telemetry::Telemetry::disabled(),
            Durability {
                restore: None,
                checkpoint: Some(CheckpointPolicy::new(&dir, None, 0, 1)),
            },
        );
        let c = loopback_client(&server);
        for k in 0..2 {
            c.push(0, k, Compressed::Raw(vec![1.0; 3])).unwrap();
            c.pull(k, 1).unwrap();
        }
        assert_eq!(c.checkpoint_now().unwrap(), Some(1));
        let ckpt = recover::load_latest(&dir, 0, 1).unwrap().unwrap();
        assert_eq!(ckpt.round, 1);
        assert_eq!(ckpt.weights.len(), 2);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_without_a_directory_is_refused_over_the_wire() {
        let server = PsNetServer::start(init(1), ServerConfig::new(1, 1.0));
        let c = loopback_client(&server);
        assert_eq!(c.checkpoint_now().unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn io_thread_pool_is_fixed_size() {
        let server = PsNetServer::start(init(1), ServerConfig::new(1, 1.0));
        let n = server.io_threads();
        // Many connections, still the same pool.
        let clients: Vec<_> = (0..8).map(|_| loopback_client(&server)).collect();
        for c in &clients {
            assert_eq!(*c.pull(0, 0).unwrap(), [0.0; 3]);
        }
        assert_eq!(server.io_threads(), n);
        drop(clients);
        server.shutdown();
    }

    /// `rounds` synchronous rounds as `worker` over two shards; asserts
    /// the pulled weights match the closed form `init(k) - round` so any
    /// double-applied (or lost) replay shows up immediately. The form
    /// holds for any worker count as long as every worker pushes 1.0:
    /// the divisor-N aggregate of N unit gradients steps exactly 1.0.
    fn run_rounds_as(c: &dyn ParamClient, worker: usize, rounds: u64) {
        c.register(worker).unwrap();
        for r in 1..=rounds {
            for k in 0..2 {
                c.push(worker, k, Compressed::Raw(vec![1.0; 3])).unwrap();
            }
            for k in 0..2 {
                let w = c.pull_async(k, r).unwrap().wait().unwrap();
                assert_eq!(
                    *w,
                    [k as f32 - r as f32; 3],
                    "worker {worker} key {k} round {r}"
                );
            }
        }
    }

    fn run_rounds(c: &dyn ParamClient, rounds: u64) {
        run_rounds_as(c, 0, rounds)
    }

    fn elastic_cluster() -> NetCluster {
        use crate::ElasticConfig;
        NetCluster::start_loopback(
            init(2),
            ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1)),
            2,
        )
        .unwrap()
    }

    fn fast_rc() -> cdsgd_net::ReconnectConfig {
        cdsgd_net::ReconnectConfig {
            retries: 5,
            backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn reconnecting_client_is_transparent_without_faults() {
        let reference = {
            let cluster = elastic_cluster();
            let c = cluster.client().unwrap();
            run_rounds(c.as_ref(), 3);
            drop(c);
            let snap = PsBackend::snapshot(&cluster).unwrap();
            Box::new(cluster).shutdown();
            snap
        };
        let cluster = elastic_cluster();
        let c = cluster.reconnecting_client(0, fast_rc()).unwrap();
        run_rounds(&c, 3);
        assert_eq!(c.reconnects(), 0);
        drop(c);
        assert_eq!(PsBackend::snapshot(&cluster).unwrap(), reference);
        Box::new(cluster).shutdown();
    }

    /// An injected link drop mid-run (every shard's transport dies after
    /// a send budget) reconnects, replays, and finishes with the exact
    /// weights of a fault-free run — the tentpole's exactly-once claim.
    fn drop_and_reconnect_is_bit_exact(kill_after_sends: u64) {
        let reference = {
            let cluster = elastic_cluster();
            let c = cluster.client().unwrap();
            run_rounds(c.as_ref(), 4);
            drop(c);
            let snap = PsBackend::snapshot(&cluster).unwrap();
            Box::new(cluster).shutdown();
            snap
        };
        let cluster = elastic_cluster();
        cluster.arm_chaos(cdsgd_net::FaultPlan::new().kill_after_sends(kill_after_sends));
        let c = cluster.reconnecting_client(0, fast_rc()).unwrap();
        run_rounds(&c, 4);
        assert!(c.reconnects() >= 1, "the armed drop never fired");
        drop(c);
        assert_eq!(PsBackend::snapshot(&cluster).unwrap(), reference);
        Box::new(cluster).shutdown();
    }

    #[test]
    fn link_drop_on_push_reconnects_bit_exact() {
        // Per shard: register(1), then push+pull per round — the 5th
        // send is round 3's push, which fails and replays.
        drop_and_reconnect_is_bit_exact(5);
    }

    #[test]
    fn link_drop_on_pull_reconnects_bit_exact() {
        // The 4th send is round 2's pull: the supervisor thread hits the
        // failure, reconnects, and re-issues the pull itself.
        drop_and_reconnect_is_bit_exact(4);
    }

    #[test]
    fn push_from_superseded_connection_is_fenced() {
        use crate::ElasticConfig;
        let server = PsNetServer::start(
            init(1),
            ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1)),
        );
        let c_old = loopback_client(&server);
        assert_eq!(c_old.register(0).unwrap(), vec![0]);
        c_old.push(0, 0, Compressed::Raw(vec![1.0; 3])).unwrap();
        assert_eq!(*c_old.pull(0, 1).unwrap(), [-1.0; 3]);
        // A re-registration over a fresh connection supersedes the old
        // one; the straggler push it then emits must not aggregate.
        let c_new = loopback_client(&server);
        assert_eq!(c_new.register(0).unwrap(), vec![1]);
        c_old.push(0, 0, Compressed::Raw(vec![100.0; 3])).unwrap();
        c_new.push(0, 0, Compressed::Raw(vec![1.0; 3])).unwrap();
        // Same-connection FIFO: this pull reaches the server after the
        // straggler, so its resolution proves the straggler was seen
        // (and dropped) before the snapshot below.
        assert_eq!(*c_old.pull(0, 2).unwrap(), [-2.0; 3]);
        let (w, v) = c_new.snapshot().unwrap();
        assert_eq!(v, vec![2]);
        assert_eq!(w[0], vec![-2.0; 3]);
        server.shutdown();
    }

    #[test]
    fn rollback_after_reregistration_does_not_demote_the_member() {
        use crate::ElasticConfig;
        let server = PsNetServer::start(
            init(1),
            ServerConfig::new(2, 1.0).with_elastic(ElasticConfig::new(2)),
        );
        let c0 = loopback_client(&server);
        assert_eq!(c0.register(0).unwrap(), vec![0]);
        let c1 = loopback_client(&server);
        assert_eq!(c1.register(1).unwrap(), vec![0]);
        // Worker 0 reconnects: a fresh connection re-registers it, then
        // the two-phase join rolls back (as if a later shard failed).
        // The cancel must be a no-op — with a `leave`-based rollback
        // this demoted the still-active member and tripped the
        // min_quorum=2 terminal failure.
        let c0b = loopback_client(&server);
        assert_eq!(c0b.register(0).unwrap(), vec![0]);
        c0b.cancel_join(0).unwrap();
        // Both members still gate and feed rounds; the shard is healthy.
        c0b.push(0, 0, Compressed::Raw(vec![2.0; 3])).unwrap();
        c1.push(1, 0, Compressed::Raw(vec![4.0; 3])).unwrap();
        assert_eq!(*c1.pull(0, 1).unwrap(), [-3.0; 3]);
        assert_eq!(server.failure(), None);
        server.shutdown();
    }

    #[test]
    fn canceled_tentative_join_stops_gating_rounds() {
        use crate::ElasticConfig;
        let server = PsNetServer::start(
            init(1),
            ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1)),
        );
        let c = loopback_client(&server);
        assert_eq!(c.register(0).unwrap(), vec![0]);
        // Worker 5 joins tentatively, then its two-phase register rolls
        // back (a later shard refused). The cancel lands even though the
        // register's ack made it through — without it, the phantom
        // member would gate every round until heartbeat eviction.
        let joiner = loopback_client(&server);
        assert_eq!(joiner.register(5).unwrap(), vec![0]);
        joiner.cancel_join(5).unwrap();
        // Worker 0 alone completes the round (the pull blocks until the
        // server has processed the cancel, then the key pumps).
        c.push(0, 0, Compressed::Raw(vec![2.0; 3])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-2.0; 3]);
        assert_eq!(server.failure(), None);
        server.shutdown();
    }

    #[test]
    fn reconnect_backoff_does_not_block_heartbeats() {
        let cluster = elastic_cluster();
        cluster.arm_chaos(cdsgd_net::FaultPlan::new().kill_after_sends(1));
        let rc = cdsgd_net::ReconnectConfig {
            retries: 3,
            backoff: Duration::from_millis(400),
        };
        let c = Arc::new(cluster.reconnecting_client(0, rc).unwrap());
        // The register is each shard's one allowed send; the first push
        // trips the kill and starts a redial whose first backoff sleeps
        // 400 ms.
        ParamClient::register(c.as_ref(), 0).unwrap();
        let c2 = Arc::clone(&c);
        let pusher = std::thread::spawn(move || c2.push(0, 0, Compressed::Raw(vec![1.0; 3])));
        // While the redial sleeps, heartbeats must keep returning
        // promptly: the session lock is not held across the backoff.
        let t0 = std::time::Instant::now();
        let mut worst = Duration::ZERO;
        while c.reconnects() == 0 && t0.elapsed() < Duration::from_secs(10) {
            let t = std::time::Instant::now();
            c.heartbeat(0).unwrap();
            worst = worst.max(t.elapsed());
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(c.reconnects() >= 1, "the armed drop never fired");
        pusher.join().unwrap().unwrap();
        assert!(
            worst < Duration::from_millis(200),
            "heartbeat stalled {worst:?} behind the redial backoff"
        );
        // The push was replayed on the fresh session: the round
        // completes with the exact fault-free weights.
        assert_eq!(*c.pull_async(0, 1).unwrap().wait().unwrap(), [-1.0; 3]);
        drop(c);
        Box::new(cluster).shutdown();
    }

    /// Worker 0's link drops mid-run while worker 1 stays up, under
    /// min_quorum = 2: the reconnect's re-register must not demote
    /// either member (a terminal below-quorum failure), and the replay
    /// must keep the weights bit-exact with a fault-free run. The
    /// review's quorum-≥2 gap: the other chaos tests are all 1-worker.
    #[test]
    fn link_drop_with_two_workers_and_quorum_two_is_bit_exact() {
        use crate::ElasticConfig;
        let two_worker_cluster = || {
            NetCluster::start_loopback(
                init(2),
                ServerConfig::new(2, 1.0).with_elastic(ElasticConfig::new(2)),
                2,
            )
            .unwrap()
        };
        let reference = {
            let cluster = two_worker_cluster();
            let c0 = cluster.client().unwrap();
            let c1 = cluster.client().unwrap();
            std::thread::scope(|s| {
                s.spawn(|| run_rounds_as(c0.as_ref(), 0, 4));
                s.spawn(|| run_rounds_as(c1.as_ref(), 1, 4));
            });
            drop((c0, c1));
            let snap = PsBackend::snapshot(&cluster).unwrap();
            Box::new(cluster).shutdown();
            snap
        };
        let cluster = two_worker_cluster();
        // Worker 1 dials first so the armed one-shot drop is consumed
        // by worker 0's reconnecting client.
        let c1 = cluster.client().unwrap();
        cluster.arm_chaos(cdsgd_net::FaultPlan::new().kill_after_sends(5));
        let c0 = cluster.reconnecting_client(0, fast_rc()).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| run_rounds_as(&c0, 0, 4));
            s.spawn(|| run_rounds_as(c1.as_ref(), 1, 4));
        });
        assert!(c0.reconnects() >= 1, "the armed drop never fired");
        drop((c0, c1));
        assert_eq!(PsBackend::snapshot(&cluster).unwrap(), reference);
        Box::new(cluster).shutdown();
    }

    #[test]
    fn round_deadline_failure_wakes_wait_for_shutdown() {
        // Two workers expected; only worker 0 ever pushes. The inner
        // server's round deadline fires and the hosting process's park
        // point returns the typed verdict instead of blocking forever.
        let server = PsNetServer::start(
            init(1),
            ServerConfig::new(2, 1.0).with_round_deadline(Duration::from_millis(50)),
        );
        let c = loopback_client(&server);
        c.push(0, 0, Compressed::Raw(vec![1.0; 3])).unwrap();
        let err = server.wait_for_shutdown().unwrap_err();
        assert_eq!(err, NetError::WorkerLost { id: 1, round: 0 });
        assert_eq!(server.failure(), Some(err));
        drop(c);
        server.shutdown();
    }
}
