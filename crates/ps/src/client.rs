//! Worker-side client handle.

use crate::server::Msg;
use crate::stats::TrafficStats;
use crate::Key;
use cdsgd_compress::{BufferPool, Compressed};
use crossbeam_channel::{bounded, Sender};
use std::sync::Arc;

/// A cloneable, thread-safe handle for talking to a [`crate::ParamServer`].
#[derive(Clone)]
pub struct PsClient {
    tx: Sender<Msg>,
    stats: Arc<TrafficStats>,
    pool: BufferPool,
}

impl PsClient {
    pub(crate) fn new(tx: Sender<Msg>, stats: Arc<TrafficStats>, pool: BufferPool) -> Self {
        Self { tx, stats, pool }
    }

    /// Push a gradient payload for `key` on behalf of `worker`.
    /// Non-blocking: aggregation happens on the server thread.
    pub fn push(&self, worker: usize, key: Key, payload: Compressed) {
        self.tx
            .send(Msg::Push {
                worker,
                key,
                payload,
            })
            .expect("parameter server is gone");
    }

    /// Pull the weights for `key`, blocking until exactly `min_version`
    /// aggregate updates have been applied to it. The returned snapshot is
    /// shared (`Arc` bump) with every other worker pulling this version —
    /// the server never copies weights to serve a pull.
    pub fn pull(&self, key: Key, min_version: u64) -> Arc<[f32]> {
        self.pull_async(key, min_version)
            .recv()
            .expect("parameter server dropped the reply")
    }

    /// Fire-and-forget pull request: returns a receiver that yields the
    /// weights once the server reaches `min_version`. This is how delayed
    /// algorithms overlap the pull transfer with the next iteration's
    /// computation (MXNet's engine issues pulls asynchronously too).
    pub fn pull_async(
        &self,
        key: Key,
        min_version: u64,
    ) -> crossbeam_channel::Receiver<Arc<[f32]>> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Msg::Pull {
                key,
                min_version,
                reply: reply_tx,
            })
            .expect("parameter server is gone");
        reply_rx
    }

    /// Pull every key at `min_version` (convenience for warm-up and eval).
    pub fn pull_all(&self, num_keys: usize, min_version: u64) -> Vec<Arc<[f32]>> {
        (0..num_keys).map(|k| self.pull(k, min_version)).collect()
    }

    /// Change the server's global learning rate (takes effect on the next
    /// aggregate update).
    pub fn set_lr(&self, lr: f32) {
        self.tx
            .send(Msg::SetLr(lr))
            .expect("parameter server is gone");
    }

    /// Snapshot all weights and per-key versions (diagnostics).
    pub fn snapshot(&self) -> (Vec<Vec<f32>>, Vec<u64>) {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Msg::Snapshot { reply: reply_tx })
            .expect("parameter server is gone");
        reply_rx.recv().expect("parameter server dropped the reply")
    }

    /// Shared traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The payload buffer pool shared with the server: feed it to
    /// [`cdsgd_compress::GradientCompressor::compress_into`] so each push
    /// reuses storage the server recycled after decoding earlier rounds.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use crate::{ParamServer, ServerConfig};
    use cdsgd_compress::Compressed;

    #[test]
    fn clients_are_cloneable_across_threads() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(4, 1.0));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let c = ps.client();
                std::thread::spawn(move || {
                    c.push(w, 0, Compressed::Raw(vec![1.0]));
                    c.pull(0, 1)
                })
            })
            .collect();
        for h in handles {
            // Each worker contributed 1.0; W = 0 - 1.0/4 * 4 = -1.
            assert_eq!(*h.join().unwrap(), [-1.0]);
        }
        ps.shutdown();
    }

    #[test]
    fn pull_all_returns_every_key() {
        let ps = ParamServer::start(vec![vec![1.0], vec![2.0, 3.0]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        let all = c.pull_all(2, 0);
        assert_eq!(all.len(), 2);
        assert_eq!(*all[0], [1.0]);
        assert_eq!(*all[1], [2.0, 3.0]);
        ps.shutdown();
    }
}
