//! Worker-side client handle.

use crate::server::Msg;
use crate::stats::TrafficStats;
use crate::Key;
use cdsgd_compress::{BufferPool, Compressed};
use cdsgd_net::NetError;
use crossbeam_channel::{bounded, Receiver, Sender};
use std::sync::Arc;

/// A snapshot reply: all weights plus the per-key versions.
pub(crate) type Snapshot = (Vec<Vec<f32>>, Vec<u64>);

/// An outstanding asynchronous pull: resolves to the requested weight
/// snapshot once the server reaches the version. Uniform across the
/// in-process client and the networked [`crate::net::RemoteClient`] —
/// both deliver the decoded snapshot through this handle.
pub struct PendingPull(pub(crate) Receiver<Result<Arc<[f32]>, NetError>>);

impl PendingPull {
    /// Block until the snapshot arrives. [`NetError::ServerGone`] if the
    /// server (or the connection to it) died before replying; a typed
    /// error (e.g. [`NetError::WorkerLost`] from the server's round
    /// deadline) if the server answered but the round failed.
    pub fn wait(&self) -> Result<Arc<[f32]>, NetError> {
        self.0.recv().map_err(|_| NetError::ServerGone)?
    }

    /// Non-blocking probe (event-loop support): `None` while the pull is
    /// still in flight, `Some(..)` once it resolved — or once the server
    /// died, surfacing [`NetError::ServerGone`] like [`PendingPull::wait`].
    pub(crate) fn try_wait(&self) -> Option<Result<Arc<[f32]>, NetError>> {
        use crossbeam_channel::TryRecvError;
        match self.0.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(NetError::ServerGone)),
        }
    }
}

/// A cloneable, thread-safe handle for talking to a [`crate::ParamServer`].
///
/// Every request returns `Result<_, NetError>`: a dead server surfaces as
/// [`NetError::ServerGone`] instead of a worker-thread panic, so callers
/// degrade gracefully (and the networked client slots in behind the same
/// signatures via [`crate::ParamClient`]).
#[derive(Clone)]
pub struct PsClient {
    tx: Sender<Msg>,
    stats: Arc<TrafficStats>,
    pool: BufferPool,
}

impl PsClient {
    pub(crate) fn new(tx: Sender<Msg>, stats: Arc<TrafficStats>, pool: BufferPool) -> Self {
        Self { tx, stats, pool }
    }

    /// Push a gradient payload for `key` on behalf of `worker`.
    /// Non-blocking: aggregation happens on the server thread.
    pub fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError> {
        self.push_from(0, worker, key, payload)
    }

    /// [`PsClient::push`] attributed to a transport connection, so an
    /// elastic server can fence stragglers from a connection the
    /// worker's latest registration superseded (0 = in-process, never
    /// fenced against).
    pub(crate) fn push_from(
        &self,
        conn: u64,
        worker: usize,
        key: Key,
        payload: Compressed,
    ) -> Result<(), NetError> {
        self.tx
            .send(Msg::Push {
                worker,
                key,
                payload,
                conn,
            })
            .map_err(|_| NetError::ServerGone)
    }

    /// Pull the weights for `key`, blocking until exactly `min_version`
    /// aggregate updates have been applied to it. The returned snapshot is
    /// shared (`Arc` bump) with every other worker pulling this version —
    /// the server never copies weights to serve a pull.
    pub fn pull(&self, key: Key, min_version: u64) -> Result<Arc<[f32]>, NetError> {
        self.pull_async(key, min_version)?.wait()
    }

    /// Fire-and-forget pull request: returns a handle that yields the
    /// weights once the server reaches `min_version`. This is how delayed
    /// algorithms overlap the pull transfer with the next iteration's
    /// computation (MXNet's engine issues pulls asynchronously too).
    pub fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Msg::Pull {
                key,
                min_version,
                reply: reply_tx,
            })
            .map_err(|_| NetError::ServerGone)?;
        Ok(PendingPull(reply_rx))
    }

    /// Pull every key at `min_version` (convenience for warm-up and eval).
    pub fn pull_all(&self, num_keys: usize, min_version: u64) -> Result<Vec<Arc<[f32]>>, NetError> {
        (0..num_keys).map(|k| self.pull(k, min_version)).collect()
    }

    /// Change the server's global learning rate (takes effect on the next
    /// aggregate update).
    pub fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        self.tx
            .send(Msg::SetLr(lr))
            .map_err(|_| NetError::ServerGone)
    }

    /// Snapshot all weights and per-key versions (diagnostics).
    pub fn snapshot(&self) -> Result<(Vec<Vec<f32>>, Vec<u64>), NetError> {
        self.snapshot_async()?
            .recv()
            .map_err(|_| NetError::ServerGone)
    }

    /// Fire-and-forget snapshot request (event-loop support): the
    /// receiver resolves once the server replies, and disconnects if the
    /// server dies (or entered the failed state) first.
    pub(crate) fn snapshot_async(&self) -> Result<Receiver<Snapshot>, NetError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Msg::Snapshot { reply: reply_tx })
            .map_err(|_| NetError::ServerGone)?;
        Ok(reply_rx)
    }

    /// Register `worker` with the membership table, blocking for the
    /// per-key version ack (see [`crate::ElasticConfig`]). On a
    /// fixed-membership server this is just the version handshake.
    pub fn register(&self, worker: usize) -> Result<Vec<u64>, NetError> {
        self.join_async(worker)?
            .recv()
            .map_err(|_| NetError::ServerGone)
    }

    /// Fire-and-forget registration (event-loop support).
    pub(crate) fn join_async(&self, worker: usize) -> Result<Receiver<Vec<u64>>, NetError> {
        self.join_async_from(0, worker)
    }

    /// [`PsClient::join_async`] attributed to a transport connection:
    /// on an elastic server the registering connection becomes the
    /// worker's owner for push fencing (0 = in-process, fences nothing).
    pub(crate) fn join_async_from(
        &self,
        conn: u64,
        worker: usize,
    ) -> Result<Receiver<Vec<u64>>, NetError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Msg::Join {
                worker,
                conn,
                reply: reply_tx,
            })
            .map_err(|_| NetError::ServerGone)?;
        Ok(reply_rx)
    }

    /// Graceful departure: `worker` stops gating round completion once
    /// its queued pushes drain. No-op on a fixed-membership server.
    pub fn leave(&self, worker: usize) -> Result<(), NetError> {
        self.tx
            .send(Msg::Leave { worker })
            .map_err(|_| NetError::ServerGone)
    }

    /// Roll back a tentative registration of `worker`: the two-phase
    /// cross-shard join revoking a shard it admitted after a later shard
    /// failed. The server honours the cancel only from the connection
    /// whose registration *promoted* the worker into the active set, so
    /// a rollback that trails a reconnect's re-registration is a no-op
    /// (unlike [`PsClient::leave`], which demotes unconditionally).
    pub fn cancel_join(&self, worker: usize) -> Result<(), NetError> {
        self.cancel_join_from(0, worker)
    }

    /// [`PsClient::cancel_join`] attributed to a transport connection
    /// (0 = in-process).
    pub(crate) fn cancel_join_from(&self, conn: u64, worker: usize) -> Result<(), NetError> {
        self.tx
            .send(Msg::CancelJoin { worker, conn })
            .map_err(|_| NetError::ServerGone)
    }

    /// Ask the server to write a durable shard checkpoint of its current
    /// state (recovery subsystem). Returns the captured round, or `None`
    /// if the server refused (no checkpoint directory configured, a
    /// round mid-flight, or the write failed — see its stderr).
    pub fn checkpoint_now(&self) -> Result<Option<u64>, NetError> {
        self.checkpoint_async()?
            .recv()
            .map_err(|_| NetError::ServerGone)
    }

    /// Fire-and-forget checkpoint request (event-loop support).
    pub(crate) fn checkpoint_async(&self) -> Result<Receiver<Option<u64>>, NetError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Msg::Checkpoint { reply: reply_tx })
            .map_err(|_| NetError::ServerGone)?;
        Ok(reply_rx)
    }

    /// Liveness signal for the heartbeat timeout (pushes also count).
    pub fn heartbeat(&self, worker: usize) -> Result<(), NetError> {
        self.tx
            .send(Msg::Heartbeat { worker })
            .map_err(|_| NetError::ServerGone)
    }

    /// Shared traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The payload buffer pool shared with the server: feed it to
    /// [`cdsgd_compress::GradientCompressor::compress_into`] so each push
    /// reuses storage the server recycled after decoding earlier rounds.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use crate::{ParamServer, ServerConfig};
    use cdsgd_compress::Compressed;
    use cdsgd_net::NetError;

    #[test]
    fn clients_are_cloneable_across_threads() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(4, 1.0));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let c = ps.client();
                std::thread::spawn(move || {
                    c.push(w, 0, Compressed::Raw(vec![1.0])).unwrap();
                    c.pull(0, 1).unwrap()
                })
            })
            .collect();
        for h in handles {
            // Each worker contributed 1.0; W = 0 - 1.0/4 * 4 = -1.
            assert_eq!(*h.join().unwrap(), [-1.0]);
        }
        ps.shutdown();
    }

    #[test]
    fn pull_all_returns_every_key() {
        let ps = ParamServer::start(vec![vec![1.0], vec![2.0, 3.0]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        let all = c.pull_all(2, 0).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(*all[0], [1.0]);
        assert_eq!(*all[1], [2.0, 3.0]);
        ps.shutdown();
    }

    #[test]
    fn dead_server_yields_server_gone_not_a_panic() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        ps.shutdown();
        assert_eq!(
            c.push(0, 0, Compressed::Raw(vec![1.0])),
            Err(NetError::ServerGone)
        );
        assert_eq!(c.pull(0, 0).unwrap_err(), NetError::ServerGone);
        assert_eq!(c.set_lr(0.5), Err(NetError::ServerGone));
        assert_eq!(c.snapshot().unwrap_err(), NetError::ServerGone);
    }
}
