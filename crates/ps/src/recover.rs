//! Durable shard snapshots: the parameter-server half of the recovery
//! subsystem (DESIGN.md §14).
//!
//! A running server can persist its entire mutable state — weights,
//! per-key versions, and [`crate::ServerOpt`] state such as momentum
//! buffers — as one binary *shard checkpoint* per server shard. The three
//! invariants the format is built around:
//!
//! * **Consistency**: a checkpoint captures every key at one uniform
//!   round `v`. Scheduled checkpoints capture each key at the exact
//!   moment its version passes `v` (versions advance one at a time, so
//!   no boundary is ever skipped), then write the file once all keys
//!   have crossed — transient key-version skew never leaks into a file.
//! * **Atomicity**: files are written to a temporary sibling, fsynced,
//!   then renamed into place. A crash mid-write leaves the previous
//!   checkpoint intact, never a torn file; a trailing FNV-1a checksum
//!   rejects any corruption that slips through anyway.
//! * **Cross-shard agreement**: every shard writes at the same round
//!   numbers (`--checkpoint-every` counts aggregate rounds, which all
//!   shards complete in lockstep), and the manifest scan
//!   ([`latest_complete_round`]) only resumes from a round for which
//!   *all* shards have a valid file — torn or version-skewed sets are
//!   rejected wholesale.

use cdsgd_net::wire::{put_f32, put_u32, put_u64, Cursor};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic prefix of every shard checkpoint file.
const MAGIC: &[u8; 4] = b"CDCK";

/// Format version tag. Bump on any layout change; [`ShardCheckpoint::decode`]
/// rejects unknown versions instead of misreading them.
const FORMAT_VERSION: u32 = 1;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The bytes on disk are not a valid checkpoint (bad magic, unknown
    /// format version, checksum mismatch, truncation, or a header that
    /// contradicts where the file was found).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// When and where a server shard writes durable snapshots.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory holding the checkpoint set (shared by all shards).
    pub dir: PathBuf,
    /// Write a checkpoint every this many aggregate rounds. `None`
    /// disables scheduled checkpoints — snapshots then happen only on
    /// demand (the `Checkpoint` wire message).
    pub every: Option<u64>,
    /// This server's shard index.
    pub shard: usize,
    /// Total shards in the deployment (for the cross-shard manifest).
    pub num_shards: usize,
}

impl CheckpointPolicy {
    /// Checkpoint policy for one shard of `num_shards`, writing into
    /// `dir` every `every` rounds (`None` = on-demand only).
    ///
    /// # Panics
    /// Panics if `every == Some(0)` or `shard >= num_shards`.
    pub fn new(
        dir: impl Into<PathBuf>,
        every: Option<u64>,
        shard: usize,
        num_shards: usize,
    ) -> Self {
        assert!(every != Some(0), "checkpoint interval must be at least 1");
        assert!(shard < num_shards, "shard index out of range");
        Self {
            dir: dir.into(),
            every,
            shard,
            num_shards,
        }
    }
}

/// Server state loaded from a checkpoint, fed back into a starting
/// server so it picks up where the snapshot left off: every key's
/// weights and version, plus each key's optimizer state.
#[derive(Clone, Debug, PartialEq)]
pub struct RestoredState {
    /// The uniform key version the snapshot captured.
    pub round: u64,
    /// Per-key weights at `round`.
    pub weights: Vec<Vec<f32>>,
    /// Per-key [`crate::ServerOpt::export_state`] blobs (empty for
    /// stateless optimizers).
    pub opt_state: Vec<Vec<f32>>,
}

/// Everything a starting server needs to participate in recovery:
/// optionally a state to restore, optionally a policy for writing new
/// checkpoints. The default (`None`/`None`) is a plain, non-durable
/// server — the bit-identical historical behaviour.
#[derive(Default)]
pub struct Durability {
    /// Resume from this state instead of the initial weights.
    pub restore: Option<RestoredState>,
    /// Write checkpoints according to this policy.
    pub checkpoint: Option<CheckpointPolicy>,
}

/// One shard's durable snapshot: everything the server thread mutates,
/// captured at one uniform round.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardCheckpoint {
    /// Which shard this file belongs to.
    pub shard: usize,
    /// Total shards in the deployment that wrote this set.
    pub num_shards: usize,
    /// The uniform key version captured.
    pub round: u64,
    /// Per-key weights.
    pub weights: Vec<Vec<f32>>,
    /// Per-key optimizer state blobs.
    pub opt_state: Vec<Vec<f32>>,
}

/// FNV-1a over `bytes` — the same hash the equivalence tests use, here
/// guarding checkpoint payloads against torn or bit-rotted files. Public
/// so the worker-side checkpoint codec (`cd_sgd::recover`) shares one
/// checksum implementation.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical file name of a shard checkpoint.
pub fn checkpoint_file_name(shard: usize, round: u64) -> String {
    format!("shard{shard:04}-round{round:012}.ckpt")
}

/// Inverse of [`checkpoint_file_name`]: `Some((shard, round))` if `name`
/// is a checkpoint file name.
fn parse_file_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("shard")?.strip_suffix(".ckpt")?;
    let (shard, round) = rest.split_once("-round")?;
    Some((shard.parse().ok()?, round.parse().ok()?))
}

impl ShardCheckpoint {
    /// Serialize to the versioned binary layout (see DESIGN.md §14):
    /// magic, format version, shard, num_shards, round, key count, then
    /// per key its weight and optimizer-state vectors, and a trailing
    /// FNV-1a checksum over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        assert_eq!(
            self.weights.len(),
            self.opt_state.len(),
            "one optimizer state blob per key"
        );
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, FORMAT_VERSION);
        put_u32(&mut buf, self.shard as u32);
        put_u32(&mut buf, self.num_shards as u32);
        put_u64(&mut buf, self.round);
        put_u32(&mut buf, self.weights.len() as u32);
        for (w, o) in self.weights.iter().zip(&self.opt_state) {
            put_u32(&mut buf, w.len() as u32);
            for &x in w {
                put_f32(&mut buf, x);
            }
            put_u32(&mut buf, o.len() as u32);
            for &x in o {
                put_f32(&mut buf, x);
            }
        }
        let sum = fnv1a64(&buf);
        put_u64(&mut buf, sum);
        buf
    }

    /// Decode and validate a checkpoint file body.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(CheckpointError::Corrupt(format!(
                "{} bytes is too short for a checkpoint",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(CheckpointError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }
        let corrupt = |e: cdsgd_net::NetError| CheckpointError::Corrupt(e.to_string());
        let mut cur = Cursor::new(body);
        if cur.take(4).map_err(corrupt)? != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic".into()));
        }
        let format = cur.u32().map_err(corrupt)?;
        if format != FORMAT_VERSION {
            return Err(CheckpointError::Corrupt(format!(
                "unknown format version {format} (this build reads {FORMAT_VERSION})"
            )));
        }
        let shard = cur.u32().map_err(corrupt)? as usize;
        let num_shards = cur.u32().map_err(corrupt)? as usize;
        let round = cur.u64().map_err(corrupt)?;
        let nkeys = cur.u32().map_err(corrupt)? as usize;
        let mut weights = Vec::with_capacity(nkeys);
        let mut opt_state = Vec::with_capacity(nkeys);
        for _ in 0..nkeys {
            let wlen = cur.u32().map_err(corrupt)? as usize;
            weights.push(cur.f32s(wlen).map_err(corrupt)?);
            let olen = cur.u32().map_err(corrupt)? as usize;
            opt_state.push(cur.f32s(olen).map_err(corrupt)?);
        }
        if cur.remaining() != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after checkpoint body",
                cur.remaining()
            )));
        }
        Ok(Self {
            shard,
            num_shards,
            round,
            weights,
            opt_state,
        })
    }

    /// Write this checkpoint into `dir` atomically: encode to a
    /// temporary sibling, fsync it, then rename over the final name, so
    /// a crash at any point leaves either the old file or the new one —
    /// never a truncated hybrid. Returns the final path.
    pub fn save_atomic(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let final_path = dir.join(checkpoint_file_name(self.shard, self.round));
        let tmp_path = dir.join(format!(
            ".{}.tmp-{}",
            checkpoint_file_name(self.shard, self.round),
            std::process::id()
        ));
        let bytes = self.encode();
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp_path, &final_path)?;
        // Make the rename itself durable. Directory fsync is
        // best-effort: some platforms refuse to open directories.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(final_path)
    }

    /// The [`RestoredState`] this checkpoint describes.
    pub fn into_restored(self) -> RestoredState {
        RestoredState {
            round: self.round,
            weights: self.weights,
            opt_state: self.opt_state,
        }
    }
}

/// Scan `dir` for the latest round at which *every* shard of
/// `num_shards` has a checkpoint file — the cross-shard manifest. A
/// round missing any shard (a torn set: some shards crashed before
/// writing) is skipped entirely, so resume never mixes versions.
///
/// Returns `Ok(None)` when the directory does not exist or holds no
/// complete set.
pub fn latest_complete_round(
    dir: &Path,
    num_shards: usize,
) -> Result<Option<u64>, CheckpointError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    // round -> bitmask of shards present
    let mut rounds: std::collections::BTreeMap<u64, Vec<bool>> = Default::default();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((shard, round)) = parse_file_name(name) else {
            continue;
        };
        if shard < num_shards {
            rounds
                .entry(round)
                .or_insert_with(|| vec![false; num_shards])[shard] = true;
        }
    }
    Ok(rounds
        .into_iter()
        .rev()
        .find(|(_, shards)| shards.iter().all(|&p| p))
        .map(|(round, _)| round))
}

/// Load and validate the checkpoint for `shard` at `round` from `dir`:
/// the decoded header must agree with the file's name and the caller's
/// deployment shape, otherwise the set is version-skewed and rejected.
pub fn load_shard(
    dir: &Path,
    shard: usize,
    num_shards: usize,
    round: u64,
) -> Result<ShardCheckpoint, CheckpointError> {
    let path = dir.join(checkpoint_file_name(shard, round));
    let bytes = std::fs::read(&path)?;
    let ckpt = ShardCheckpoint::decode(&bytes)?;
    if ckpt.shard != shard || ckpt.round != round {
        return Err(CheckpointError::Corrupt(format!(
            "{} claims shard {} round {} in its header",
            path.display(),
            ckpt.shard,
            ckpt.round
        )));
    }
    if ckpt.num_shards != num_shards {
        return Err(CheckpointError::Corrupt(format!(
            "{} was written by a {}-shard deployment, expected {}",
            path.display(),
            ckpt.num_shards,
            num_shards
        )));
    }
    Ok(ckpt)
}

/// Convenience: the latest complete checkpoint for `shard`, or
/// `Ok(None)` when no complete set exists yet.
pub fn load_latest(
    dir: &Path,
    shard: usize,
    num_shards: usize,
) -> Result<Option<ShardCheckpoint>, CheckpointError> {
    match latest_complete_round(dir, num_shards)? {
        Some(round) => load_shard(dir, shard, num_shards, round).map(Some),
        None => Ok(None),
    }
}

/// Scheduled-checkpoint state machine, driven by the server loop. Each
/// key is captured (an `Arc` clone of its weights plus the optimizer
/// export) at the exact moment its version reaches the next boundary;
/// once every key has crossed, the file is written and the tracker arms
/// the next boundary. Disabled trackers are inert no-ops on the hot
/// path (one `Option` check per completed round).
pub(crate) struct CheckpointTracker {
    policy: Option<CheckpointPolicy>,
    /// Next boundary round, when scheduled checkpoints are armed.
    next: Option<u64>,
    captured: Vec<Option<CapturedKey>>,
}

/// One key's boundary capture: an `Arc` clone of its weights plus the
/// optimizer's exported state for that key.
type CapturedKey = (std::sync::Arc<[f32]>, Vec<f32>);

impl CheckpointTracker {
    /// Tracker over `num_keys` keys starting from `start_round` (0 for a
    /// fresh server, the restored round after a resume).
    pub(crate) fn new(policy: Option<CheckpointPolicy>, num_keys: usize, start_round: u64) -> Self {
        let next = policy.as_ref().and_then(|p| p.every).map(|every| {
            // Smallest multiple of `every` strictly after `start_round`.
            (start_round / every + 1) * every
        });
        Self {
            policy,
            next,
            captured: vec![None; num_keys],
        }
    }

    /// Observe a key crossing into `version` (called once per completed
    /// aggregate round, immediately after the version increment).
    pub(crate) fn observe(
        &mut self,
        key: crate::Key,
        version: u64,
        weights: &std::sync::Arc<[f32]>,
        opt: &dyn crate::ServerOpt,
    ) {
        let Some(next) = self.next else { return };
        if version < next {
            return;
        }
        if version > next {
            // Unreachable by construction (key-version skew is bounded
            // by one round, and boundaries are observed one version at a
            // time), but never write an inconsistent file: abandon this
            // boundary and re-arm past the runaway key.
            let every = self.policy.as_ref().and_then(|p| p.every).unwrap_or(1);
            eprintln!(
                "checkpoint: key {key} skipped boundary {next} (at {version}); \
                 abandoning this checkpoint"
            );
            self.captured.iter_mut().for_each(|c| *c = None);
            self.next = Some((version / every + 1) * every);
            return;
        }
        self.captured[key] = Some((std::sync::Arc::clone(weights), opt.export_state()));
        if self.captured.iter().all(|c| c.is_some()) {
            self.write_boundary(next);
        }
    }

    fn write_boundary(&mut self, round: u64) {
        let policy = self.policy.as_ref().expect("armed tracker has a policy");
        let (weights, opt_state) = self
            .captured
            .iter_mut()
            .map(|c| {
                let (w, o) = c.take().expect("all keys captured");
                (w.to_vec(), o)
            })
            .unzip();
        let ckpt = ShardCheckpoint {
            shard: policy.shard,
            num_shards: policy.num_shards,
            round,
            weights,
            opt_state,
        };
        if let Err(e) = ckpt.save_atomic(&policy.dir) {
            // A failed checkpoint must not kill training: warn and keep
            // aggregating; the next boundary retries.
            eprintln!("checkpoint: failed to write round {round}: {e}");
        }
        let every = policy.every.expect("armed tracker has an interval");
        self.next = Some(round + every);
    }

    /// The policy's directory-and-shard identity, for on-demand
    /// snapshots. `None` when checkpointing is disabled.
    pub(crate) fn policy(&self) -> Option<&CheckpointPolicy> {
        self.policy.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cdsgd-recover-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample(shard: usize, num_shards: usize, round: u64) -> ShardCheckpoint {
        ShardCheckpoint {
            shard,
            num_shards,
            round,
            weights: vec![vec![1.0, -2.5, 3.25], vec![0.0]],
            opt_state: vec![vec![0.5, 0.5, -0.5], vec![]],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample(1, 4, 24);
        assert_eq!(ShardCheckpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn corruption_is_rejected() {
        let mut bytes = sample(0, 1, 8).encode();
        // Flip one payload bit: the checksum catches it.
        bytes[20] ^= 1;
        assert!(matches!(
            ShardCheckpoint::decode(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
        // Truncation is also corruption, not a panic.
        let whole = sample(0, 1, 8).encode();
        assert!(matches!(
            ShardCheckpoint::decode(&whole[..whole.len() - 3]),
            Err(CheckpointError::Corrupt(_))
        ));
        assert!(matches!(
            ShardCheckpoint::decode(b"xx"),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn save_atomic_then_load_latest() {
        let dir = tmp_dir("save-load");
        let c = sample(0, 1, 12);
        c.save_atomic(&dir).unwrap();
        let loaded = load_latest(&dir, 0, 1).unwrap().unwrap();
        assert_eq!(loaded, c);
        // No stray temporary files survive the rename.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec![checkpoint_file_name(0, 12)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_ignores_torn_sets() {
        let dir = tmp_dir("torn");
        // Round 8 complete on both shards; round 16 only on shard 0 (the
        // torn set a crash between shard writes leaves behind).
        sample(0, 2, 8).save_atomic(&dir).unwrap();
        sample(1, 2, 8).save_atomic(&dir).unwrap();
        sample(0, 2, 16).save_atomic(&dir).unwrap();
        assert_eq!(latest_complete_round(&dir, 2).unwrap(), Some(8));
        // Completing the set moves the manifest forward.
        sample(1, 2, 16).save_atomic(&dir).unwrap();
        assert_eq!(latest_complete_round(&dir, 2).unwrap(), Some(16));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_means_no_checkpoint_not_an_error() {
        let dir = tmp_dir("absent");
        assert_eq!(latest_complete_round(&dir, 3).unwrap(), None);
        assert!(load_latest(&dir, 0, 3).unwrap().is_none());
    }

    #[test]
    fn shard_count_skew_is_rejected() {
        let dir = tmp_dir("skew");
        sample(0, 2, 8).save_atomic(&dir).unwrap();
        // A single-shard deployment must not resume from a 2-shard set.
        assert!(matches!(
            load_shard(&dir, 0, 1, 8),
            Err(CheckpointError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracker_writes_only_when_every_key_crosses() {
        use crate::opt::PlainSgd;
        let dir = tmp_dir("tracker");
        let policy = CheckpointPolicy::new(&dir, Some(2), 0, 1);
        let mut t = CheckpointTracker::new(Some(policy), 2, 0);
        let w: std::sync::Arc<[f32]> = vec![1.0f32].into();
        let opt = PlainSgd;
        t.observe(0, 1, &w, &opt);
        t.observe(1, 1, &w, &opt);
        t.observe(0, 2, &w, &opt);
        assert_eq!(
            latest_complete_round(&dir, 1).unwrap(),
            None,
            "key 1 has not crossed the boundary yet"
        );
        t.observe(1, 2, &w, &opt);
        assert_eq!(latest_complete_round(&dir, 1).unwrap(), Some(2));
        // The next boundary arms automatically.
        t.observe(0, 3, &w, &opt);
        t.observe(1, 3, &w, &opt);
        t.observe(0, 4, &w, &opt);
        t.observe(1, 4, &w, &opt);
        assert_eq!(latest_complete_round(&dir, 1).unwrap(), Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_tracker_is_inert() {
        let mut t = CheckpointTracker::new(None, 1, 0);
        let w: std::sync::Arc<[f32]> = vec![1.0f32].into();
        t.observe(0, 1, &w, &crate::opt::PlainSgd);
        assert!(t.policy().is_none());
    }
}
