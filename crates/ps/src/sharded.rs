//! Key-sharded parameter-server group: the deployment shape MXNet uses
//! (one server process per node, keys spread across them), so the server
//! is not a single-thread bottleneck for many-key models.
//!
//! Shard `s` owns the global keys `{k : k % num_shards == s}`; clients
//! route each request to the owning shard and translate the key into the
//! shard's local index space.

use crate::client::PsClient;
use crate::server::{ParamServer, ServerConfig};
use crate::Key;
use cdsgd_compress::Compressed;
use std::sync::Arc;

/// A group of independent single-thread servers with keys interleaved
/// across them.
pub struct ShardedParamServer {
    shards: Vec<ParamServer>,
    num_keys: usize,
}

/// A client that routes by key to the owning shard.
#[derive(Clone)]
pub struct ShardedClient {
    clients: Vec<PsClient>,
}

impl ShardedParamServer {
    pub(crate) fn start(init: Vec<Vec<f32>>, cfg: ServerConfig, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let num_keys = init.len();
        // Partition keys round-robin: shard s gets keys s, s+S, s+2S, …
        let mut per_shard: Vec<Vec<Vec<f32>>> = vec![Vec::new(); num_shards];
        for (key, weights) in init.into_iter().enumerate() {
            per_shard[key % num_shards].push(weights);
        }
        let shards = per_shard
            .into_iter()
            .map(|shard_init| ParamServer::start(shard_init, cfg))
            .collect();
        Self { shards, num_keys }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of keys across shards.
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// A routing client handle.
    pub fn client(&self) -> ShardedClient {
        ShardedClient {
            clients: self.shards.iter().map(|s| s.client()).collect(),
        }
    }

    /// Aggregate traffic across all shards.
    pub fn total_bytes_pushed(&self) -> u64 {
        self.shards.iter().map(|s| s.stats().bytes_pushed()).sum()
    }

    /// Per-shard pushed bytes (load-balance diagnostics).
    pub fn pushed_bytes_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.stats().bytes_pushed())
            .collect()
    }

    /// Stop all shard threads.
    pub fn shutdown(self) {
        for s in self.shards {
            s.shutdown();
        }
    }
}

impl ShardedClient {
    fn route(&self, key: Key) -> (usize, Key) {
        let s = key % self.clients.len();
        (s, key / self.clients.len())
    }

    /// Push a gradient payload for global `key`.
    pub fn push(&self, worker: usize, key: Key, payload: Compressed) {
        let (shard, local) = self.route(key);
        self.clients[shard].push(worker, local, payload);
    }

    /// Pull global `key` at exactly `version` aggregates. Snapshots are
    /// shared by reference, same as [`PsClient::pull`].
    pub fn pull(&self, key: Key, version: u64) -> Arc<[f32]> {
        let (shard, local) = self.route(key);
        self.clients[shard].pull(local, version)
    }

    /// Pull all `num_keys` keys at `version`.
    pub fn pull_all(&self, num_keys: usize, version: u64) -> Vec<Arc<[f32]>> {
        (0..num_keys).map(|k| self.pull(k, version)).collect()
    }

    /// Set the learning rate on every shard.
    pub fn set_lr(&self, lr: f32) {
        for c in &self.clients {
            c.set_lr(lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init(keys: usize) -> Vec<Vec<f32>> {
        (0..keys).map(|k| vec![k as f32; 2]).collect()
    }

    #[test]
    fn routing_preserves_key_identity() {
        let ps = ParamServer::start_sharded(init(7), ServerConfig::new(1, 1.0), 3);
        let c = ps.client();
        for k in 0..7 {
            assert_eq!(*c.pull(k, 0), [k as f32; 2], "key {k}");
        }
        ps.shutdown();
    }

    #[test]
    fn updates_apply_to_the_right_key() {
        let ps = ParamServer::start_sharded(init(5), ServerConfig::new(1, 0.5), 2);
        let c = ps.client();
        c.push(0, 3, Compressed::Raw(vec![2.0, 4.0]));
        // key 3 updated: 3 − 0.5·2 = 2, 3 − 0.5·4 = 1.
        assert_eq!(*c.pull(3, 1), [2.0, 1.0]);
        // Other keys untouched (still version 0).
        assert_eq!(*c.pull(0, 0), [0.0, 0.0]);
        assert_eq!(*c.pull(4, 0), [4.0, 4.0]);
        ps.shutdown();
    }

    #[test]
    fn shards_progress_independently_and_concurrently() {
        let ps = ParamServer::start_sharded(init(4), ServerConfig::new(2, 1.0), 2);
        let clients: Vec<ShardedClient> = (0..2).map(|_| ps.client()).collect();
        std::thread::scope(|s| {
            for (w, c) in clients.iter().enumerate() {
                s.spawn(move || {
                    for k in 0..4 {
                        c.push(w, k, Compressed::Raw(vec![1.0, 1.0]));
                    }
                    c.pull_all(4, 1)
                });
            }
        });
        // Every key advanced one version: k − 1.0/2·(1+1) = k − 1.
        let c = ps.client();
        for k in 0..4 {
            assert_eq!(*c.pull(k, 1), [k as f32 - 1.0; 2]);
        }
        ps.shutdown();
    }

    #[test]
    fn load_spreads_across_shards() {
        let ps = ParamServer::start_sharded(init(8), ServerConfig::new(1, 1.0), 4);
        let c = ps.client();
        for k in 0..8 {
            c.push(0, k, Compressed::Raw(vec![1.0, 1.0]));
            c.pull(k, 1);
        }
        let per = ps.pushed_bytes_per_shard();
        assert_eq!(per.len(), 4);
        assert!(per.iter().all(|&b| b == per[0]), "balanced: {per:?}");
        assert_eq!(ps.total_bytes_pushed(), per.iter().sum::<u64>());
        ps.shutdown();
    }

    #[test]
    fn single_shard_equals_plain_server() {
        let sharded = ParamServer::start_sharded(init(3), ServerConfig::new(1, 0.1), 1);
        let plain = ParamServer::start(init(3), ServerConfig::new(1, 0.1));
        let sc = sharded.client();
        let pc = plain.client();
        for k in 0..3 {
            sc.push(0, k, Compressed::Raw(vec![1.0, 2.0]));
            pc.push(0, k, Compressed::Raw(vec![1.0, 2.0]));
            assert_eq!(sc.pull(k, 1), pc.pull(k, 1));
        }
        sharded.shutdown();
        plain.shutdown();
    }
}
