//! Key-sharded parameter-server group: the deployment shape MXNet uses
//! (one server process per node, keys spread across them), so the server
//! is not a single-thread bottleneck for many-key models.
//!
//! Shard `s` owns the global keys `{k : k % num_shards == s}`; clients
//! route each request to the owning shard and translate the key into the
//! shard's local index space. [`ShardedClient`] is generic over the
//! per-shard client, so the same router drives in-process shards
//! ([`PsClient`]) and remote shards over a transport
//! ([`crate::net::RemoteClient`]).

use crate::api::ParamClient;
use crate::client::{PendingPull, PsClient};
use crate::server::{ParamServer, ServerConfig};
use crate::Key;
use cdsgd_compress::{BufferPool, Compressed};
use cdsgd_net::NetError;
use std::sync::Arc;

/// A group of independent single-thread servers with keys interleaved
/// across them. All shards share one payload [`BufferPool`], so buffers
/// recycled by any shard are reusable for pushes to any other.
pub struct ShardedParamServer {
    shards: Vec<ParamServer>,
    num_keys: usize,
    pool: BufferPool,
}

/// A client that routes by key to the owning shard. Generic over the
/// per-shard client type (defaults to the in-process [`PsClient`]).
#[derive(Clone)]
pub struct ShardedClient<C = PsClient> {
    clients: Vec<C>,
    pool: BufferPool,
}

/// Split `init` round-robin: shard `s` gets global keys `s, s+S, s+2S, …`
/// in local order. Shared by the in-process group and the `psd` server
/// binary so every deployment partitions identically.
pub fn partition_keys(init: Vec<Vec<f32>>, num_shards: usize) -> Vec<Vec<Vec<f32>>> {
    assert!(num_shards > 0, "need at least one shard");
    let mut per_shard: Vec<Vec<Vec<f32>>> = vec![Vec::new(); num_shards];
    for (key, weights) in init.into_iter().enumerate() {
        per_shard[key % num_shards].push(weights);
    }
    per_shard
}

/// Inverse of [`partition_keys`] for snapshots: interleave per-shard
/// `(weights, versions)` back into global key order.
pub fn reassemble_snapshots(
    shards: Vec<(Vec<Vec<f32>>, Vec<u64>)>,
    num_keys: usize,
) -> (Vec<Vec<f32>>, Vec<u64>) {
    let s = shards.len();
    assert!(s > 0, "need at least one shard snapshot");
    let mut weights = Vec::with_capacity(num_keys);
    let mut versions = Vec::with_capacity(num_keys);
    for k in 0..num_keys {
        let (w, v) = &shards[k % s];
        weights.push(w[k / s].clone());
        versions.push(v[k / s]);
    }
    (weights, versions)
}

impl ShardedParamServer {
    pub(crate) fn start(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        num_shards: usize,
        telemetry: cdsgd_telemetry::Telemetry,
    ) -> Self {
        let num_keys = init.len();
        let pool = BufferPool::new();
        let shards = partition_keys(init, num_shards)
            .into_iter()
            .map(|shard_init| {
                ParamServer::start_with_pool(shard_init, cfg, pool.clone(), telemetry.clone())
            })
            .collect();
        Self {
            shards,
            num_keys,
            pool,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of keys across shards.
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// A routing client handle.
    pub fn client(&self) -> ShardedClient {
        ShardedClient {
            clients: self.shards.iter().map(|s| s.client()).collect(),
            pool: self.pool.clone(),
        }
    }

    /// Aggregate traffic across all shards.
    pub fn total_bytes_pushed(&self) -> u64 {
        self.shards.iter().map(|s| s.stats().bytes_pushed()).sum()
    }

    /// Aggregate pull-reply traffic across all shards.
    pub fn total_bytes_pulled(&self) -> u64 {
        self.shards.iter().map(|s| s.stats().bytes_pulled()).sum()
    }

    /// Per-shard pushed bytes (load-balance diagnostics).
    pub fn pushed_bytes_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.stats().bytes_pushed())
            .collect()
    }

    /// Globally-ordered snapshot reassembled from every shard.
    pub fn snapshot(&self) -> Result<(Vec<Vec<f32>>, Vec<u64>), NetError> {
        let shards = self
            .shards
            .iter()
            .map(|s| s.client().snapshot())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(reassemble_snapshots(shards, self.num_keys))
    }

    /// Stop all shard threads.
    pub fn shutdown(self) {
        for s in self.shards {
            s.shutdown();
        }
    }
}

impl<C> ShardedClient<C> {
    /// Assemble a router from per-shard clients (index = shard id) and
    /// the payload pool compressors should draw from.
    pub fn from_clients(clients: Vec<C>, pool: BufferPool) -> Self {
        assert!(!clients.is_empty(), "need at least one shard client");
        Self { clients, pool }
    }

    fn route(&self, key: Key) -> (usize, Key) {
        let s = key % self.clients.len();
        (s, key / self.clients.len())
    }
}

impl<C: ParamClient> ParamClient for ShardedClient<C> {
    /// Push a gradient payload for global `key`.
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError> {
        let (shard, local) = self.route(key);
        self.clients[shard].push(worker, local, payload)
    }

    /// Pull global `key` at exactly `min_version` aggregates. Snapshots
    /// are shared by reference, same as [`PsClient::pull`].
    fn pull(&self, key: Key, min_version: u64) -> Result<Arc<[f32]>, NetError> {
        let (shard, local) = self.route(key);
        self.clients[shard].pull(local, min_version)
    }

    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError> {
        let (shard, local) = self.route(key);
        self.clients[shard].pull_async(local, min_version)
    }

    /// Set the learning rate on every shard.
    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        for c in &self.clients {
            c.set_lr(lr)?;
        }
        Ok(())
    }

    /// Two-phase join: tentatively register with every shard in shard
    /// order, then interleave the per-shard version acks back into
    /// global key order (inverse of the round-robin key partition, same
    /// as [`reassemble_snapshots`]). If any shard fails, the join is
    /// rolled back with a best-effort [`ParamClient::cancel_join`] on
    /// the shards already joined *and* the failing shard itself (whose
    /// register may have landed even though its ack was lost), so no
    /// shard is left counting a member the others don't. The rollback
    /// is exact, not merely best-effort-safe: each server demotes the
    /// worker only if *this* registration promoted it into the active
    /// set, so canceling a re-registration of an established member
    /// (the reconnect layer reuses this register) is a no-op and the
    /// active count can never drop below its pre-join value — which was
    /// a valid quorum (or zero) before this call started.
    fn register(&self, worker: usize) -> Result<Vec<u64>, NetError> {
        let mut per: Vec<Vec<u64>> = Vec::with_capacity(self.clients.len());
        for (shard, c) in self.clients.iter().enumerate() {
            match c.register(worker) {
                Ok(versions) => per.push(versions),
                Err(e) => {
                    for joined in &self.clients[..=shard] {
                        let _ = joined.cancel_join(worker);
                    }
                    return Err(NetError::Membership {
                        op: "register",
                        shards: vec![shard],
                        last: Box::new(e),
                    });
                }
            }
        }
        let s = per.len();
        let num_keys: usize = per.iter().map(|v| v.len()).sum();
        Ok((0..num_keys).map(|k| per[k % s][k / s]).collect())
    }

    /// Best-effort departure from *every* shard: a failed leave on shard
    /// `k` no longer skips shards `k+1..` (which would block their
    /// rounds on a departed member until heartbeat eviction). Per-shard
    /// failures are aggregated into one [`NetError::Membership`].
    fn leave(&self, worker: usize) -> Result<(), NetError> {
        let mut failed = Vec::new();
        let mut last = None;
        for (shard, c) in self.clients.iter().enumerate() {
            if let Err(e) = c.leave(worker) {
                failed.push(shard);
                last = Some(e);
            }
        }
        match last {
            None => Ok(()),
            Some(e) => Err(NetError::Membership {
                op: "leave",
                shards: failed,
                last: Box::new(e),
            }),
        }
    }

    /// Best-effort join rollback on *every* shard, aggregating failures
    /// like [`ShardedClient::leave`]. Safe to spray across shards that
    /// never admitted the worker: each server's `joined_by` fence makes
    /// the cancel a no-op there.
    fn cancel_join(&self, worker: usize) -> Result<(), NetError> {
        let mut failed = Vec::new();
        let mut last = None;
        for (shard, c) in self.clients.iter().enumerate() {
            if let Err(e) = c.cancel_join(worker) {
                failed.push(shard);
                last = Some(e);
            }
        }
        match last {
            None => Ok(()),
            Some(e) => Err(NetError::Membership {
                op: "cancel_join",
                shards: failed,
                last: Box::new(e),
            }),
        }
    }

    fn heartbeat(&self, worker: usize) -> Result<(), NetError> {
        for c in &self.clients {
            c.heartbeat(worker)?;
        }
        Ok(())
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init(keys: usize) -> Vec<Vec<f32>> {
        (0..keys).map(|k| vec![k as f32; 2]).collect()
    }

    #[test]
    fn routing_preserves_key_identity() {
        let ps = ParamServer::start_sharded(init(7), ServerConfig::new(1, 1.0), 3);
        let c = ps.client();
        for k in 0..7 {
            assert_eq!(*c.pull(k, 0).unwrap(), [k as f32; 2], "key {k}");
        }
        ps.shutdown();
    }

    #[test]
    fn updates_apply_to_the_right_key() {
        let ps = ParamServer::start_sharded(init(5), ServerConfig::new(1, 0.5), 2);
        let c = ps.client();
        c.push(0, 3, Compressed::Raw(vec![2.0, 4.0])).unwrap();
        // key 3 updated: 3 − 0.5·2 = 2, 3 − 0.5·4 = 1.
        assert_eq!(*c.pull(3, 1).unwrap(), [2.0, 1.0]);
        // Other keys untouched (still version 0).
        assert_eq!(*c.pull(0, 0).unwrap(), [0.0, 0.0]);
        assert_eq!(*c.pull(4, 0).unwrap(), [4.0, 4.0]);
        ps.shutdown();
    }

    #[test]
    fn shards_progress_independently_and_concurrently() {
        let ps = ParamServer::start_sharded(init(4), ServerConfig::new(2, 1.0), 2);
        let clients: Vec<ShardedClient> = (0..2).map(|_| ps.client()).collect();
        std::thread::scope(|s| {
            for (w, c) in clients.iter().enumerate() {
                s.spawn(move || {
                    for k in 0..4 {
                        c.push(w, k, Compressed::Raw(vec![1.0, 1.0])).unwrap();
                    }
                    c.pull_all(4, 1).unwrap()
                });
            }
        });
        // Every key advanced one version: k − 1.0/2·(1+1) = k − 1.
        let c = ps.client();
        for k in 0..4 {
            assert_eq!(*c.pull(k, 1).unwrap(), [k as f32 - 1.0; 2]);
        }
        ps.shutdown();
    }

    #[test]
    fn load_spreads_across_shards() {
        let ps = ParamServer::start_sharded(init(8), ServerConfig::new(1, 1.0), 4);
        let c = ps.client();
        for k in 0..8 {
            c.push(0, k, Compressed::Raw(vec![1.0, 1.0])).unwrap();
            c.pull(k, 1).unwrap();
        }
        let per = ps.pushed_bytes_per_shard();
        assert_eq!(per.len(), 4);
        assert!(per.iter().all(|&b| b == per[0]), "balanced: {per:?}");
        assert_eq!(ps.total_bytes_pushed(), per.iter().sum::<u64>());
        ps.shutdown();
    }

    #[test]
    fn single_shard_equals_plain_server() {
        let sharded = ParamServer::start_sharded(init(3), ServerConfig::new(1, 0.1), 1);
        let plain = ParamServer::start(init(3), ServerConfig::new(1, 0.1));
        let sc = sharded.client();
        let pc = plain.client();
        for k in 0..3 {
            sc.push(0, k, Compressed::Raw(vec![1.0, 2.0])).unwrap();
            pc.push(0, k, Compressed::Raw(vec![1.0, 2.0])).unwrap();
            assert_eq!(sc.pull(k, 1).unwrap(), pc.pull(k, 1).unwrap());
        }
        sharded.shutdown();
        plain.shutdown();
    }

    #[test]
    fn snapshot_reassembles_global_key_order() {
        let ps = ParamServer::start_sharded(init(5), ServerConfig::new(1, 1.0), 2);
        let c = ps.client();
        c.push(0, 2, Compressed::Raw(vec![1.0, 1.0])).unwrap();
        c.pull(2, 1).unwrap();
        let (w, v) = ps.snapshot().unwrap();
        assert_eq!(w.len(), 5);
        assert_eq!(v, vec![0, 0, 1, 0, 0]);
        assert_eq!(w[2], vec![1.0, 1.0]);
        assert_eq!(w[3], vec![3.0, 3.0]);
        ps.shutdown();
    }

    /// A scripted per-shard client: records membership calls and fails
    /// register/leave on demand, so the router's transaction logic is
    /// testable without servers.
    struct ScriptedShard {
        fail_register: bool,
        fail_leave: bool,
        registers: std::sync::Mutex<Vec<usize>>,
        leaves: std::sync::Mutex<Vec<usize>>,
        cancels: std::sync::Mutex<Vec<usize>>,
        pool: BufferPool,
    }

    impl ScriptedShard {
        fn new(fail_register: bool, fail_leave: bool) -> Self {
            Self {
                fail_register,
                fail_leave,
                registers: std::sync::Mutex::new(Vec::new()),
                leaves: std::sync::Mutex::new(Vec::new()),
                cancels: std::sync::Mutex::new(Vec::new()),
                pool: BufferPool::new(),
            }
        }
    }

    impl ParamClient for ScriptedShard {
        fn push(&self, _: usize, _: Key, _: Compressed) -> Result<(), NetError> {
            unimplemented!("membership tests never push")
        }
        fn pull_async(&self, _: Key, _: u64) -> Result<PendingPull, NetError> {
            unimplemented!("membership tests never pull")
        }
        fn set_lr(&self, _: f32) -> Result<(), NetError> {
            Ok(())
        }
        fn register(&self, worker: usize) -> Result<Vec<u64>, NetError> {
            if self.fail_register {
                return Err(NetError::Closed);
            }
            self.registers.lock().unwrap().push(worker);
            Ok(vec![7])
        }
        fn leave(&self, worker: usize) -> Result<(), NetError> {
            self.leaves.lock().unwrap().push(worker);
            if self.fail_leave {
                return Err(NetError::ServerGone);
            }
            Ok(())
        }
        fn cancel_join(&self, worker: usize) -> Result<(), NetError> {
            self.cancels.lock().unwrap().push(worker);
            Ok(())
        }
        fn pool(&self) -> &BufferPool {
            &self.pool
        }
    }

    #[test]
    fn partial_register_rolls_back_joined_shards() {
        let shards = vec![
            ScriptedShard::new(false, false),
            ScriptedShard::new(true, false),
            ScriptedShard::new(false, false),
        ];
        let c = ShardedClient::from_clients(shards, BufferPool::new());
        let err = c.register(4).unwrap_err();
        assert_eq!(
            err,
            NetError::Membership {
                op: "register",
                shards: vec![1],
                last: Box::new(NetError::Closed),
            }
        );
        // Shard 0 was joined, then rolled back with a cancel — never a
        // `leave`, which would demote the worker even when the register
        // was a re-registration of an established member. The failing
        // shard 1 is canceled too (its register may have landed with the
        // ack lost); shard 2 was never reached by register or rollback.
        assert_eq!(*c.clients[0].registers.lock().unwrap(), [4]);
        assert_eq!(*c.clients[0].cancels.lock().unwrap(), [4]);
        assert!(c.clients[0].leaves.lock().unwrap().is_empty());
        assert_eq!(*c.clients[1].cancels.lock().unwrap(), [4]);
        assert!(c.clients[2].registers.lock().unwrap().is_empty());
        assert!(c.clients[2].cancels.lock().unwrap().is_empty());
        assert!(c.clients[2].leaves.lock().unwrap().is_empty());
    }

    #[test]
    fn register_success_interleaves_acks() {
        let shards = vec![
            ScriptedShard::new(false, false),
            ScriptedShard::new(false, false),
        ];
        let c = ShardedClient::from_clients(shards, BufferPool::new());
        assert_eq!(c.register(2).unwrap(), vec![7, 7]);
        assert_eq!(*c.clients[1].registers.lock().unwrap(), [2]);
    }

    #[test]
    fn leave_is_best_effort_and_aggregates_failures() {
        let shards = vec![
            ScriptedShard::new(false, true),
            ScriptedShard::new(false, false),
            ScriptedShard::new(false, true),
        ];
        let c = ShardedClient::from_clients(shards, BufferPool::new());
        let err = c.leave(3).unwrap_err();
        assert_eq!(
            err,
            NetError::Membership {
                op: "leave",
                shards: vec![0, 2],
                last: Box::new(NetError::ServerGone),
            }
        );
        // Every shard saw the goodbye despite shard 0 failing first.
        for shard in &c.clients {
            assert_eq!(*shard.leaves.lock().unwrap(), [3]);
        }
    }

    #[test]
    fn shards_share_one_payload_pool() {
        let ps = ParamServer::start_sharded(init(4), ServerConfig::new(1, 1.0), 2);
        let c = ps.client();
        // Push through shard 0; after decoding, its payload buffer lands
        // in the group-wide pool and is reusable for a shard-1 push.
        c.push(0, 0, Compressed::Raw(vec![1.0, 1.0])).unwrap();
        c.pull(0, 1).unwrap();
        let buf = c.pool().take_f32();
        assert!(buf.capacity() >= 2, "recycled capacity {}", buf.capacity());
        ps.shutdown();
    }
}
