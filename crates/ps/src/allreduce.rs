//! Ring all-reduce: the decentralized collective underlying the
//! Horovod-style baselines in the paper's related work (PIPE-SGD,
//! Poseidon, EFLOPS), provided as a substrate so PS-based and
//! collective-based synchronization can be compared on the same stack.
//!
//! Implements the classic two-phase ring: `N−1` scatter-reduce steps
//! (each rank ends up owning one fully-reduced chunk) followed by `N−1`
//! all-gather steps. Every member sends `2·(N−1)/N` of the vector —
//! the bandwidth-optimal collective.
//!
//! # Reduction-order contract
//!
//! Like `kernel::dot`'s striped-order contract, the summation order is
//! **pinned** so results are bit-identical across ranks *and* across
//! backends (this in-memory ring, the loopback/TCP wire ring, and the
//! tree — see [`crate::collective`]):
//!
//! * chunk `c` (boundaries from [`chunk_range`]) accumulates in ring
//!   order starting at rank `c`: `((x_c + x_{c+1}) + x_{c+2}) + …
//!   + x_{c+N−1}` (ranks mod `N`, one `+` per scatter step);
//! * the all-gather phase copies the reduced chunks verbatim, so every
//!   rank ends with the same bits;
//! * the mean divides by `N` elementwise, after the gather.
//!
//! Each scatter step folds with `kernel::add_assign`, whose SIMD and
//! scalar twins are elementwise (no reassociation), so the contract
//! holds under `CDSGD_FORCE_SCALAR=0/1` alike. [`ring_ordered_sum`] is
//! the executable statement of the contract; tests pin the collective
//! against it bit-for-bit.
//!
//! # Buffers and channels
//!
//! Each member owns a [`BufferPool`]; every chunk it sends is taken from
//! its own pool and every chunk it receives is returned to its own pool
//! after folding, so per-step take/put stays balanced and a steady-state
//! all-reduce allocates nothing (pinned by the `topologies` bench).
//! Channels are bounded to one in-flight frame: members alternate
//! send→receive in lock step, so capacity 1 can never deadlock, and a
//! runaway member blocks instead of queueing unbounded garbage.

use crate::stats::TrafficStats;
use cdsgd_compress::BufferPool;
use cdsgd_tensor::kernel;
use crossbeam_channel::{bounded, Receiver, Sender};
use std::sync::Arc;

/// One participant's handle in a ring all-reduce group. All members of a
/// group must call [`RingMember::allreduce_mean`] concurrently (from
/// their own threads); the call blocks until the collective completes.
pub struct RingMember {
    rank: usize,
    n: usize,
    tx_next: Sender<Vec<f32>>,
    rx_prev: Receiver<Vec<f32>>,
    /// Byte lanes for neighbor exchange: one per ring direction, so a
    /// member can gossip with both neighbors in the same step.
    bytes_tx_next: Sender<Vec<u8>>,
    bytes_rx_prev: Receiver<Vec<u8>>,
    bytes_tx_prev: Sender<Vec<u8>>,
    bytes_rx_next: Receiver<Vec<u8>>,
    pool: BufferPool,
    stats: Arc<TrafficStats>,
}

/// Create a ring of `n` members sharing a traffic counter.
///
/// # Panics
/// Panics if `n == 0`.
pub fn ring_group(n: usize) -> (Vec<RingMember>, Arc<TrafficStats>) {
    assert!(n > 0, "a ring needs at least one member");
    let stats = Arc::new(TrafficStats::new());
    // Channel i carries messages from rank i to rank (i+1) % n; the
    // byte lanes add the reverse direction (rank i to rank (i-1) % n).
    // Capacity 1: members send at most one frame before receiving.
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    let mut btxs = Vec::with_capacity(n);
    let mut brxs = Vec::with_capacity(n);
    let mut btxs_rev = Vec::with_capacity(n);
    let mut brxs_rev = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded(1);
        txs.push(tx);
        rxs.push(rx);
        let (tx, rx) = bounded(1);
        btxs.push(tx);
        brxs.push(rx);
        let (tx, rx) = bounded(1);
        btxs_rev.push(tx);
        brxs_rev.push(rx);
    }
    // Member `rank` sends on channel `rank` and receives on channel
    // `(rank + n - 1) % n`; reverse lanes mirror that.
    let mut members: Vec<RingMember> = Vec::with_capacity(n);
    let mut rxs: Vec<Option<Receiver<Vec<f32>>>> = rxs.into_iter().map(Some).collect();
    let mut brxs: Vec<Option<Receiver<Vec<u8>>>> = brxs.into_iter().map(Some).collect();
    let mut brxs_rev: Vec<Option<Receiver<Vec<u8>>>> = brxs_rev.into_iter().map(Some).collect();
    let mut btxs_rev: Vec<Option<Sender<Vec<u8>>>> = btxs_rev.into_iter().map(Some).collect();
    for (rank, (tx_next, bytes_tx_next)) in txs.into_iter().zip(btxs).enumerate() {
        let prev = (rank + n - 1) % n;
        members.push(RingMember {
            rank,
            n,
            tx_next,
            rx_prev: rxs[prev].take().expect("each rx used once"),
            bytes_tx_next,
            bytes_rx_prev: brxs[prev].take().expect("each rx used once"),
            // Reverse lane `rank` carries rank → prev; member `rank`
            // sends on lane `rank` and receives on lane `(rank+1) % n`.
            bytes_tx_prev: btxs_rev[rank].take().expect("each tx used once"),
            bytes_rx_next: brxs_rev[(rank + 1) % n].take().expect("each rx used once"),
            pool: BufferPool::new(),
            stats: Arc::clone(&stats),
        });
    }
    (members, stats)
}

/// Chunk boundaries: `n` near-equal contiguous ranges over `len`.
/// Part of the reduction-order contract — all backends must chunk
/// identically or their step payloads (and bits) diverge.
pub fn chunk_range(len: usize, n: usize, i: usize) -> std::ops::Range<usize> {
    let start = i * len / n;
    let end = (i + 1) * len / n;
    start..end
}

/// The executable reduction-order contract: the sum every backend must
/// produce, computed serially. Chunk `c` folds inputs in ring order
/// starting at rank `c`; the result is the full summed vector (no mean).
pub fn ring_ordered_sum(inputs: &[Vec<f32>]) -> Vec<f32> {
    let n = inputs.len();
    assert!(n > 0);
    let len = inputs[0].len();
    let mut out = vec![0.0f32; len];
    for c in 0..n {
        let range = chunk_range(len, n, c);
        out[range.clone()].copy_from_slice(&inputs[c][range.clone()]);
        for j in 1..n {
            let src = &inputs[(c + j) % n][range.clone()];
            kernel::add_assign(&mut out[range.clone()], src);
        }
    }
    out
}

impl RingMember {
    /// This member's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// The member's chunk-buffer pool — exposed so benches can pin the
    /// zero-allocation steady state via hit/miss counters.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Phase 1: scatter-reduce. In step `s`, send chunk `(rank − s)` and
    /// fold the received chunk `(rank − s − 1)` into our buffer. After
    /// `N−1` steps this member's chunk `(rank + 1) % N` holds the full
    /// ring-ordered sum.
    ///
    /// # Panics
    /// Panics if members disagree on the vector length (detected as a
    /// chunk-size mismatch) or a peer disconnected.
    pub fn reduce_scatter(&self, data: &mut [f32]) {
        if self.n == 1 {
            return;
        }
        let len = data.len();
        let n = self.n;
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s) % n;
            let recv_idx = (self.rank + n - s - 1) % n;
            let mut chunk = self.pool.take_f32();
            chunk.extend_from_slice(&data[chunk_range(len, n, send_idx)]);
            self.stats.record_push(4 * chunk.len());
            self.tx_next.send(chunk).expect("ring peer disconnected");
            let incoming = self.rx_prev.recv().expect("ring peer disconnected");
            let dst = &mut data[chunk_range(len, n, recv_idx)];
            assert_eq!(incoming.len(), dst.len(), "ring members disagree on length");
            kernel::add_assign(dst, &incoming);
            self.pool.put_f32(incoming);
        }
    }

    /// Phase 2: all-gather. In step `s`, send the fully-reduced chunk
    /// `(rank + 1 − s)` and overwrite with the received chunk
    /// `(rank − s)`. Copies bytes verbatim — no arithmetic — so all
    /// ranks end bit-identical.
    pub fn all_gather(&self, data: &mut [f32]) {
        if self.n == 1 {
            return;
        }
        let len = data.len();
        let n = self.n;
        for s in 0..n - 1 {
            let send_idx = (self.rank + 1 + n - s) % n;
            let recv_idx = (self.rank + n - s) % n;
            let mut chunk = self.pool.take_f32();
            chunk.extend_from_slice(&data[chunk_range(len, n, send_idx)]);
            self.stats.record_push(4 * chunk.len());
            self.tx_next.send(chunk).expect("ring peer disconnected");
            let incoming = self.rx_prev.recv().expect("ring peer disconnected");
            let dst = &mut data[chunk_range(len, n, recv_idx)];
            assert_eq!(incoming.len(), dst.len(), "ring members disagree on length");
            dst.copy_from_slice(&incoming);
            self.pool.put_f32(incoming);
        }
    }

    /// In-place mean all-reduce over the group. Every member must call
    /// this with a same-length buffer; on return each buffer holds the
    /// elementwise mean, bit-identical across ranks (see the module
    /// docs for the pinned reduction order).
    ///
    /// # Panics
    /// Panics if members disagree on the vector length (detected as a
    /// chunk-size mismatch) or a peer disconnected.
    pub fn allreduce_mean(&self, data: &mut [f32]) {
        if self.n == 1 {
            return; // nothing to reduce
        }
        self.reduce_scatter(data);
        self.all_gather(data);
        kernel::scale(data, 1.0 / self.n as f32);
        self.stats.record_collective(self.rank, self.n, {
            let len = data.len() as u64;
            2 * (self.n as u64 - 1) * (4 * len) / self.n as u64
        });
    }

    /// Exchange an opaque byte payload with both ring neighbors: `send`
    /// goes to ranks `rank ± 1`; `from_prev`/`from_next` are overwritten
    /// with their payloads. With `N == 1` both outputs are copies of
    /// `send` (self-gossip).
    pub fn neighbor_exchange(&self, send: &[u8], from_prev: &mut Vec<u8>, from_next: &mut Vec<u8>) {
        from_prev.clear();
        from_next.clear();
        if self.n == 1 {
            from_prev.extend_from_slice(send);
            from_next.extend_from_slice(send);
            return;
        }
        let mut fwd = self.pool.take_bytes();
        fwd.extend_from_slice(send);
        let mut bwd = self.pool.take_bytes();
        bwd.extend_from_slice(send);
        self.stats.record_push(send.len());
        self.stats.record_push(send.len());
        // Both sends complete before either receive: each capacity-1
        // lane holds at most the one frame this step produces.
        self.bytes_tx_next
            .send(fwd)
            .expect("ring peer disconnected");
        self.bytes_tx_prev
            .send(bwd)
            .expect("ring peer disconnected");
        let a = self.bytes_rx_prev.recv().expect("ring peer disconnected");
        from_prev.extend_from_slice(&a);
        self.pool.put_bytes(a);
        let b = self.bytes_rx_next.recv().expect("ring peer disconnected");
        from_next.extend_from_slice(&b);
        self.pool.put_bytes(b);
        self.stats
            .record_collective(self.rank, self.n, 2 * send.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a mean all-reduce across `n` threads and return the results.
    fn run_ring(inputs: Vec<Vec<f32>>) -> (Vec<Vec<f32>>, u64) {
        let n = inputs.len();
        let (members, stats) = ring_group(n);
        let outputs: Vec<Vec<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .zip(inputs)
                .map(|(m, mut v)| {
                    s.spawn(move || {
                        m.allreduce_mean(&mut v);
                        v
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        (outputs, stats.bytes_pushed())
    }

    #[test]
    fn two_members_compute_the_mean() {
        let (out, _) = run_ring(vec![vec![1.0, 2.0, 3.0, 4.0], vec![3.0, 2.0, 1.0, 0.0]]);
        for o in &out {
            assert_eq!(o, &vec![2.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn arbitrary_group_sizes_and_lengths() {
        for n in [1usize, 2, 3, 4, 7] {
            for len in [1usize, 5, 16, 33] {
                if len < n {
                    continue; // degenerate chunks are allowed but boring
                }
                let inputs: Vec<Vec<f32>> = (0..n)
                    .map(|r| (0..len).map(|i| (r * len + i) as f32).collect())
                    .collect();
                let mut expect = vec![0.0f32; len];
                for input in &inputs {
                    for (e, x) in expect.iter_mut().zip(input) {
                        *e += x;
                    }
                }
                for e in expect.iter_mut() {
                    *e /= n as f32;
                }
                let (out, _) = run_ring(inputs);
                for o in &out {
                    for (a, b) in o.iter().zip(&expect) {
                        assert!((a - b).abs() < 1e-4, "n={n} len={len}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn results_match_the_order_contract_bit_for_bit() {
        // Adversarial magnitudes so any reassociation changes the bits.
        for n in [2usize, 3, 5] {
            for len in [6usize, 17, 64] {
                let inputs: Vec<Vec<f32>> = (0..n)
                    .map(|r| {
                        (0..len)
                            .map(|i| {
                                let sign = if (r + i) % 2 == 0 { 1.0 } else { -1.0 };
                                sign * (1.0 + r as f32 * 1e-3) * (10.0f32).powi((i % 7) as i32 - 3)
                            })
                            .collect()
                    })
                    .collect();
                let mut expect = ring_ordered_sum(&inputs);
                kernel::scale(&mut expect, 1.0 / n as f32);
                let (out, _) = run_ring(inputs);
                for (rank, o) in out.iter().enumerate() {
                    for (i, (a, b)) in o.iter().zip(&expect).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "n={n} len={len} rank={rank} i={i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_ranks_end_bit_identical() {
        let n = 4;
        let len = 33;
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..len).map(|i| ((r * 37 + i * 13) as f32).sin()).collect())
            .collect();
        let (out, _) = run_ring(inputs);
        for o in &out[1..] {
            for (a, b) in o.iter().zip(&out[0]) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn traffic_is_bandwidth_optimal() {
        // Each member sends 2(n−1)/n of the vector per all-reduce.
        let n = 4usize;
        let len = 1024usize;
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| vec![1.0; len]).collect();
        let (_, bytes) = run_ring(inputs);
        let expect = (n as u64) * 2 * (n as u64 - 1) * (4 * len as u64) / n as u64;
        assert_eq!(bytes, expect, "total ring traffic");
    }

    #[test]
    fn repeated_allreduce_reuses_pooled_chunks() {
        // After a warm-up all-reduce, every take_f32 must be a pool hit:
        // the zero-allocation-per-step contract the bench also pins.
        let n = 3;
        let (members, _) = ring_group(n);
        std::thread::scope(|s| {
            for m in members {
                s.spawn(move || {
                    let mut v = vec![1.0f32; 48];
                    m.allreduce_mean(&mut v); // warm-up: pools fill
                    let misses = m.pool().misses();
                    for _ in 0..5 {
                        m.allreduce_mean(&mut v);
                    }
                    assert_eq!(
                        m.pool().misses(),
                        misses,
                        "steady-state all-reduce allocated fresh chunk buffers"
                    );
                });
            }
        });
    }

    #[test]
    fn single_member_is_identity() {
        let (out, bytes) = run_ring(vec![vec![5.0, -1.0]]);
        assert_eq!(out[0], vec![5.0, -1.0]);
        assert_eq!(bytes, 0);
    }

    #[test]
    fn zero_length_vectors_are_fine() {
        let (out, _) = run_ring(vec![vec![], vec![]]);
        assert!(out[0].is_empty());
    }

    #[test]
    fn neighbor_exchange_delivers_both_directions() {
        let n = 3;
        let (members, _) = ring_group(n);
        let got: Vec<(Vec<u8>, Vec<u8>)> = std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .map(|m| {
                    s.spawn(move || {
                        let send = vec![m.rank() as u8; 4];
                        let mut prev = Vec::new();
                        let mut next = Vec::new();
                        m.neighbor_exchange(&send, &mut prev, &mut next);
                        (prev, next)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, (prev, next)) in got.iter().enumerate() {
            assert_eq!(prev, &vec![((rank + n - 1) % n) as u8; 4]);
            assert_eq!(next, &vec![((rank + 1) % n) as u8; 4]);
        }
    }

    #[test]
    fn neighbor_exchange_single_member_self_gossips() {
        let (members, _) = ring_group(1);
        let mut prev = Vec::new();
        let mut next = Vec::new();
        members[0].neighbor_exchange(&[7, 7], &mut prev, &mut next);
        assert_eq!(prev, vec![7, 7]);
        assert_eq!(next, vec![7, 7]);
    }
}
