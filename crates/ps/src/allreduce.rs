//! Ring all-reduce: the decentralized collective underlying the
//! Horovod-style baselines in the paper's related work (PIPE-SGD,
//! Poseidon, EFLOPS), provided as a substrate so PS-based and
//! collective-based synchronization can be compared on the same stack.
//!
//! Implements the classic two-phase ring: `N−1` scatter-reduce steps
//! (each rank ends up owning one fully-reduced chunk) followed by `N−1`
//! all-gather steps. Every member sends `2·(N−1)/N` of the vector —
//! the bandwidth-optimal collective.

use crate::stats::TrafficStats;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// One participant's handle in a ring all-reduce group. All members of a
/// group must call [`RingMember::allreduce_mean`] concurrently (from
/// their own threads); the call blocks until the collective completes.
pub struct RingMember {
    rank: usize,
    n: usize,
    tx_next: Sender<Vec<f32>>,
    rx_prev: Receiver<Vec<f32>>,
    stats: Arc<TrafficStats>,
}

/// Create a ring of `n` members sharing a traffic counter.
///
/// # Panics
/// Panics if `n == 0`.
pub fn ring_group(n: usize) -> (Vec<RingMember>, Arc<TrafficStats>) {
    assert!(n > 0, "a ring needs at least one member");
    let stats = Arc::new(TrafficStats::new());
    // Channel i carries messages from rank i to rank (i+1) % n.
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    // Member `rank` sends on channel `rank` and receives on channel
    // `(rank + n - 1) % n`.
    let mut members: Vec<RingMember> = Vec::with_capacity(n);
    let mut rxs: Vec<Option<Receiver<Vec<f32>>>> = rxs.into_iter().map(Some).collect();
    for (rank, tx_next) in txs.into_iter().enumerate() {
        let rx_prev = rxs[(rank + n - 1) % n].take().expect("each rx used once");
        members.push(RingMember {
            rank,
            n,
            tx_next,
            rx_prev,
            stats: Arc::clone(&stats),
        });
    }
    (members, stats)
}

/// Chunk boundaries: `n` near-equal contiguous ranges over `len`.
fn chunk_range(len: usize, n: usize, i: usize) -> std::ops::Range<usize> {
    let start = i * len / n;
    let end = (i + 1) * len / n;
    start..end
}

impl RingMember {
    /// This member's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// In-place mean all-reduce over the group. Every member must call
    /// this with a same-length buffer; on return each buffer holds the
    /// elementwise mean.
    ///
    /// # Panics
    /// Panics if members disagree on the vector length (detected as a
    /// chunk-size mismatch) or a peer disconnected.
    pub fn allreduce_mean(&self, data: &mut [f32]) {
        if self.n == 1 {
            return; // nothing to reduce
        }
        let len = data.len();
        let n = self.n;

        // Phase 1: scatter-reduce. In step s, send chunk (rank − s) and
        // fold the received chunk (rank − s − 1) into our buffer.
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s) % n;
            let recv_idx = (self.rank + n - s - 1) % n;
            let chunk = data[chunk_range(len, n, send_idx)].to_vec();
            self.stats.record_push(4 * chunk.len());
            self.tx_next.send(chunk).expect("ring peer disconnected");
            let incoming = self.rx_prev.recv().expect("ring peer disconnected");
            let dst = &mut data[chunk_range(len, n, recv_idx)];
            assert_eq!(incoming.len(), dst.len(), "ring members disagree on length");
            for (d, x) in dst.iter_mut().zip(&incoming) {
                *d += x;
            }
        }
        // Phase 2: all-gather. In step s, send the fully-reduced chunk
        // (rank + 1 − s) and overwrite with the received chunk (rank − s).
        for s in 0..n - 1 {
            let send_idx = (self.rank + 1 + n - s) % n;
            let recv_idx = (self.rank + n - s) % n;
            let chunk = data[chunk_range(len, n, send_idx)].to_vec();
            self.stats.record_push(4 * chunk.len());
            self.tx_next.send(chunk).expect("ring peer disconnected");
            let incoming = self.rx_prev.recv().expect("ring peer disconnected");
            let dst = &mut data[chunk_range(len, n, recv_idx)];
            assert_eq!(incoming.len(), dst.len(), "ring members disagree on length");
            dst.copy_from_slice(&incoming);
        }
        // Mean.
        let inv = 1.0 / n as f32;
        for d in data.iter_mut() {
            *d *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a mean all-reduce across `n` threads and return the results.
    fn run_ring(inputs: Vec<Vec<f32>>) -> (Vec<Vec<f32>>, u64) {
        let n = inputs.len();
        let (members, stats) = ring_group(n);
        let outputs: Vec<Vec<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .zip(inputs)
                .map(|(m, mut v)| {
                    s.spawn(move || {
                        m.allreduce_mean(&mut v);
                        v
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        (outputs, stats.bytes_pushed())
    }

    #[test]
    fn two_members_compute_the_mean() {
        let (out, _) = run_ring(vec![vec![1.0, 2.0, 3.0, 4.0], vec![3.0, 2.0, 1.0, 0.0]]);
        for o in &out {
            assert_eq!(o, &vec![2.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn arbitrary_group_sizes_and_lengths() {
        for n in [1usize, 2, 3, 4, 7] {
            for len in [1usize, 5, 16, 33] {
                if len < n {
                    continue; // degenerate chunks are allowed but boring
                }
                let inputs: Vec<Vec<f32>> = (0..n)
                    .map(|r| (0..len).map(|i| (r * len + i) as f32).collect())
                    .collect();
                let mut expect = vec![0.0f32; len];
                for input in &inputs {
                    for (e, x) in expect.iter_mut().zip(input) {
                        *e += x;
                    }
                }
                for e in expect.iter_mut() {
                    *e /= n as f32;
                }
                let (out, _) = run_ring(inputs);
                for o in &out {
                    for (a, b) in o.iter().zip(&expect) {
                        assert!((a - b).abs() < 1e-4, "n={n} len={len}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn traffic_is_bandwidth_optimal() {
        // Each member sends 2(n−1)/n of the vector per all-reduce.
        let n = 4usize;
        let len = 1024usize;
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| vec![1.0; len]).collect();
        let (_, bytes) = run_ring(inputs);
        let expect = (n as u64) * 2 * (n as u64 - 1) * (4 * len as u64) / n as u64;
        assert_eq!(bytes, expect, "total ring traffic");
    }

    #[test]
    fn single_member_is_identity() {
        let (out, bytes) = run_ring(vec![vec![5.0, -1.0]]);
        assert_eq!(out[0], vec![5.0, -1.0]);
        assert_eq!(bytes, 0);
    }

    #[test]
    fn zero_length_vectors_are_fine() {
        let (out, _) = run_ring(vec![vec![], vec![]]);
        assert!(out[0].is_empty());
    }
}
