//! In-process fault injection: the client-level twin of
//! `cdsgd_net::FaultyTransport`.
//!
//! [`FaultyClient`] wraps any [`ParamClient`] and executes a scripted
//! [`WorkerFault`] keyed on the worker's aggregate *round* (derived from
//! the push count: a worker pushes exactly `num_keys` payloads per
//! round). Rounds are deterministic for a given training configuration,
//! so "worker 1 dies at round 3" reproduces exactly — on the in-process
//! backend, where there is no transport to cut.
//!
//! A killed client fails every subsequent call with
//! [`NetError::ServerGone`] *without telling the server* — the same
//! silent death a cut connection produces, which is precisely what the
//! server-side round deadline and the trainer's supervisor exist to
//! detect.

use crate::api::ParamClient;
use crate::client::PendingPull;
use crate::Key;
use cdsgd_compress::{BufferPool, Compressed};
use cdsgd_net::NetError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A scripted worker failure, keyed on the aggregate round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// Fail every parameter-server call from the first push of `round`
    /// (0-indexed) onward: the worker completes rounds `0..round`
    /// normally, then dies silently.
    KillAtRound { round: u64 },
    /// Sleep `stall` before the first push of `round` (0-indexed), then
    /// continue normally — a straggler, for exercising deadlines without
    /// losing the worker.
    StallAtRound { round: u64, stall: Duration },
}

/// A [`ParamClient`] that executes a [`WorkerFault`] on top of an inner
/// client.
pub struct FaultyClient {
    inner: Box<dyn ParamClient>,
    fault: WorkerFault,
    /// Keys per round, to convert the push counter into a round number.
    num_keys: u64,
    pushes: AtomicU64,
    dead: AtomicBool,
    stalled: AtomicBool,
}

impl FaultyClient {
    /// Wrap `inner` with the scripted `fault`. `num_keys` is the number
    /// of push calls the worker makes per round (one per parameter key).
    pub fn new(inner: Box<dyn ParamClient>, fault: WorkerFault, num_keys: usize) -> Self {
        Self {
            inner,
            fault,
            num_keys: num_keys.max(1) as u64,
            pushes: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            stalled: AtomicBool::new(false),
        }
    }

    fn check_dead(&self) -> Result<(), NetError> {
        if self.dead.load(Ordering::SeqCst) {
            Err(NetError::ServerGone)
        } else {
            Ok(())
        }
    }

    /// Count one push and fire the fault if its round has been reached.
    fn on_push(&self) -> Result<(), NetError> {
        let round = self.pushes.fetch_add(1, Ordering::SeqCst) / self.num_keys;
        match self.fault {
            WorkerFault::KillAtRound { round: at } if round >= at => {
                self.dead.store(true, Ordering::SeqCst);
                Err(NetError::ServerGone)
            }
            WorkerFault::StallAtRound { round: at, stall }
                if round >= at && !self.stalled.swap(true, Ordering::SeqCst) =>
            {
                std::thread::sleep(stall);
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

impl ParamClient for FaultyClient {
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError> {
        self.check_dead()?;
        self.on_push()?;
        self.inner.push(worker, key, payload)
    }

    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError> {
        self.check_dead()?;
        self.inner.pull_async(key, min_version)
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        self.check_dead()?;
        self.inner.set_lr(lr)
    }

    fn register(&self, worker: usize) -> Result<Vec<u64>, NetError> {
        self.check_dead()?;
        self.inner.register(worker)
    }

    fn leave(&self, worker: usize) -> Result<(), NetError> {
        self.check_dead()?;
        self.inner.leave(worker)
    }

    fn cancel_join(&self, worker: usize) -> Result<(), NetError> {
        self.check_dead()?;
        self.inner.cancel_join(worker)
    }

    fn heartbeat(&self, worker: usize) -> Result<(), NetError> {
        self.check_dead()?;
        self.inner.heartbeat(worker)
    }

    fn pool(&self) -> &BufferPool {
        self.inner.pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParamServer, ServerConfig};

    fn raw(v: f32) -> Compressed {
        Compressed::Raw(vec![v])
    }

    #[test]
    fn kill_at_round_counts_pushes_per_key() {
        // 2 keys per round: rounds 0 and 1 succeed (4 pushes), then the
        // first push of round 2 — and everything after — fails.
        let ps = ParamServer::start(vec![vec![0.0], vec![0.0]], ServerConfig::new(1, 1.0));
        let c = FaultyClient::new(
            Box::new(ps.client()),
            WorkerFault::KillAtRound { round: 2 },
            2,
        );
        for _ in 0..2 {
            c.push(0, 0, raw(1.0)).unwrap();
            c.push(0, 1, raw(1.0)).unwrap();
        }
        assert_eq!(c.push(0, 0, raw(1.0)), Err(NetError::ServerGone));
        // Dead for every call, not just pushes.
        assert_eq!(c.pull(0, 2).unwrap_err(), NetError::ServerGone);
        assert_eq!(c.set_lr(0.1), Err(NetError::ServerGone));
        // The server never saw the round-2 push.
        assert_eq!(*ps.client().pull(0, 2).unwrap(), [-2.0]);
        ps.shutdown();
    }

    #[test]
    fn kill_at_round_zero_never_pushes() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(1, 1.0));
        let c = FaultyClient::new(
            Box::new(ps.client()),
            WorkerFault::KillAtRound { round: 0 },
            1,
        );
        assert_eq!(c.push(0, 0, raw(1.0)), Err(NetError::ServerGone));
        assert_eq!(*ps.client().pull(0, 0).unwrap(), [0.0]);
        ps.shutdown();
    }

    #[test]
    fn stall_fires_once_then_continues() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(1, 1.0));
        let c = FaultyClient::new(
            Box::new(ps.client()),
            WorkerFault::StallAtRound {
                round: 1,
                stall: Duration::from_millis(30),
            },
            1,
        );
        c.push(0, 0, raw(1.0)).unwrap();
        let t = std::time::Instant::now();
        c.push(0, 0, raw(1.0)).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(30));
        let t = std::time::Instant::now();
        c.push(0, 0, raw(1.0)).unwrap();
        assert!(t.elapsed() < Duration::from_millis(30), "stall fires once");
        assert_eq!(*c.pull(0, 3).unwrap(), [-3.0]);
        ps.shutdown();
    }
}
