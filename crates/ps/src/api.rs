//! Transport-generic client and backend abstractions.
//!
//! The trainer and workers speak to the parameter server exclusively
//! through these traits, so the same training loop runs bit-identically
//! whether the server lives in this process ([`crate::PsClient`]), behind
//! an in-memory loopback transport, or across localhost TCP
//! ([`crate::net::RemoteClient`]). Wire encoding is deterministic and
//! f32 round-trips are bit-exact, so the choice of backend cannot change
//! the training trajectory — only its wall-clock cost.

use crate::client::{PendingPull, PsClient};
use crate::server::ParamServer;
use crate::Key;
use cdsgd_compress::{BufferPool, Compressed};
use cdsgd_net::NetError;
use std::sync::Arc;

/// What a worker needs from a parameter-server connection. Object-safe so
/// workers hold `Box<dyn ParamClient>` and stay agnostic of the backend;
/// `Send + Sync` because every method takes `&self` and a client handle
/// may be shared across a worker's compute threads.
///
/// Every method is fallible: a dead server or broken connection surfaces
/// as a typed [`NetError`] instead of a worker-thread panic.
pub trait ParamClient: Send + Sync {
    /// Push a gradient payload for `key` on behalf of `worker`.
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError>;

    /// Pull `key` blocking until exactly `min_version` aggregate updates
    /// have been applied.
    fn pull(&self, key: Key, min_version: u64) -> Result<Arc<[f32]>, NetError> {
        self.pull_async(key, min_version)?.wait()
    }

    /// Fire-and-forget pull: returns a handle resolving once the server
    /// reaches `min_version`, so transfers overlap computation.
    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError>;

    /// Pull every key at `min_version` (warm-up / eval convenience).
    fn pull_all(&self, num_keys: usize, min_version: u64) -> Result<Vec<Arc<[f32]>>, NetError> {
        (0..num_keys).map(|k| self.pull(k, min_version)).collect()
    }

    /// Change the server-side learning rate.
    fn set_lr(&self, lr: f32) -> Result<(), NetError>;

    /// Elastic membership: register `worker` with the server's membership
    /// table and block for the per-key version ack — the versions the
    /// joiner's first pulls must target (see [`crate::ElasticConfig`]).
    /// Backends without a membership control plane reject the call.
    fn register(&self, _worker: usize) -> Result<Vec<u64>, NetError> {
        Err(NetError::Io(
            "membership is not supported by this backend".into(),
        ))
    }

    /// Elastic membership: `worker` departs gracefully — its queued
    /// pushes still feed their rounds, then the quorum shrinks. Default
    /// no-op: on fixed membership there is no table to leave.
    fn leave(&self, _worker: usize) -> Result<(), NetError> {
        Ok(())
    }

    /// Elastic membership: roll back this client's own tentative
    /// registration of `worker` — the two-phase cross-shard join
    /// ([`crate::ShardedClient::register`]) revoking the shards it
    /// admitted after a later shard failed. Unlike
    /// [`ParamClient::leave`], the server honours the cancel only when
    /// this connection's registration *promoted* the worker into the
    /// active set, so a rollback that trails a re-registration of an
    /// established member (a reconnect refresh) cannot demote it.
    /// Default no-op: without a membership table there is nothing to
    /// roll back.
    fn cancel_join(&self, _worker: usize) -> Result<(), NetError> {
        Ok(())
    }

    /// Elastic membership: liveness signal (pushes also count). Default
    /// no-op.
    fn heartbeat(&self, _worker: usize) -> Result<(), NetError> {
        Ok(())
    }

    /// The payload buffer pool compressors should draw from, so push
    /// payload storage recycles round over round.
    fn pool(&self) -> &BufferPool;
}

impl ParamClient for PsClient {
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError> {
        PsClient::push(self, worker, key, payload)
    }

    fn pull(&self, key: Key, min_version: u64) -> Result<Arc<[f32]>, NetError> {
        PsClient::pull(self, key, min_version)
    }

    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError> {
        PsClient::pull_async(self, key, min_version)
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        PsClient::set_lr(self, lr)
    }

    fn register(&self, worker: usize) -> Result<Vec<u64>, NetError> {
        PsClient::register(self, worker)
    }

    fn leave(&self, worker: usize) -> Result<(), NetError> {
        PsClient::leave(self, worker)
    }

    fn cancel_join(&self, worker: usize) -> Result<(), NetError> {
        PsClient::cancel_join(self, worker)
    }

    fn heartbeat(&self, worker: usize) -> Result<(), NetError> {
        PsClient::heartbeat(self, worker)
    }

    fn pool(&self) -> &BufferPool {
        PsClient::pool(self)
    }
}

/// Shared ownership of a client (`Arc` delegation): a worker that must
/// announce its own departure needs the connection in two places — inside
/// its update strategy (which consumed a `Box<dyn ParamClient>`) and in
/// the departure path that sends `leave` *after* the strategy's final
/// pushes. Routing both through one `Arc` keeps every message on a single
/// ordered stream, so a `leave` can never overtake an in-flight push on a
/// second connection.
impl ParamClient for Arc<dyn ParamClient> {
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError> {
        (**self).push(worker, key, payload)
    }

    fn pull(&self, key: Key, min_version: u64) -> Result<Arc<[f32]>, NetError> {
        (**self).pull(key, min_version)
    }

    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError> {
        (**self).pull_async(key, min_version)
    }

    fn pull_all(&self, num_keys: usize, min_version: u64) -> Result<Vec<Arc<[f32]>>, NetError> {
        (**self).pull_all(num_keys, min_version)
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        (**self).set_lr(lr)
    }

    fn register(&self, worker: usize) -> Result<Vec<u64>, NetError> {
        (**self).register(worker)
    }

    fn leave(&self, worker: usize) -> Result<(), NetError> {
        (**self).leave(worker)
    }

    fn cancel_join(&self, worker: usize) -> Result<(), NetError> {
        (**self).cancel_join(worker)
    }

    fn heartbeat(&self, worker: usize) -> Result<(), NetError> {
        (**self).heartbeat(worker)
    }

    fn pool(&self) -> &BufferPool {
        (**self).pool()
    }
}

/// A mid-run joiner's view of the server: every pull's `min_version` is
/// rebased by the per-key versions the server acked at registration.
///
/// Update strategies count rounds locally from zero, but a worker that
/// joins an elastic run at global round `V` participates in rounds
/// `V+1, V+2, …` — and the server serves only the latest two versions,
/// panicking on pulls further behind. Registration's ack is *exact* (no
/// round completes after the join without the joiner), so local round
/// `r` maps to global version `base[key] + r` with no race window.
pub struct RebasedClient {
    inner: Box<dyn ParamClient>,
    /// Per-key global version at admission (the `RegisterAck` payload).
    base: Vec<u64>,
}

impl RebasedClient {
    /// Wrap `inner` for a worker admitted when each key was at
    /// `base[key]` aggregates (the vector [`ParamClient::register`]
    /// returned).
    pub fn new(inner: Box<dyn ParamClient>, base: Vec<u64>) -> Self {
        Self { inner, base }
    }
}

impl ParamClient for RebasedClient {
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError> {
        self.inner.push(worker, key, payload)
    }

    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError> {
        self.inner.pull_async(key, min_version + self.base[key])
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        self.inner.set_lr(lr)
    }

    fn register(&self, worker: usize) -> Result<Vec<u64>, NetError> {
        self.inner.register(worker)
    }

    fn leave(&self, worker: usize) -> Result<(), NetError> {
        self.inner.leave(worker)
    }

    fn cancel_join(&self, worker: usize) -> Result<(), NetError> {
        self.inner.cancel_join(worker)
    }

    fn heartbeat(&self, worker: usize) -> Result<(), NetError> {
        self.inner.heartbeat(worker)
    }

    fn pool(&self) -> &BufferPool {
        self.inner.pool()
    }
}

/// A running parameter-server deployment the trainer can drive: hands out
/// worker connections and answers the control-plane requests the trainer
/// makes between epochs. Implementations: [`InProcessBackend`] (server
/// threads in this process) and [`crate::net::NetCluster`] (loopback or
/// TCP shards, possibly in other OS processes).
pub trait PsBackend {
    /// A fresh client connection for one worker (or the control plane).
    fn client(&self) -> Result<Box<dyn ParamClient>, NetError>;

    /// Broadcast a learning-rate change to every shard.
    fn set_lr(&self, lr: f32) -> Result<(), NetError>;

    /// Globally-ordered weights + versions across all shards.
    fn snapshot(&self) -> Result<(Vec<Vec<f32>>, Vec<u64>), NetError>;

    /// Cumulative worker→server traffic (encoded frame bytes).
    fn bytes_pushed(&self) -> u64;

    /// Cumulative server→worker pull-reply traffic (encoded frame
    /// bytes). Same accounting surface as [`PsBackend::bytes_pushed`],
    /// mirrored for the downlink.
    fn bytes_pulled(&self) -> u64;

    /// The failure that ended aggregation on some shard (its round
    /// deadline fired), if any. `None` for backends that cannot observe
    /// shard failures (e.g. external server processes, which exit nonzero
    /// on their own instead).
    fn failure(&self) -> Option<NetError> {
        None
    }

    /// Surrender the per-worker collective handles of a server-less
    /// deployment (exactly once; `n` must match the group size). Server
    /// backends return `None` and the trainer builds its own in-process
    /// group when the algorithm asks for one — see
    /// [`crate::collective::AllReduceBackend`] /
    /// [`crate::collective::DecentralizedBackend`] for backends that
    /// answer here.
    fn take_collectives(&self, _n: usize) -> Option<crate::collective::CollectiveGroup> {
        None
    }

    /// Stop the deployment (threads joined; remote shards told to exit).
    fn shutdown(self: Box<Self>);
}

/// The classic single-process deployment: one [`ParamServer`] thread (or a
/// sharded group, via [`crate::ShardedParamServer`] wrapped similarly) in
/// the trainer's own process, clients talking over channels.
pub struct InProcessBackend {
    ps: ParamServer,
}

impl InProcessBackend {
    /// Wrap a running server.
    pub fn new(ps: ParamServer) -> Self {
        Self { ps }
    }

    /// Borrow the wrapped server.
    pub fn server(&self) -> &ParamServer {
        &self.ps
    }
}

impl PsBackend for InProcessBackend {
    fn client(&self) -> Result<Box<dyn ParamClient>, NetError> {
        Ok(Box::new(self.ps.client()))
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        self.ps.client().set_lr(lr)
    }

    fn snapshot(&self) -> Result<(Vec<Vec<f32>>, Vec<u64>), NetError> {
        self.ps.client().snapshot()
    }

    fn bytes_pushed(&self) -> u64 {
        self.ps.stats().bytes_pushed()
    }

    fn bytes_pulled(&self) -> u64 {
        self.ps.stats().bytes_pulled()
    }

    fn failure(&self) -> Option<NetError> {
        self.ps.failure()
    }

    fn shutdown(self: Box<Self>) {
        self.ps.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;

    #[test]
    fn in_process_backend_round_trips() {
        let backend: Box<dyn PsBackend> = Box::new(InProcessBackend::new(ParamServer::start(
            vec![vec![0.0, 0.0]],
            ServerConfig::new(1, 1.0),
        )));
        let c = backend.client().unwrap();
        c.push(0, 0, Compressed::Raw(vec![1.0, 2.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-1.0, -2.0]);
        let (w, v) = backend.snapshot().unwrap();
        assert_eq!(w, vec![vec![-1.0, -2.0]]);
        assert_eq!(v, vec![1]);
        assert!(backend.bytes_pushed() > 0);
        backend.shutdown();
    }

    #[test]
    fn rebased_client_joins_an_elastic_run_mid_stream() {
        use crate::ElasticConfig;
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1)),
        );
        // Worker 0 trains solo for three rounds.
        let c0 = ps.client();
        for v in 1..=3u64 {
            c0.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
            c0.pull(0, v).unwrap();
        }
        // Worker 1 joins at global version 3; its local round counter
        // starts at zero, so its pulls must be rebased — an un-rebased
        // pull of version 1 would panic the server.
        let raw = ps.client();
        let base = ParamClient::register(&raw, 1).unwrap();
        assert_eq!(base, vec![3]);
        let c1 = RebasedClient::new(Box::new(raw), base);
        c1.push(1, 0, Compressed::Raw(vec![1.0])).unwrap();
        c0.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        // Local round 1 for the joiner is global round 4 for worker 0:
        // both see the same aggregate (divisor 2 now).
        assert_eq!(*c1.pull(0, 1).unwrap(), [-4.0]);
        assert_eq!(*c0.pull(0, 4).unwrap(), [-4.0]);
        ps.shutdown();
    }

    #[test]
    fn boxed_clients_are_object_safe_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(1, 1.0));
        let c: Box<dyn ParamClient> = Box::new(ps.client());
        assert_send(&c);
        assert_eq!(*c.pull_all(1, 0).unwrap()[0], [0.0]);
        ps.shutdown();
    }
}
