//! Transport-generic client and backend abstractions.
//!
//! The trainer and workers speak to the parameter server exclusively
//! through these traits, so the same training loop runs bit-identically
//! whether the server lives in this process ([`crate::PsClient`]), behind
//! an in-memory loopback transport, or across localhost TCP
//! ([`crate::net::RemoteClient`]). Wire encoding is deterministic and
//! f32 round-trips are bit-exact, so the choice of backend cannot change
//! the training trajectory — only its wall-clock cost.

use crate::client::{PendingPull, PsClient};
use crate::server::ParamServer;
use crate::Key;
use cdsgd_compress::{BufferPool, Compressed};
use cdsgd_net::NetError;
use std::sync::Arc;

/// What a worker needs from a parameter-server connection. Object-safe so
/// workers hold `Box<dyn ParamClient>` and stay agnostic of the backend;
/// `Send + Sync` because every method takes `&self` and a client handle
/// may be shared across a worker's compute threads.
///
/// Every method is fallible: a dead server or broken connection surfaces
/// as a typed [`NetError`] instead of a worker-thread panic.
pub trait ParamClient: Send + Sync {
    /// Push a gradient payload for `key` on behalf of `worker`.
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError>;

    /// Pull `key` blocking until exactly `min_version` aggregate updates
    /// have been applied.
    fn pull(&self, key: Key, min_version: u64) -> Result<Arc<[f32]>, NetError> {
        self.pull_async(key, min_version)?.wait()
    }

    /// Fire-and-forget pull: returns a handle resolving once the server
    /// reaches `min_version`, so transfers overlap computation.
    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError>;

    /// Pull every key at `min_version` (warm-up / eval convenience).
    fn pull_all(&self, num_keys: usize, min_version: u64) -> Result<Vec<Arc<[f32]>>, NetError> {
        (0..num_keys).map(|k| self.pull(k, min_version)).collect()
    }

    /// Change the server-side learning rate.
    fn set_lr(&self, lr: f32) -> Result<(), NetError>;

    /// The payload buffer pool compressors should draw from, so push
    /// payload storage recycles round over round.
    fn pool(&self) -> &BufferPool;
}

impl ParamClient for PsClient {
    fn push(&self, worker: usize, key: Key, payload: Compressed) -> Result<(), NetError> {
        PsClient::push(self, worker, key, payload)
    }

    fn pull(&self, key: Key, min_version: u64) -> Result<Arc<[f32]>, NetError> {
        PsClient::pull(self, key, min_version)
    }

    fn pull_async(&self, key: Key, min_version: u64) -> Result<PendingPull, NetError> {
        PsClient::pull_async(self, key, min_version)
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        PsClient::set_lr(self, lr)
    }

    fn pool(&self) -> &BufferPool {
        PsClient::pool(self)
    }
}

/// A running parameter-server deployment the trainer can drive: hands out
/// worker connections and answers the control-plane requests the trainer
/// makes between epochs. Implementations: [`InProcessBackend`] (server
/// threads in this process) and [`crate::net::NetCluster`] (loopback or
/// TCP shards, possibly in other OS processes).
pub trait PsBackend {
    /// A fresh client connection for one worker (or the control plane).
    fn client(&self) -> Result<Box<dyn ParamClient>, NetError>;

    /// Broadcast a learning-rate change to every shard.
    fn set_lr(&self, lr: f32) -> Result<(), NetError>;

    /// Globally-ordered weights + versions across all shards.
    fn snapshot(&self) -> Result<(Vec<Vec<f32>>, Vec<u64>), NetError>;

    /// Cumulative worker→server traffic (encoded frame bytes).
    fn bytes_pushed(&self) -> u64;

    /// Cumulative server→worker pull-reply traffic (encoded frame
    /// bytes). Same accounting surface as [`PsBackend::bytes_pushed`],
    /// mirrored for the downlink.
    fn bytes_pulled(&self) -> u64;

    /// The failure that ended aggregation on some shard (its round
    /// deadline fired), if any. `None` for backends that cannot observe
    /// shard failures (e.g. external server processes, which exit nonzero
    /// on their own instead).
    fn failure(&self) -> Option<NetError> {
        None
    }

    /// Stop the deployment (threads joined; remote shards told to exit).
    fn shutdown(self: Box<Self>);
}

/// The classic single-process deployment: one [`ParamServer`] thread (or a
/// sharded group, via [`crate::ShardedParamServer`] wrapped similarly) in
/// the trainer's own process, clients talking over channels.
pub struct InProcessBackend {
    ps: ParamServer,
}

impl InProcessBackend {
    /// Wrap a running server.
    pub fn new(ps: ParamServer) -> Self {
        Self { ps }
    }

    /// Borrow the wrapped server.
    pub fn server(&self) -> &ParamServer {
        &self.ps
    }
}

impl PsBackend for InProcessBackend {
    fn client(&self) -> Result<Box<dyn ParamClient>, NetError> {
        Ok(Box::new(self.ps.client()))
    }

    fn set_lr(&self, lr: f32) -> Result<(), NetError> {
        self.ps.client().set_lr(lr)
    }

    fn snapshot(&self) -> Result<(Vec<Vec<f32>>, Vec<u64>), NetError> {
        self.ps.client().snapshot()
    }

    fn bytes_pushed(&self) -> u64 {
        self.ps.stats().bytes_pushed()
    }

    fn bytes_pulled(&self) -> u64 {
        self.ps.stats().bytes_pulled()
    }

    fn failure(&self) -> Option<NetError> {
        self.ps.failure()
    }

    fn shutdown(self: Box<Self>) {
        self.ps.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;

    #[test]
    fn in_process_backend_round_trips() {
        let backend: Box<dyn PsBackend> = Box::new(InProcessBackend::new(ParamServer::start(
            vec![vec![0.0, 0.0]],
            ServerConfig::new(1, 1.0),
        )));
        let c = backend.client().unwrap();
        c.push(0, 0, Compressed::Raw(vec![1.0, 2.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-1.0, -2.0]);
        let (w, v) = backend.snapshot().unwrap();
        assert_eq!(w, vec![vec![-1.0, -2.0]]);
        assert_eq!(v, vec![1]);
        assert!(backend.bytes_pushed() > 0);
        backend.shutdown();
    }

    #[test]
    fn boxed_clients_are_object_safe_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(1, 1.0));
        let c: Box<dyn ParamClient> = Box::new(ps.client());
        assert_send(&c);
        assert_eq!(*c.pull_all(1, 0).unwrap()[0], [0.0]);
        ps.shutdown();
    }
}
