//! Topology-agnostic collectives: one [`Collective`] trait over the
//! in-memory ring ([`crate::allreduce::RingMember`]), a ring all-reduce
//! running on real [`Transport`] links ([`WireRing`], loopback or TCP),
//! and an order-pinned tree reduce-broadcast ([`WireTree`]) — plus the
//! [`PsBackend`] adapters ([`AllReduceBackend`], [`DecentralizedBackend`])
//! that let `Trainer::run_with` drive server-less topologies with the
//! same update strategies it uses against a parameter server.
//!
//! # Bit-identity across backends
//!
//! All three implementations honor the reduction-order contract pinned in
//! [`crate::allreduce`]: chunk `c` sums in ring order starting at rank
//! `c`, gathers copy bytes verbatim, and the mean divides elementwise
//! after the sum. Wire frames carry little-endian f32 (exact round trip),
//! so an all-reduce over TCP produces the same bits as the in-memory
//! ring. The tree gathers *raw per-rank vectors* to the root — not
//! subtree partial sums, which would reassociate the fold — and the root
//! applies the same ring-ordered sum before broadcasting, trading the
//! ring's bandwidth optimality for `O(log N)` latency hops (the
//! `cdsgd-simtime` allreduce cost model quantifies the crossover).
//!
//! # Frames and telemetry
//!
//! Wire collectives speak the `cdsgd-net` collective frame family
//! (`[tag][phase][index][count][payload]`, length-prefixed like every
//! other frame). Every frame is recorded as a conn-tagged
//! [`cdsgd_telemetry::Event::FrameSent`]/`FrameReceived` pair through the
//! group's shared [`TrafficStats`], so sent and received byte totals
//! balance exactly, and payload bytes are recorded through the same
//! `Push` accounting the in-memory ring uses — which is what lets tests
//! prove the `2·(N−1)/N` bandwidth-optimality claim on real TCP runs.

use crate::allreduce::{chunk_range, ring_group, RingMember};
use crate::api::{ParamClient, PsBackend};
use crate::client::PendingPull;
use crate::stats::TrafficStats;
use crate::Key;
use cdsgd_compress::{BufferPool, Compressed};
use cdsgd_net::{
    decode_collective, encode_collective_bytes_into, encode_collective_into, loopback_pair,
    NetConfig, NetError, TcpAcceptor, TcpTransport, Transport, COLLECTIVE_EXCHANGE,
    COLLECTIVE_GATHER, COLLECTIVE_HELLO, COLLECTIVE_SCATTER, COLLECTIVE_TREE_DOWN,
    COLLECTIVE_TREE_UP, FRAME_PREFIX_BYTES,
};
use cdsgd_tensor::kernel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a member waits for a peer's frame (or accept) before the
/// collective fails with [`NetError::Timeout`] instead of hanging.
const STEP_TIMEOUT: Duration = Duration::from_secs(30);

/// One member's handle on a synchronization group. All members must call
/// the same operation concurrently (from their own threads/processes);
/// calls block until the collective completes.
///
/// Operations and their contracts:
/// * [`Collective::reduce_scatter`] — after the call, the member's owned
///   chunk (`(rank + 1) % world`, boundaries from [`chunk_range`]) holds
///   the ring-ordered sum of all members' data. Implementations may
///   reduce *more* than the owned chunk (the tree reduces everything).
/// * [`Collective::all_gather`] — each member contributes its owned
///   chunk; afterwards every member holds the full vector, bit-identical.
/// * [`Collective::allreduce_mean`] — elementwise mean, bit-identical
///   across ranks and implementations (the reduction-order contract).
/// * [`Collective::neighbor_exchange`] — ring-topology gossip: send an
///   opaque byte payload to both ring neighbors, receive theirs.
pub trait Collective: Send {
    /// This member's rank in `[0, world)`.
    fn rank(&self) -> usize;

    /// Group size.
    fn world(&self) -> usize;

    /// Scatter-reduce: the member's owned chunk ends fully reduced.
    fn reduce_scatter(&mut self, data: &mut [f32]) -> Result<(), NetError>;

    /// All-gather of the owned chunks: every member ends with the full
    /// vector.
    fn all_gather(&mut self, data: &mut [f32]) -> Result<(), NetError>;

    /// In-place mean all-reduce; bit-identical across ranks/backends.
    fn allreduce_mean(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        self.reduce_scatter(data)?;
        self.all_gather(data)?;
        kernel::scale(data, 1.0 / self.world() as f32);
        Ok(())
    }

    /// Exchange `send` with both ring neighbors; `from_prev`/`from_next`
    /// are overwritten with the payloads of ranks `rank ∓ 1`. Only ring
    /// topologies support this; others return an error.
    fn neighbor_exchange(
        &mut self,
        send: &[u8],
        from_prev: &mut Vec<u8>,
        from_next: &mut Vec<u8>,
    ) -> Result<(), NetError> {
        let _ = (send, from_prev, from_next);
        Err(NetError::Io(
            "neighbor exchange requires a ring topology".into(),
        ))
    }
}

impl Collective for RingMember {
    fn rank(&self) -> usize {
        RingMember::rank(self)
    }

    fn world(&self) -> usize {
        self.group_size()
    }

    fn reduce_scatter(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        RingMember::reduce_scatter(self, data);
        Ok(())
    }

    fn all_gather(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        RingMember::all_gather(self, data);
        Ok(())
    }

    fn allreduce_mean(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        RingMember::allreduce_mean(self, data);
        Ok(())
    }

    fn neighbor_exchange(
        &mut self,
        send: &[u8],
        from_prev: &mut Vec<u8>,
        from_next: &mut Vec<u8>,
    ) -> Result<(), NetError> {
        RingMember::neighbor_exchange(self, send, from_prev, from_next);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// shared wire-link plumbing
// ---------------------------------------------------------------------------

/// Send `frame` on `link` and record the conn-tagged frame bytes.
fn send_recorded(
    link: &mut dyn Transport,
    frame: &[u8],
    stats: &TrafficStats,
) -> Result<(), NetError> {
    stats.record_sent(link.conn_id(), FRAME_PREFIX_BYTES + frame.len());
    link.send_frame(frame)
}

/// Receive one frame from `link` into `out` and record it.
fn recv_recorded(
    link: &mut dyn Transport,
    out: &mut Vec<u8>,
    stats: &TrafficStats,
) -> Result<(), NetError> {
    link.recv_frame(out)?;
    stats.record_received(link.conn_id(), FRAME_PREFIX_BYTES + out.len());
    Ok(())
}

/// One link's part in a collective step: optionally a frame to write and
/// optionally a buffer expecting one inbound frame. Each transport
/// appears in at most one descriptor per step.
struct LinkIo<'a> {
    link: &'a mut dyn Transport,
    send: Option<&'a [u8]>,
    recv: Option<&'a mut Vec<u8>>,
}

/// One full-duplex step: write every pending frame and read one frame
/// into every expecting buffer, without requiring any global
/// send/receive ordering across the group. In blocking mode (loopback:
/// queue-backed sends never block) this is sequential send-then-receive.
/// In non-blocking mode (TCP) the sends are queued and both directions
/// are pumped together, so a full socket buffer on the send side can
/// never deadlock against a peer doing the same.
fn duplex_step(
    stats: &TrafficStats,
    nonblocking: bool,
    links: &mut [LinkIo<'_>],
) -> Result<(), NetError> {
    if !nonblocking {
        for l in links.iter_mut() {
            if let Some(frame) = l.send {
                send_recorded(l.link, frame, stats)?;
            }
        }
        for l in links.iter_mut() {
            if let Some(out) = l.recv.as_deref_mut() {
                recv_recorded(l.link, out, stats)?;
            }
        }
        return Ok(());
    }
    for l in links.iter_mut() {
        if let Some(frame) = l.send {
            stats.record_sent(l.link.conn_id(), FRAME_PREFIX_BYTES + frame.len());
            l.link.poll_send_frame(frame)?;
        }
    }
    let deadline = Instant::now() + STEP_TIMEOUT;
    let mut flushed: Vec<bool> = links.iter().map(|l| l.send.is_none()).collect();
    let mut got: Vec<bool> = links.iter().map(|l| l.recv.is_none()).collect();
    loop {
        let mut done = true;
        for (i, l) in links.iter_mut().enumerate() {
            if !flushed[i] {
                flushed[i] = l.link.poll_flush()?;
                done &= flushed[i];
            }
            if !got[i] {
                let out = l.recv.as_deref_mut().expect("recv buffer present");
                got[i] = l.link.poll_recv_frame(out)?;
                if got[i] {
                    stats.record_received(l.link.conn_id(), FRAME_PREFIX_BYTES + out.len());
                }
                done &= got[i];
            }
        }
        if done {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(NetError::Timeout);
        }
        std::thread::yield_now();
    }
}

/// First frame on every collective link: announce the sender's rank so
/// accepters can label inbound connections regardless of accept order.
fn send_hello(link: &mut dyn Transport, rank: usize, stats: &TrafficStats) -> Result<(), NetError> {
    let mut buf = Vec::with_capacity(16);
    encode_collective_bytes_into(COLLECTIVE_HELLO, rank as u32, &[], &mut buf);
    send_recorded(link, &buf, stats)
}

fn recv_hello(link: &mut dyn Transport, stats: &TrafficStats) -> Result<usize, NetError> {
    let mut buf = Vec::with_capacity(16);
    recv_recorded(link, &mut buf, stats)?;
    let frame = decode_collective(&buf)?;
    if frame.phase != COLLECTIVE_HELLO {
        return Err(NetError::Decode(format!(
            "expected collective hello, got phase {}",
            frame.phase
        )));
    }
    Ok(frame.index as usize)
}

/// Decode a received chunk frame, validating phase and chunk index.
fn expect_chunk<'a>(
    buf: &'a [u8],
    phase: u8,
    index: usize,
) -> Result<cdsgd_net::CollectiveFrame<'a>, NetError> {
    let frame = decode_collective(buf)?;
    if frame.phase != phase || frame.index != index as u32 {
        return Err(NetError::Decode(format!(
            "collective step mismatch: got phase {} index {}, want phase {phase} index {index} \
             (members out of lock step?)",
            frame.phase, frame.index
        )));
    }
    Ok(frame)
}

// ---------------------------------------------------------------------------
// ring all-reduce over Transport
// ---------------------------------------------------------------------------

/// A ring member whose neighbor links are real [`Transport`]s: the same
/// two-phase, order-pinned ring as [`RingMember`], but each chunk travels
/// as a length-prefixed collective frame over loopback queues or TCP
/// sockets. Both links are bidirectional, so the same member also
/// supports [`Collective::neighbor_exchange`] for decentralized training.
pub struct WireRing {
    rank: usize,
    n: usize,
    /// Link to rank `(rank + 1) % n`; all-reduce chunks go out here.
    next: Box<dyn Transport>,
    /// Link to rank `(rank − 1) % n`; all-reduce chunks come in here.
    prev: Box<dyn Transport>,
    nonblocking: bool,
    stats: Arc<TrafficStats>,
    frame: Vec<u8>,
    frame2: Vec<u8>,
    rbuf: Vec<u8>,
    rbuf2: Vec<u8>,
    scratch: Vec<f32>,
}

impl WireRing {
    fn new(
        rank: usize,
        n: usize,
        next: Box<dyn Transport>,
        prev: Box<dyn Transport>,
        nonblocking: bool,
        stats: Arc<TrafficStats>,
    ) -> Self {
        Self {
            rank,
            n,
            next,
            prev,
            nonblocking,
            stats,
            frame: Vec::new(),
            frame2: Vec::new(),
            rbuf: Vec::new(),
            rbuf2: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Build an `n`-member ring over in-process loopback transports.
    pub fn loopback(n: usize) -> (Vec<WireRing>, Arc<TrafficStats>) {
        assert!(n > 0, "a ring needs at least one member");
        let stats = Arc::new(TrafficStats::new());
        // Pair i connects rank i (side a, its `next`) to rank (i+1) % n
        // (side b, its `prev`).
        let mut sides: Vec<(Option<_>, Option<_>)> = (0..n)
            .map(|_| {
                let (a, b) = loopback_pair();
                (Some(a), Some(b))
            })
            .collect();
        let members = (0..n)
            .map(|rank| {
                let next = sides[rank].0.take().expect("side used once");
                let prev = sides[(rank + n - 1) % n].1.take().expect("side used once");
                let mut m = WireRing::new(
                    rank,
                    n,
                    Box::new(next),
                    Box::new(prev),
                    false,
                    Arc::clone(&stats),
                );
                m.next
                    .set_recv_timeout(Some(STEP_TIMEOUT))
                    .expect("loopback timeout");
                m.prev
                    .set_recv_timeout(Some(STEP_TIMEOUT))
                    .expect("loopback timeout");
                m
            })
            .collect();
        (members, stats)
    }

    /// Build an `n`-member ring over localhost TCP, all endpoints in this
    /// process (the trainer's threaded deployment). Each member dials its
    /// successor and accepts its predecessor, with a rank handshake on
    /// every link.
    pub fn tcp(n: usize) -> Result<(Vec<WireRing>, Arc<TrafficStats>), NetError> {
        assert!(n > 0, "a ring needs at least one member");
        let stats = Arc::new(TrafficStats::new());
        let cfg = NetConfig::default();
        let mut acceptors = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let (acc, addr) = TcpAcceptor::bind("127.0.0.1:0", cfg.clone())?;
            acceptors.push(acc);
            addrs.push(addr);
        }
        // Dial every successor first: TCP connects complete against the
        // listener backlog, so no accept has to run concurrently, and the
        // tiny hello frames fit in socket buffers unread.
        let mut nexts = Vec::with_capacity(n);
        for rank in 0..n {
            let mut t = TcpTransport::connect(addrs[(rank + 1) % n], &cfg)?;
            send_hello(&mut t, rank, &stats)?;
            nexts.push(Some(t));
        }
        let mut members = Vec::with_capacity(n);
        for (rank, next) in nexts.iter_mut().enumerate() {
            let mut prev = acceptors[rank].accept(STEP_TIMEOUT)?;
            let hello = recv_hello(&mut prev, &stats)?;
            let want = (rank + n - 1) % n;
            if hello != want {
                return Err(NetError::Decode(format!(
                    "ring wiring error: rank {rank} accepted a link from rank {hello}, want {want}"
                )));
            }
            let mut m = WireRing::new(
                rank,
                n,
                Box::new(next.take().expect("dialed once")),
                Box::new(prev),
                true,
                Arc::clone(&stats),
            );
            m.next.set_nonblocking(true)?;
            m.prev.set_nonblocking(true)?;
            members.push(m);
        }
        Ok((members, stats))
    }

    /// Join a multi-process ring as `rank`: bind `peers[rank]`, dial the
    /// successor `peers[(rank + 1) % n]`, accept the predecessor, and
    /// handshake ranks. Every process must list the same `peers` in the
    /// same order.
    pub fn connect(
        rank: usize,
        peers: &[String],
        cfg: &NetConfig,
        stats: Arc<TrafficStats>,
    ) -> Result<WireRing, NetError> {
        let n = peers.len();
        assert!(rank < n, "rank {rank} outside peer list of {n}");
        if n == 1 {
            // Degenerate single-member ring: all collectives early-return.
            let (a, b) = loopback_pair();
            return Ok(WireRing::new(
                rank,
                n,
                Box::new(a),
                Box::new(b),
                false,
                stats,
            ));
        }
        let (acceptor, _) = TcpAcceptor::bind(peers[rank].as_str(), cfg.clone())?;
        let mut next = TcpTransport::connect(peers[(rank + 1) % n].as_str(), cfg)?;
        send_hello(&mut next, rank, &stats)?;
        let mut prev = acceptor.accept(STEP_TIMEOUT)?;
        let hello = recv_hello(&mut prev, &stats)?;
        let want = (rank + n - 1) % n;
        if hello != want {
            return Err(NetError::Decode(format!(
                "ring wiring error: rank {rank} accepted a link from rank {hello}, want {want}"
            )));
        }
        let mut m = WireRing::new(rank, n, Box::new(next), Box::new(prev), true, stats);
        m.next.set_nonblocking(true)?;
        m.prev.set_nonblocking(true)?;
        Ok(m)
    }
}

impl Collective for WireRing {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.n
    }

    fn reduce_scatter(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        if self.n == 1 {
            return Ok(());
        }
        let (len, n) = (data.len(), self.n);
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s) % n;
            let recv_idx = (self.rank + n - s - 1) % n;
            let src = &data[chunk_range(len, n, send_idx)];
            self.frame.clear();
            encode_collective_into(COLLECTIVE_SCATTER, send_idx as u32, src, &mut self.frame);
            self.stats.record_push(4 * src.len());
            duplex_step(
                &self.stats,
                self.nonblocking,
                &mut [
                    LinkIo {
                        link: self.next.as_mut(),
                        send: Some(&self.frame),
                        recv: None,
                    },
                    LinkIo {
                        link: self.prev.as_mut(),
                        send: None,
                        recv: Some(&mut self.rbuf),
                    },
                ],
            )?;
            let frame = expect_chunk(&self.rbuf, COLLECTIVE_SCATTER, recv_idx)?;
            let dst = &mut data[chunk_range(len, n, recv_idx)];
            self.scratch.clear();
            self.scratch.resize(dst.len(), 0.0);
            frame.read_f32_into(&mut self.scratch)?;
            kernel::add_assign(dst, &self.scratch);
        }
        Ok(())
    }

    fn all_gather(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        if self.n == 1 {
            return Ok(());
        }
        let (len, n) = (data.len(), self.n);
        for s in 0..n - 1 {
            let send_idx = (self.rank + 1 + n - s) % n;
            let recv_idx = (self.rank + n - s) % n;
            let src = &data[chunk_range(len, n, send_idx)];
            self.frame.clear();
            encode_collective_into(COLLECTIVE_GATHER, send_idx as u32, src, &mut self.frame);
            self.stats.record_push(4 * src.len());
            duplex_step(
                &self.stats,
                self.nonblocking,
                &mut [
                    LinkIo {
                        link: self.next.as_mut(),
                        send: Some(&self.frame),
                        recv: None,
                    },
                    LinkIo {
                        link: self.prev.as_mut(),
                        send: None,
                        recv: Some(&mut self.rbuf),
                    },
                ],
            )?;
            let frame = expect_chunk(&self.rbuf, COLLECTIVE_GATHER, recv_idx)?;
            // Gather copies bytes verbatim: decode straight into place.
            frame.read_f32_into(&mut data[chunk_range(len, n, recv_idx)])?;
        }
        Ok(())
    }

    fn allreduce_mean(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        if self.n == 1 {
            return Ok(());
        }
        self.reduce_scatter(data)?;
        self.all_gather(data)?;
        kernel::scale(data, 1.0 / self.n as f32);
        self.stats.record_collective(self.rank, self.n, {
            let len = data.len() as u64;
            2 * (self.n as u64 - 1) * (4 * len) / self.n as u64
        });
        Ok(())
    }

    fn neighbor_exchange(
        &mut self,
        send: &[u8],
        from_prev: &mut Vec<u8>,
        from_next: &mut Vec<u8>,
    ) -> Result<(), NetError> {
        from_prev.clear();
        from_next.clear();
        if self.n == 1 {
            from_prev.extend_from_slice(send);
            from_next.extend_from_slice(send);
            return Ok(());
        }
        self.frame.clear();
        encode_collective_bytes_into(COLLECTIVE_EXCHANGE, self.rank as u32, send, &mut self.frame);
        self.frame2.clear();
        self.frame2.extend_from_slice(&self.frame);
        self.stats.record_push(send.len());
        self.stats.record_push(send.len());
        // Both links are bidirectional: send to the successor on `next`
        // and to the predecessor back along `prev`, then collect both.
        duplex_step(
            &self.stats,
            self.nonblocking,
            &mut [
                LinkIo {
                    link: self.next.as_mut(),
                    send: Some(&self.frame),
                    recv: Some(&mut self.rbuf2),
                },
                LinkIo {
                    link: self.prev.as_mut(),
                    send: Some(&self.frame2),
                    recv: Some(&mut self.rbuf),
                },
            ],
        )?;
        let prev_rank = (self.rank + self.n - 1) % self.n;
        let next_rank = (self.rank + 1) % self.n;
        let f = expect_chunk(&self.rbuf, COLLECTIVE_EXCHANGE, prev_rank)?;
        from_prev.extend_from_slice(f.bytes());
        let f = expect_chunk(&self.rbuf2, COLLECTIVE_EXCHANGE, next_rank)?;
        from_next.extend_from_slice(f.bytes());
        self.stats
            .record_collective(self.rank, self.n, 2 * send.len() as u64);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// tree reduce-broadcast over Transport
// ---------------------------------------------------------------------------

/// A binary-heap-shaped tree collective (`parent(r) = (r−1)/2`, root 0)
/// over [`Transport`] links. The reduce phase forwards *raw per-rank
/// vectors* to the root, which applies the same ring-ordered sum as the
/// ring backends — so results stay bit-identical — then broadcasts the
/// sum back down. Compared to the ring this costs `(N−1)·L` ingest at
/// the root but only `2·⌈log₂N⌉` latency hops, which wins for small
/// vectors on high-latency links (see the `simtime` allreduce model).
pub struct WireTree {
    rank: usize,
    n: usize,
    /// Link toward `(rank − 1) / 2`; `None` at the root.
    parent: Option<Box<dyn Transport>>,
    /// Links to children `2·rank + 1` and `2·rank + 2` (when `< n`),
    /// ordered by child rank.
    children: Vec<Box<dyn Transport>>,
    stats: Arc<TrafficStats>,
    frame: Vec<u8>,
    rbuf: Vec<u8>,
    /// Root-only: the per-rank vectors of the current reduce.
    gathered: Vec<Vec<f32>>,
    scratch: Vec<f32>,
}

/// Ranks of `rank`'s children in an `n`-member heap tree.
fn tree_children(rank: usize, n: usize) -> Vec<usize> {
    [2 * rank + 1, 2 * rank + 2]
        .into_iter()
        .filter(|&c| c < n)
        .collect()
}

/// Number of ranks in the subtree rooted at `rank`.
fn subtree_size(rank: usize, n: usize) -> usize {
    if rank >= n {
        return 0;
    }
    1 + subtree_size(2 * rank + 1, n) + subtree_size(2 * rank + 2, n)
}

impl WireTree {
    fn new(
        rank: usize,
        n: usize,
        parent: Option<Box<dyn Transport>>,
        children: Vec<Box<dyn Transport>>,
        stats: Arc<TrafficStats>,
    ) -> Self {
        Self {
            rank,
            n,
            parent,
            children,
            stats,
            frame: Vec::new(),
            rbuf: Vec::new(),
            gathered: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Build an `n`-member tree over in-process loopback transports.
    pub fn loopback(n: usize) -> (Vec<WireTree>, Arc<TrafficStats>) {
        assert!(n > 0, "a tree needs at least one member");
        let stats = Arc::new(TrafficStats::new());
        // Edge r (for r in 1..n) connects rank r to its parent.
        let mut up: Vec<Option<Box<dyn Transport>>> = (0..n).map(|_| None).collect();
        let mut down: Vec<Vec<(usize, Box<dyn Transport>)>> = (0..n).map(|_| Vec::new()).collect();
        for r in 1..n {
            let (child_side, parent_side) = loopback_pair();
            up[r] = Some(Box::new(child_side));
            down[(r - 1) / 2].push((r, Box::new(parent_side)));
        }
        let members = (0..n)
            .map(|rank| {
                let mut kids = std::mem::take(&mut down[rank]);
                kids.sort_by_key(|(r, _)| *r);
                let mut m = WireTree::new(
                    rank,
                    n,
                    up[rank].take(),
                    kids.into_iter().map(|(_, t)| t).collect(),
                    Arc::clone(&stats),
                );
                if let Some(p) = m.parent.as_mut() {
                    p.set_recv_timeout(Some(STEP_TIMEOUT)).expect("timeout");
                }
                for c in m.children.iter_mut() {
                    c.set_recv_timeout(Some(STEP_TIMEOUT)).expect("timeout");
                }
                m
            })
            .collect();
        (members, stats)
    }

    /// Build an `n`-member tree over localhost TCP, all endpoints in this
    /// process. Children dial parents; hellos label the links.
    pub fn tcp(n: usize) -> Result<(Vec<WireTree>, Arc<TrafficStats>), NetError> {
        assert!(n > 0, "a tree needs at least one member");
        let stats = Arc::new(TrafficStats::new());
        let cfg = NetConfig::default();
        let mut acceptors = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let (acc, addr) = TcpAcceptor::bind("127.0.0.1:0", cfg.clone())?;
            acceptors.push(acc);
            addrs.push(addr);
        }
        let mut parents: Vec<Option<Box<dyn Transport>>> = (0..n).map(|_| None).collect();
        for r in 1..n {
            let mut t = TcpTransport::connect(addrs[(r - 1) / 2], &cfg)?;
            send_hello(&mut t, r, &stats)?;
            parents[r] = Some(Box::new(t));
        }
        let mut members = Vec::with_capacity(n);
        for (rank, parent) in parents.iter_mut().enumerate() {
            let expected = tree_children(rank, n);
            let mut kids: Vec<(usize, Box<dyn Transport>)> = Vec::with_capacity(expected.len());
            for _ in &expected {
                let mut link = acceptors[rank].accept(STEP_TIMEOUT)?;
                let hello = recv_hello(&mut link, &stats)?;
                if !expected.contains(&hello) {
                    return Err(NetError::Decode(format!(
                        "tree wiring error: rank {rank} accepted a link from rank {hello}, \
                         want one of {expected:?}"
                    )));
                }
                kids.push((hello, Box::new(link)));
            }
            kids.sort_by_key(|(r, _)| *r);
            members.push(WireTree::new(
                rank,
                n,
                parent.take(),
                kids.into_iter().map(|(_, t)| t).collect(),
                Arc::clone(&stats),
            ));
        }
        Ok((members, stats))
    }

    /// Join a multi-process tree as `rank`: bind `peers[rank]`, dial the
    /// parent, accept the children. Every process must list the same
    /// `peers` in the same order.
    pub fn connect(
        rank: usize,
        peers: &[String],
        cfg: &NetConfig,
        stats: Arc<TrafficStats>,
    ) -> Result<WireTree, NetError> {
        let n = peers.len();
        assert!(rank < n, "rank {rank} outside peer list of {n}");
        let expected = tree_children(rank, n);
        let acceptor = if expected.is_empty() {
            None
        } else {
            Some(TcpAcceptor::bind(peers[rank].as_str(), cfg.clone())?.0)
        };
        let parent = if rank == 0 {
            None
        } else {
            let mut t = TcpTransport::connect(peers[(rank - 1) / 2].as_str(), cfg)?;
            send_hello(&mut t, rank, &stats)?;
            Some(Box::new(t) as Box<dyn Transport>)
        };
        let mut kids: Vec<(usize, Box<dyn Transport>)> = Vec::with_capacity(expected.len());
        if let Some(acc) = &acceptor {
            for _ in &expected {
                let mut link = acc.accept(STEP_TIMEOUT)?;
                let hello = recv_hello(&mut link, &stats)?;
                if !expected.contains(&hello) {
                    return Err(NetError::Decode(format!(
                        "tree wiring error: rank {rank} accepted a link from rank {hello}, \
                         want one of {expected:?}"
                    )));
                }
                kids.push((hello, Box::new(link)));
            }
        }
        kids.sort_by_key(|(r, _)| *r);
        Ok(WireTree::new(
            rank,
            n,
            parent,
            kids.into_iter().map(|(_, t)| t).collect(),
            Arc::clone(&stats),
        ))
    }

    /// Tree sum: gather raw per-rank vectors to the root, apply the
    /// ring-ordered fold there, broadcast the sum; on return every
    /// member's `data` holds the full sum (no mean). Blocking I/O is
    /// safe here: each phase's communication graph is a DAG.
    fn tree_reduce(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        if self.n == 1 {
            return Ok(());
        }
        let len = data.len();
        // Up phase: forward every subtree vector (tagged by source rank).
        if self.rank == 0 {
            self.gathered.clear();
            self.gathered.resize(self.n, Vec::new());
        } else {
            self.frame.clear();
            encode_collective_into(COLLECTIVE_TREE_UP, self.rank as u32, data, &mut self.frame);
            self.stats.record_push(4 * len);
            let parent = self.parent.as_mut().expect("non-root has a parent");
            send_recorded(parent.as_mut(), &self.frame, &self.stats)?;
        }
        for ci in 0..self.children.len() {
            let child_rank = tree_children(self.rank, self.n)[ci];
            for _ in 0..subtree_size(child_rank, self.n) {
                recv_recorded(self.children[ci].as_mut(), &mut self.rbuf, &self.stats)?;
                let frame = decode_collective(&self.rbuf)?;
                if frame.phase != COLLECTIVE_TREE_UP {
                    return Err(NetError::Decode(format!(
                        "tree reduce expected an up frame, got phase {}",
                        frame.phase
                    )));
                }
                let src = frame.index as usize;
                if self.rank == 0 {
                    if src == 0 || src >= self.n {
                        return Err(NetError::Decode(format!(
                            "tree reduce saw source rank {src} of {}",
                            self.n
                        )));
                    }
                    let slot = &mut self.gathered[src];
                    slot.clear();
                    slot.resize(frame.len(), 0.0);
                    frame.read_f32_into(slot)?;
                } else {
                    // Forward verbatim: re-sending the received body
                    // keeps the payload bits untouched.
                    self.stats.record_push(4 * frame.len());
                    let parent = self.parent.as_mut().expect("non-root has a parent");
                    send_recorded(parent.as_mut(), &self.rbuf, &self.stats)?;
                }
            }
        }
        // Root: ring-ordered fold (the reduction-order contract).
        if self.rank == 0 {
            self.scratch.clear();
            self.scratch.extend_from_slice(data);
            for src in 1..self.n {
                if self.gathered[src].len() != len {
                    return Err(NetError::Decode(format!(
                        "tree members disagree on length: rank {src} sent {}, root has {len}",
                        self.gathered[src].len()
                    )));
                }
            }
            for c in 0..self.n {
                let range = chunk_range(len, self.n, c);
                let first = (c) % self.n;
                {
                    let (dst, src): (&mut [f32], &[f32]) = if first == 0 {
                        (&mut data[range.clone()], &self.scratch[range.clone()])
                    } else {
                        (
                            &mut data[range.clone()],
                            &self.gathered[first][range.clone()],
                        )
                    };
                    dst.copy_from_slice(src);
                }
                for j in 1..self.n {
                    let src_rank = (c + j) % self.n;
                    let src: &[f32] = if src_rank == 0 {
                        &self.scratch[range.clone()]
                    } else {
                        &self.gathered[src_rank][range.clone()]
                    };
                    kernel::add_assign(&mut data[range.clone()], src);
                }
            }
        }
        // Down phase: broadcast the sum along the tree.
        if self.rank == 0 {
            self.frame.clear();
            encode_collective_into(COLLECTIVE_TREE_DOWN, 0, data, &mut self.frame);
            for ci in 0..self.children.len() {
                self.stats.record_push(4 * len);
                send_recorded(self.children[ci].as_mut(), &self.frame, &self.stats)?;
            }
        } else {
            let parent = self.parent.as_mut().expect("non-root has a parent");
            recv_recorded(parent.as_mut(), &mut self.rbuf, &self.stats)?;
            let frame = expect_chunk(&self.rbuf, COLLECTIVE_TREE_DOWN, 0)?;
            frame.read_f32_into(data)?;
            for ci in 0..self.children.len() {
                self.stats.record_push(4 * len);
                // Forward the received frame verbatim.
                let buf = self.rbuf.clone();
                send_recorded(self.children[ci].as_mut(), &buf, &self.stats)?;
            }
        }
        Ok(())
    }
}

impl Collective for WireTree {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.n
    }

    /// Tree reduce leaves *every* chunk fully reduced on every member —
    /// a superset of the reduce-scatter contract.
    fn reduce_scatter(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        self.tree_reduce(data)
    }

    /// Gather the owned chunks to the root, reassemble, broadcast.
    fn all_gather(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        if self.n == 1 {
            return Ok(());
        }
        let len = data.len();
        let own_chunk = (self.rank + 1) % self.n;
        if self.rank == 0 {
            self.gathered.clear();
            self.gathered.resize(self.n, Vec::new());
        } else {
            let src = &data[chunk_range(len, self.n, own_chunk)];
            self.frame.clear();
            encode_collective_into(COLLECTIVE_TREE_UP, own_chunk as u32, src, &mut self.frame);
            self.stats.record_push(4 * src.len());
            let parent = self.parent.as_mut().expect("non-root has a parent");
            send_recorded(parent.as_mut(), &self.frame, &self.stats)?;
        }
        for ci in 0..self.children.len() {
            let child_rank = tree_children(self.rank, self.n)[ci];
            for _ in 0..subtree_size(child_rank, self.n) {
                recv_recorded(self.children[ci].as_mut(), &mut self.rbuf, &self.stats)?;
                let frame = decode_collective(&self.rbuf)?;
                if frame.phase != COLLECTIVE_TREE_UP {
                    return Err(NetError::Decode(format!(
                        "tree gather expected an up frame, got phase {}",
                        frame.phase
                    )));
                }
                if self.rank == 0 {
                    let chunk = frame.index as usize;
                    if chunk >= self.n {
                        return Err(NetError::Decode(format!(
                            "tree gather saw chunk {chunk} of {}",
                            self.n
                        )));
                    }
                    frame.read_f32_into(&mut data[chunk_range(len, self.n, chunk)])?;
                } else {
                    self.stats.record_push(4 * frame.len());
                    let parent = self.parent.as_mut().expect("non-root has a parent");
                    send_recorded(parent.as_mut(), &self.rbuf, &self.stats)?;
                }
            }
        }
        // Root's own chunk was already in place; broadcast the assembly.
        if self.rank == 0 {
            self.frame.clear();
            encode_collective_into(COLLECTIVE_TREE_DOWN, 0, data, &mut self.frame);
            for ci in 0..self.children.len() {
                self.stats.record_push(4 * len);
                send_recorded(self.children[ci].as_mut(), &self.frame, &self.stats)?;
            }
        } else {
            let parent = self.parent.as_mut().expect("non-root has a parent");
            recv_recorded(parent.as_mut(), &mut self.rbuf, &self.stats)?;
            let frame = expect_chunk(&self.rbuf, COLLECTIVE_TREE_DOWN, 0)?;
            frame.read_f32_into(data)?;
            for ci in 0..self.children.len() {
                self.stats.record_push(4 * len);
                let buf = self.rbuf.clone();
                send_recorded(self.children[ci].as_mut(), &buf, &self.stats)?;
            }
        }
        Ok(())
    }

    fn allreduce_mean(&mut self, data: &mut [f32]) -> Result<(), NetError> {
        if self.n == 1 {
            return Ok(());
        }
        self.tree_reduce(data)?;
        // Same elementwise scale as the ring backends, applied locally
        // to the identical sum bits — so the mean is identical too.
        kernel::scale(data, 1.0 / self.n as f32);
        self.stats
            .record_collective(self.rank, self.n, 4 * data.len() as u64);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// PsBackend adapters
// ---------------------------------------------------------------------------

/// The per-worker collective handles of a server-less deployment, plus
/// the shared traffic counters the trainer reports from.
pub struct CollectiveGroup {
    pub members: Vec<Box<dyn Collective>>,
    pub stats: Arc<TrafficStats>,
}

/// Which substrate a collective group runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireMode {
    /// Crossbeam channels inside the process (ring only).
    Memory,
    /// Loopback [`Transport`] queues — real frames, no sockets.
    Loopback,
    /// Localhost TCP sockets.
    Tcp,
}

/// Build an `n`-member ring group on `mode`.
pub fn build_ring_group(n: usize, mode: WireMode) -> Result<CollectiveGroup, NetError> {
    Ok(match mode {
        WireMode::Memory => {
            let (members, stats) = ring_group(n);
            CollectiveGroup {
                members: members
                    .into_iter()
                    .map(|m| Box::new(m) as Box<dyn Collective>)
                    .collect(),
                stats,
            }
        }
        WireMode::Loopback => {
            let (members, stats) = WireRing::loopback(n);
            CollectiveGroup {
                members: members
                    .into_iter()
                    .map(|m| Box::new(m) as Box<dyn Collective>)
                    .collect(),
                stats,
            }
        }
        WireMode::Tcp => {
            let (members, stats) = WireRing::tcp(n)?;
            CollectiveGroup {
                members: members
                    .into_iter()
                    .map(|m| Box::new(m) as Box<dyn Collective>)
                    .collect(),
                stats,
            }
        }
    })
}

/// Build an `n`-member tree group on `mode` ([`WireMode::Memory`] falls
/// back to loopback — the tree always runs on transports).
pub fn build_tree_group(n: usize, mode: WireMode) -> Result<CollectiveGroup, NetError> {
    let (members, stats) = match mode {
        WireMode::Memory | WireMode::Loopback => WireTree::loopback(n),
        WireMode::Tcp => WireTree::tcp(n)?,
    };
    Ok(CollectiveGroup {
        members: members
            .into_iter()
            .map(|m| Box::new(m) as Box<dyn Collective>)
            .collect(),
        stats,
    })
}

/// A [`ParamClient`] for server-less topologies: workers synchronize
/// through their [`Collective`] and must never touch the (nonexistent)
/// parameter server, so every data-plane call errors loudly instead of
/// silently doing nothing.
pub struct NullClient {
    pool: BufferPool,
}

impl NullClient {
    pub fn new() -> Self {
        Self {
            pool: BufferPool::new(),
        }
    }
}

impl Default for NullClient {
    fn default() -> Self {
        Self::new()
    }
}

fn no_server<T>() -> Result<T, NetError> {
    Err(NetError::Io(
        "server-less topology: this run synchronizes through a collective, \
         there is no parameter server to talk to"
            .into(),
    ))
}

impl ParamClient for NullClient {
    fn push(&self, _worker: usize, _key: Key, _payload: Compressed) -> Result<(), NetError> {
        no_server()
    }

    fn pull_async(&self, _key: Key, _min_version: u64) -> Result<PendingPull, NetError> {
        no_server()
    }

    fn set_lr(&self, _lr: f32) -> Result<(), NetError> {
        // Server-less runs apply the learning-rate schedule worker-side;
        // accepting the broadcast keeps the trainer's epoch loop uniform.
        Ok(())
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

/// Shared plumbing of the server-less backends: a lazily-surrendered
/// [`CollectiveGroup`] plus its stats.
struct CollectiveCore {
    group: Mutex<Option<CollectiveGroup>>,
    stats: Arc<TrafficStats>,
}

impl CollectiveCore {
    fn new(group: CollectiveGroup) -> Self {
        let stats = Arc::clone(&group.stats);
        Self {
            group: Mutex::new(Some(group)),
            stats,
        }
    }

    fn take(&self, n: usize) -> Option<CollectiveGroup> {
        let g = self.group.lock().unwrap().take()?;
        assert_eq!(
            g.members.len(),
            n,
            "collective backend built for {} members, trainer wants {n}",
            g.members.len()
        );
        Some(g)
    }
}

macro_rules! collective_backend_impl {
    () => {
        fn client(&self) -> Result<Box<dyn ParamClient>, NetError> {
            Ok(Box::new(NullClient::new()))
        }

        fn set_lr(&self, _lr: f32) -> Result<(), NetError> {
            Ok(())
        }

        fn snapshot(&self) -> Result<(Vec<Vec<f32>>, Vec<u64>), NetError> {
            no_server()
        }

        fn bytes_pushed(&self) -> u64 {
            self.core.stats.bytes_pushed()
        }

        fn bytes_pulled(&self) -> u64 {
            self.core.stats.bytes_pulled()
        }

        fn take_collectives(&self, n: usize) -> Option<CollectiveGroup> {
            self.core.take(n)
        }

        fn shutdown(self: Box<Self>) {}
    };
}

/// A server-less [`PsBackend`]: workers synchronize with a ring or tree
/// all-reduce instead of pushing to a parameter server. `client()` hands
/// out [`NullClient`]s; the trainer obtains the per-worker collectives
/// through [`PsBackend::take_collectives`].
pub struct AllReduceBackend {
    core: CollectiveCore,
}

impl AllReduceBackend {
    /// A ring all-reduce deployment for `n` workers on `mode`.
    pub fn ring(n: usize, mode: WireMode) -> Result<Self, NetError> {
        Ok(Self {
            core: CollectiveCore::new(build_ring_group(n, mode)?),
        })
    }

    /// A tree reduce-broadcast deployment for `n` workers on `mode`.
    pub fn tree(n: usize, mode: WireMode) -> Result<Self, NetError> {
        Ok(Self {
            core: CollectiveCore::new(build_tree_group(n, mode)?),
        })
    }

    /// The group's traffic counters (live even after the members are
    /// taken by the trainer).
    pub fn stats(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.core.stats)
    }
}

impl PsBackend for AllReduceBackend {
    collective_backend_impl!();
}

/// A server-less [`PsBackend`] for decentralized compressed training
/// (Tang et al.): workers gossip codec-compressed model differences with
/// their ring neighbors via [`Collective::neighbor_exchange`]. Always a
/// ring — neighbor exchange has no tree analogue.
pub struct DecentralizedBackend {
    core: CollectiveCore,
}

impl DecentralizedBackend {
    /// A decentralized ring for `n` workers on `mode`.
    pub fn ring(n: usize, mode: WireMode) -> Result<Self, NetError> {
        Ok(Self {
            core: CollectiveCore::new(build_ring_group(n, mode)?),
        })
    }

    pub fn stats(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.core.stats)
    }
}

impl PsBackend for DecentralizedBackend {
    collective_backend_impl!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::ring_ordered_sum;

    fn run_group(group: CollectiveGroup, inputs: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        std::thread::scope(|s| {
            let handles: Vec<_> = group
                .members
                .into_iter()
                .zip(inputs)
                .map(|(mut m, mut v)| {
                    s.spawn(move || {
                        m.allreduce_mean(&mut v).expect("collective failed");
                        v
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    fn adversarial_inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| {
                        let sign = if (r + i) % 2 == 0 { 1.0 } else { -1.0 };
                        sign * (1.0 + r as f32 * 1e-3) * (10.0f32).powi((i % 7) as i32 - 3)
                    })
                    .collect()
            })
            .collect()
    }

    fn reference_mean(inputs: &[Vec<f32>]) -> Vec<f32> {
        let mut expect = ring_ordered_sum(inputs);
        kernel::scale(&mut expect, 1.0 / inputs.len() as f32);
        expect
    }

    #[test]
    fn every_backend_matches_the_order_contract_bit_for_bit() {
        for n in [2usize, 3, 4, 5] {
            for len in [8usize, 33, 130] {
                let inputs = adversarial_inputs(n, len);
                let expect = reference_mean(&inputs);
                for (label, group) in [
                    (
                        "memory ring",
                        build_ring_group(n, WireMode::Memory).unwrap(),
                    ),
                    (
                        "loopback ring",
                        build_ring_group(n, WireMode::Loopback).unwrap(),
                    ),
                    ("tcp ring", build_ring_group(n, WireMode::Tcp).unwrap()),
                    (
                        "loopback tree",
                        build_tree_group(n, WireMode::Loopback).unwrap(),
                    ),
                    ("tcp tree", build_tree_group(n, WireMode::Tcp).unwrap()),
                ] {
                    let out = run_group(group, inputs.clone());
                    for (rank, o) in out.iter().enumerate() {
                        for (i, (a, b)) in o.iter().zip(&expect).enumerate() {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "{label}: n={n} len={len} rank={rank} i={i}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wire_ring_traffic_is_bandwidth_optimal_and_balanced() {
        let n = 4usize;
        let len = 1024usize;
        let rounds = 3usize;
        let (members, stats) = WireRing::tcp(n).unwrap();
        std::thread::scope(|s| {
            for mut m in members {
                s.spawn(move || {
                    let mut v = vec![1.0f32; len];
                    for _ in 0..rounds {
                        m.allreduce_mean(&mut v).unwrap();
                    }
                });
            }
        });
        // Message layer: every member pays 2(n−1)/n of the vector per
        // round, exactly.
        let expect = (rounds * n * 2 * (n - 1) * (4 * len) / n) as u64;
        assert_eq!(stats.bytes_pushed(), expect);
        // Frame layer: every frame sent was received — byte accounting
        // balances exactly (hello frames included).
        assert!(stats.bytes_sent() > expect);
        assert_eq!(stats.bytes_sent(), stats.bytes_received());
    }

    #[test]
    fn wire_ring_neighbor_exchange_works_over_tcp() {
        let n = 4usize;
        let (members, stats) = WireRing::tcp(n).unwrap();
        let got: Vec<(usize, Vec<u8>, Vec<u8>)> = std::thread::scope(|s| {
            let handles: Vec<_> = members
                .into_iter()
                .map(|mut m| {
                    s.spawn(move || {
                        let send = vec![m.rank() as u8; 8];
                        let mut prev = Vec::new();
                        let mut next = Vec::new();
                        m.neighbor_exchange(&send, &mut prev, &mut next).unwrap();
                        (Collective::rank(&m), prev, next)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, prev, next) in got {
            assert_eq!(prev, vec![((rank + n - 1) % n) as u8; 8]);
            assert_eq!(next, vec![((rank + 1) % n) as u8; 8]);
        }
        assert_eq!(stats.bytes_sent(), stats.bytes_received());
    }

    #[test]
    fn backends_surrender_their_group_once() {
        let backend = AllReduceBackend::ring(3, WireMode::Memory).unwrap();
        let g = backend.take_collectives(3).expect("first take");
        assert_eq!(g.members.len(), 3);
        assert!(backend.take_collectives(3).is_none(), "second take");
        let c = backend.client().unwrap();
        assert!(c.push(0, 0, Compressed::Raw(vec![1.0])).is_err());
        assert!(c.set_lr(0.1).is_ok());
        Box::new(backend).shutdown();
    }

    #[test]
    fn null_client_pool_is_usable() {
        let c = NullClient::new();
        let buf = c.pool().take_f32();
        c.pool().put_f32(buf);
        assert!(ParamClient::pull(&c, 0, 0).is_err());
    }
}
