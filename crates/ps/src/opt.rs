//! Server-side optimizer layer: how one aggregate round turns the summed
//! gradient into the next weight snapshot.
//!
//! The paper's update rule (eq. 10) is plain SGD — `W ← W − η/N · Σg` —
//! and every reproduction experiment uses [`PlainSgd`]. [`HeavyBall`] and
//! [`Nesterov`] are extension optimizers for the benchmark harness; they
//! plug in behind the same trait so adding another server-side rule never
//! touches the aggregation loop.

use cdsgd_tensor::kernel;
use std::sync::Arc;

/// The per-key server update rule. One instance per key (state such as a
/// momentum buffer is key-local), driven once per completed aggregate
/// round by the server loop.
pub trait ServerOpt: Send {
    /// Build the next weight snapshot from the current `weights` and the
    /// aggregated (summed, not averaged) gradient `acc`. `step` is the
    /// effective rate `η / N`, so plain SGD is `w − step · g`.
    ///
    /// Returns a fresh shared snapshot: the server replaces the key's
    /// `Arc` wholesale so outstanding pulls keep their old version.
    fn apply(&mut self, weights: &[f32], acc: &[f32], step: f32) -> Arc<[f32]>;

    /// Human-readable optimizer name (run labels / logs).
    fn name(&self) -> &'static str;

    /// Serialize the optimizer's mutable state for a durable checkpoint.
    /// Stateless optimizers return an empty vec (the default).
    fn export_state(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Restore state previously produced by [`ServerOpt::export_state`].
    /// Stateless optimizers ignore it (the default).
    fn import_state(&mut self, _state: &[f32]) {}
}

/// Plain SGD — the paper's eq. 10, stateless.
#[derive(Debug, Default, Clone, Copy)]
pub struct PlainSgd;

impl ServerOpt for PlainSgd {
    fn apply(&mut self, weights: &[f32], acc: &[f32], step: f32) -> Arc<[f32]> {
        let mut next = vec![0.0; weights.len()];
        kernel::sgd_step(&mut next, weights, acc, step);
        next.into()
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Classic heavy-ball (Polyak) momentum on the aggregated gradient:
/// `v ← μv + g`, `w ← w − step · v`.
#[derive(Debug, Default, Clone)]
pub struct HeavyBall {
    momentum: f32,
    velocity: Vec<f32>,
}

impl HeavyBall {
    /// Heavy-ball with momentum factor `momentum` (typically 0.9).
    pub fn new(momentum: f32) -> Self {
        Self {
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl ServerOpt for HeavyBall {
    fn apply(&mut self, weights: &[f32], acc: &[f32], step: f32) -> Arc<[f32]> {
        if self.velocity.len() != weights.len() {
            self.velocity = vec![0.0; weights.len()];
        }
        kernel::decay_add(&mut self.velocity, self.momentum, acc);
        let mut next = vec![0.0; weights.len()];
        kernel::sgd_step(&mut next, weights, &self.velocity, step);
        next.into()
    }

    fn name(&self) -> &'static str {
        "heavy-ball"
    }

    fn export_state(&self) -> Vec<f32> {
        self.velocity.clone()
    }

    fn import_state(&mut self, state: &[f32]) {
        self.velocity = state.to_vec();
    }
}

/// Nesterov accelerated gradient in the standard deep-learning form
/// (as in PyTorch's `SGD(nesterov=True)`): `v ← μv + g`, then the applied
/// direction is the *look-ahead* `g + μv`, so the step anticipates where
/// the velocity is taking the weights.
#[derive(Debug, Default, Clone)]
pub struct Nesterov {
    momentum: f32,
    velocity: Vec<f32>,
}

impl Nesterov {
    /// Nesterov momentum with factor `momentum` (typically 0.9).
    pub fn new(momentum: f32) -> Self {
        Self {
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl ServerOpt for Nesterov {
    fn apply(&mut self, weights: &[f32], acc: &[f32], step: f32) -> Arc<[f32]> {
        if self.velocity.len() != weights.len() {
            self.velocity = vec![0.0; weights.len()];
        }
        kernel::decay_add(&mut self.velocity, self.momentum, acc);
        let mut next = vec![0.0; weights.len()];
        kernel::nesterov_step(&mut next, weights, acc, &self.velocity, step, self.momentum);
        next.into()
    }

    fn name(&self) -> &'static str {
        "nesterov"
    }

    fn export_state(&self) -> Vec<f32> {
        self.velocity.clone()
    }

    fn import_state(&mut self, state: &[f32]) {
        self.velocity = state.to_vec();
    }
}

/// A copyable optimizer *choice*, carried in [`crate::ServerConfig`]
/// (which stays `Copy`) and instantiated per key when the server starts —
/// the same spec-vs-instance split as `cd_sgd::Codec`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum ServerOptKind {
    /// Plain SGD (the paper's rule, and the default).
    #[default]
    PlainSgd,
    /// Heavy-ball momentum.
    HeavyBall {
        /// Momentum factor μ.
        momentum: f32,
    },
    /// Nesterov momentum.
    Nesterov {
        /// Momentum factor μ.
        momentum: f32,
    },
}

impl ServerOptKind {
    /// Instantiate the optimizer for one key.
    pub fn build(&self) -> Box<dyn ServerOpt> {
        match self {
            ServerOptKind::PlainSgd => Box::new(PlainSgd),
            ServerOptKind::HeavyBall { momentum } => Box::new(HeavyBall::new(*momentum)),
            ServerOptKind::Nesterov { momentum } => Box::new(Nesterov::new(*momentum)),
        }
    }

    /// Short name for run labels.
    pub fn name(&self) -> &'static str {
        match self {
            ServerOptKind::PlainSgd => "sgd",
            ServerOptKind::HeavyBall { .. } => "heavy-ball",
            ServerOptKind::Nesterov { .. } => "nesterov",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_matches_eq10() {
        let mut opt = PlainSgd;
        let w = opt.apply(&[1.0, 2.0], &[10.0, -10.0], 0.1);
        assert_eq!(*w, [0.0, 3.0]);
    }

    #[test]
    fn heavy_ball_accumulates_velocity() {
        let mut opt = HeavyBall::new(0.9);
        // v=1, w=-1; then v=1.9, w=-2.9 (the server.rs momentum test).
        let w1 = opt.apply(&[0.0], &[1.0], 1.0);
        assert!((w1[0] + 1.0).abs() < 1e-6);
        let w2 = opt.apply(&w1, &[1.0], 1.0);
        assert!((w2[0] + 2.9).abs() < 1e-6);
    }

    #[test]
    fn nesterov_takes_the_lookahead_step() {
        let mut opt = Nesterov::new(0.9);
        // v=1, d = 1 + 0.9·1 = 1.9, w = -1.9;
        // then v=1.9, d = 1 + 0.9·1.9 = 2.71, w = -4.61.
        let w1 = opt.apply(&[0.0], &[1.0], 1.0);
        assert!((w1[0] + 1.9).abs() < 1e-6);
        let w2 = opt.apply(&w1, &[1.0], 1.0);
        assert!((w2[0] + 4.61).abs() < 1e-5);
    }

    #[test]
    fn zero_momentum_heavy_ball_degenerates_to_sgd() {
        let mut hb = HeavyBall::new(0.0);
        let mut sgd = PlainSgd;
        let w = [0.5f32, -0.25, 3.0];
        let g = [1.0f32, 2.0, -4.0];
        assert_eq!(hb.apply(&w, &g, 0.1), sgd.apply(&w, &g, 0.1));
    }

    #[test]
    fn momentum_state_round_trips_through_export() {
        let mut opt = HeavyBall::new(0.9);
        opt.apply(&[0.0, 0.0], &[1.0, -2.0], 1.0);
        let saved = opt.export_state();
        assert_eq!(saved, vec![1.0, -2.0]);

        // A fresh instance restored from the export continues identically.
        let mut fresh = HeavyBall::new(0.9);
        fresh.import_state(&saved);
        let cont = opt.apply(&[0.0, 0.0], &[1.0, 1.0], 1.0);
        let rest = fresh.apply(&[0.0, 0.0], &[1.0, 1.0], 1.0);
        assert_eq!(*cont, *rest);

        // Stateless SGD exports nothing.
        assert!(PlainSgd.export_state().is_empty());
    }

    #[test]
    fn kind_builds_and_names() {
        assert_eq!(ServerOptKind::default(), ServerOptKind::PlainSgd);
        for (kind, name) in [
            (ServerOptKind::PlainSgd, "sgd"),
            (ServerOptKind::HeavyBall { momentum: 0.9 }, "heavy-ball"),
            (ServerOptKind::Nesterov { momentum: 0.9 }, "nesterov"),
        ] {
            assert_eq!(kind.name(), name);
            assert_eq!(kind.build().name(), name);
        }
    }
}
