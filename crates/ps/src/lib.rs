//! # cdsgd-ps
//!
//! An in-process, multi-threaded parameter server with MXNet-kvstore-like
//! semantics — the substrate standing in for the paper's PS architecture
//! over InfiniBand (DESIGN.md §2).
//!
//! * One server thread owns the global weights, sharded by integer key
//!   (one key per layer parameter).
//! * Workers [`PsClient::push`] gradients — raw f32 or any
//!   [`cdsgd_compress::Compressed`] payload; the server decodes before
//!   aggregating (exactly as the paper notes: "server nodes must decode
//!   the quantified gradients into 32 bits before updating global
//!   weights").
//! * Aggregation is synchronous per key and iteration: the global update
//!   `W ← W − η/N · Σ_g decode(grad_g)` (paper eq. 10) fires once all `N`
//!   workers' pushes for that round have arrived.
//! * [`PsClient::pull`] blocks until the requested version (number of
//!   completed updates) is available, which is precisely the dependency
//!   the local-update mechanism removes from the critical path.
//! * [`TrafficStats`] counts every byte that would cross the network, so
//!   experiments can report communication volume per algorithm.
//!
//! * The [`net`] module serves the same server over real transports
//!   (in-memory loopback or TCP): [`ParamClient`] / [`PsBackend`] keep
//!   the trainer agnostic of the deployment shape, and the wire protocol
//!   is bit-deterministic, so loopback, TCP, and in-process runs produce
//!   identical weights.
//!
//! ```
//! use cdsgd_ps::{ParamServer, ServerConfig};
//! use cdsgd_compress::Compressed;
//!
//! let ps = ParamServer::start(vec![vec![0.0; 4]], ServerConfig::new(1, 0.5));
//! let client = ps.client();
//! client.push(0, 0, Compressed::Raw(vec![1.0, 2.0, 3.0, 4.0])).unwrap();
//! let w = client.pull(0, 1).unwrap(); // Arc<[f32]>: shared with every puller
//! assert_eq!(*w, [-0.5, -1.0, -1.5, -2.0]);
//! ps.shutdown();
//! ```

pub mod allreduce;
mod api;
mod client;
pub mod collective;
mod fault;
pub mod net;
pub mod opt;
pub mod recover;
mod server;
mod sharded;
mod stats;

pub use allreduce::{chunk_range, ring_group, ring_ordered_sum, RingMember};
pub use api::{InProcessBackend, ParamClient, PsBackend, RebasedClient};
pub use cdsgd_net::NetError;
pub use client::{PendingPull, PsClient};
pub use collective::{
    build_ring_group, build_tree_group, AllReduceBackend, Collective, CollectiveGroup,
    DecentralizedBackend, NullClient, WireMode, WireRing, WireTree,
};
pub use fault::{FaultyClient, WorkerFault};
pub use net::{NetCluster, PsNetServer, ReconnectingClient, RemoteClient};
pub use opt::{HeavyBall, Nesterov, PlainSgd, ServerOpt, ServerOptKind};
pub use recover::{CheckpointError, CheckpointPolicy, Durability, RestoredState, ShardCheckpoint};
pub use server::{ElasticConfig, ParamServer, ServerConfig};
pub use sharded::{partition_keys, reassemble_snapshots, ShardedClient, ShardedParamServer};
pub use stats::TrafficStats;

/// Parameter key: index of a parameter tensor (layer) in the model's
/// stable visitation order.
pub type Key = usize;
