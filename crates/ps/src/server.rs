//! The server thread: key-sharded weight store with synchronous
//! aggregation.

use crate::client::PsClient;
use crate::opt::{ServerOpt, ServerOptKind};
use crate::recover::{CheckpointTracker, Durability, ShardCheckpoint};
use crate::sharded::ShardedParamServer;
use crate::stats::TrafficStats;
use crate::Key;
use cdsgd_compress::{decompress_add, decompress_add_traced, BufferPool, CodecSpans, Compressed};
use cdsgd_net::wire::{pull_reply_frame_bytes, push_frame_bytes};
use cdsgd_net::NetError;
use cdsgd_telemetry::{Event, Op, Telemetry};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Dynamic-membership configuration (extension): when set on a
/// [`ServerConfig`], the worker set is no longer frozen at
/// `num_workers` — workers may register (`Join`) and depart (`Leave`, or
/// a heartbeat timeout) mid-training, and each aggregate round's quorum
/// is the *current* set of active workers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElasticConfig {
    /// Fewest active workers the server keeps serving with; a departure
    /// that would drop the active set below this fails the server with
    /// [`NetError::WorkerLost`] instead of silently training on too few
    /// replicas.
    pub min_quorum: usize,
    /// Declare an active worker departed when it has neither pushed nor
    /// heartbeated for this long. `None` disables liveness tracking
    /// (departures are graceful `Leave`s only) — the right setting for
    /// deterministic in-process runs.
    pub heartbeat_timeout: Option<Duration>,
}

impl ElasticConfig {
    /// Elastic membership with graceful departures only (no liveness
    /// timeout).
    ///
    /// # Panics
    /// Panics if `min_quorum == 0` — an empty quorum would let rounds
    /// "complete" with no contributors.
    pub fn new(min_quorum: usize) -> Self {
        assert!(min_quorum >= 1, "min_quorum must be at least 1");
        Self {
            min_quorum,
            heartbeat_timeout: None,
        }
    }

    /// Also force out workers silent (no push, no heartbeat) past
    /// `timeout`.
    pub fn with_heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.heartbeat_timeout = Some(timeout);
        self
    }
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Number of workers whose pushes are aggregated per round. With
    /// [`ServerConfig::elastic`] set this is only the *initial*
    /// membership (workers `0..num_workers` start active); otherwise it
    /// is the fixed quorum of every round.
    pub num_workers: usize,
    /// Global learning rate η in `W ← W − η/N · Σ grads`.
    pub global_lr: f32,
    /// Server-side update rule applied once per aggregate round. The
    /// paper's rule is plain SGD ([`ServerOptKind::PlainSgd`], the
    /// default); heavy-ball and Nesterov momentum are provided for the
    /// extension benchmarks. Instantiated per key at server start via
    /// [`ServerOptKind::build`].
    pub opt: ServerOptKind,
    /// Emulated network seconds charged per transferred byte (0 = the
    /// in-process default, effectively infinite bandwidth). The server
    /// thread sleeps `bytes × delay` while handling each push and each
    /// pull reply, emulating a single shared full-duplex-less NIC; this
    /// is what lets the *real* trainer exhibit the paper's communication
    /// pressure (see the `fig5_real` harness).
    pub delay_per_byte: f64,
    /// How long an aggregate round may stay *partial* (some workers'
    /// pushes for the round arrived, others' have not) before the server
    /// declares the missing worker lost and fails the round with
    /// [`NetError::WorkerLost`] instead of stalling every puller forever.
    /// `None` (the default) waits unboundedly — the pre-existing
    /// behaviour, and the right one for bit-identical offline runs.
    ///
    /// Delayed algorithms (OD-SGD / CD-SGD) legitimately run one round
    /// ahead, so a partial round is normal for up to one iteration time;
    /// set the deadline comfortably above the slowest expected iteration.
    pub round_deadline: Option<Duration>,
    /// Dynamic worker membership (see [`ElasticConfig`]). `None` (the
    /// default) keeps the historical fixed-membership behaviour
    /// bit-for-bit: every round aggregates exactly `num_workers` pushes.
    pub elastic: Option<ElasticConfig>,
}

impl ServerConfig {
    /// Plain-SGD config (the paper's update rule).
    pub fn new(num_workers: usize, global_lr: f32) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        Self {
            num_workers,
            global_lr,
            opt: ServerOptKind::PlainSgd,
            delay_per_byte: 0.0,
            round_deadline: None,
            elastic: None,
        }
    }

    /// Emulate a network with the given bandwidth (bytes/second) shared
    /// through the server.
    pub fn with_network_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        self.delay_per_byte = 1.0 / bytes_per_sec;
        self
    }

    /// Enable server-side heavy-ball momentum (extension). Sugar for
    /// [`ServerConfig::with_optimizer`] with [`ServerOptKind::HeavyBall`];
    /// 0 keeps plain SGD.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.opt = if momentum > 0.0 {
            ServerOptKind::HeavyBall { momentum }
        } else {
            ServerOptKind::PlainSgd
        };
        self
    }

    /// Choose the server-side update rule (see [`ServerOptKind`]).
    pub fn with_optimizer(mut self, opt: ServerOptKind) -> Self {
        self.opt = opt;
        self
    }

    /// Fail any aggregate round that stays partial longer than `deadline`
    /// with [`NetError::WorkerLost`] (see [`ServerConfig::round_deadline`]).
    pub fn with_round_deadline(mut self, deadline: Duration) -> Self {
        self.round_deadline = Some(deadline);
        self
    }

    /// Enable dynamic worker membership (see [`ElasticConfig`]).
    pub fn with_elastic(mut self, elastic: ElasticConfig) -> Self {
        self.elastic = Some(elastic);
        self
    }
}

pub(crate) enum Msg {
    Push {
        worker: usize,
        key: Key,
        payload: Compressed,
        /// Transport connection the push arrived on (0 = in-process).
        /// On an elastic server, pushes from a connection superseded by
        /// a later registration of the same worker are dropped — see
        /// the fencing note on `Members::owner`.
        conn: u64,
    },
    Pull {
        key: Key,
        min_version: u64,
        reply: Sender<Result<Arc<[f32]>, NetError>>,
    },
    SetLr(f32),
    /// Read all weights and per-key versions (test/diagnostic support).
    Snapshot {
        reply: Sender<(Vec<Vec<f32>>, Vec<u64>)>,
    },
    /// Elastic membership: admit `worker` into the active set and reply
    /// with the per-key versions at admission (the versions the joiner's
    /// first pulls must target). On a fixed-membership server this is
    /// just the version handshake — the membership table is untouched.
    Join {
        worker: usize,
        /// Transport connection the registration arrived on (0 =
        /// in-process); becomes the worker's owning connection for push
        /// fencing on an elastic server.
        conn: u64,
        reply: Sender<Vec<u64>>,
    },
    /// Elastic membership: `worker` departs gracefully. Its queued
    /// pushes still feed the rounds they were computed for; once
    /// drained it is gone and the quorum shrinks.
    Leave {
        worker: usize,
    },
    /// Elastic membership: roll back a tentative registration — the
    /// two-phase cross-shard join revoking a shard it admitted after a
    /// later shard failed. Honoured only when `conn` is the connection
    /// whose registration *promoted* the slot into the active set (see
    /// `Members::joined_by`): a cancel that trails a re-registration of
    /// an existing member is a no-op, so a rollback can never shrink the
    /// quorum below its pre-join size.
    CancelJoin {
        worker: usize,
        /// Transport connection the cancel arrived on (0 = in-process).
        conn: u64,
    },
    /// Elastic membership: liveness signal (pushes also count).
    Heartbeat {
        worker: usize,
    },
    /// Recovery: write a durable shard checkpoint of the current state
    /// now. Replies with the captured round, or `None` if the server has
    /// no checkpoint directory, the key versions are skewed (a round is
    /// mid-flight), or the write failed.
    Checkpoint {
        reply: Sender<Option<u64>>,
    },
    Shutdown,
}

/// A parked pull: the version it waits for and where to send the reply.
type WaitingPull = (u64, Sender<Result<Arc<[f32]>, NetError>>);

/// Membership state machine: `Register → Active → Draining → Gone`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MemberState {
    /// Gates round completion; its pushes are aggregated.
    Active,
    /// Departed, but queued pushes still feed the rounds they were
    /// computed for. No longer gates completion.
    Draining,
    /// Fully drained (or never joined). Slot may be re-admitted.
    Gone,
}

/// The server-side membership table. Indexed by worker id; grows on
/// `Join` of an unseen id, never shrinks (a departed worker's slot stays
/// `Gone` so ids remain stable).
struct Members {
    state: Vec<MemberState>,
    /// Last push or heartbeat per slot, for the liveness timeout.
    last_seen: Vec<Instant>,
    /// Per slot, the transport connection (`Transport::conn_id`) of the
    /// worker's most recent registration; 0 = never registered over the
    /// wire, accept pushes from anywhere. A registration *fences* the
    /// slot: a push for this worker from any other connection is a
    /// straggler from a superseded session (a link the reconnect layer
    /// abandoned, or a replaced worker's last gasp) whose unconsumed
    /// rounds the owner replays itself — aggregating the straggler too
    /// would double-count it. The in-process sentinel (conn 0) is never
    /// fenced on the push side either: it marks trusted same-process
    /// callers, not a supersedable wire session.
    owner: Vec<u64>,
    /// Per slot, the connection whose registration *promoted* it into
    /// the active set ([`NEVER_JOINED`] for the construction-time worker
    /// set). A join rollback (`Msg::CancelJoin`) is honoured only from
    /// this connection: it exactly undoes a tentative admission, while a
    /// cancel trailing a mere re-registration (a reconnect refreshing an
    /// already-active member) matches the *original* promoter and is
    /// therefore a no-op.
    joined_by: Vec<u64>,
}

/// Sentinel for `Members::joined_by`: the slot has been active since
/// construction (the initial worker set), so no registration promoted it
/// and no rollback may demote it.
const NEVER_JOINED: u64 = u64::MAX;

impl Members {
    fn new(n: usize) -> Self {
        Self {
            state: vec![MemberState::Active; n],
            last_seen: vec![Instant::now(); n],
            owner: vec![0; n],
            joined_by: vec![NEVER_JOINED; n],
        }
    }

    fn active(&self) -> usize {
        self.state
            .iter()
            .filter(|s| **s == MemberState::Active)
            .count()
    }

    fn any_active(&self) -> bool {
        self.state.contains(&MemberState::Active)
    }

    fn is_active(&self, w: usize) -> bool {
        w < self.state.len() && self.state[w] == MemberState::Active
    }

    /// Admit (or re-admit) `w` into the active set, growing the table if
    /// the id is new.
    fn admit(&mut self, w: usize, conn: u64) {
        if w >= self.state.len() {
            self.state.resize(w + 1, MemberState::Gone);
            self.last_seen.resize(w + 1, Instant::now());
            self.owner.resize(w + 1, 0);
            self.joined_by.resize(w + 1, NEVER_JOINED);
        }
        // Record the promoter only when this registration actually grew
        // the active set; a re-registration of an already-active member
        // keeps the original promoter, so its rollback is a no-op.
        if self.state[w] != MemberState::Active {
            self.joined_by[w] = conn;
        }
        self.state[w] = MemberState::Active;
        self.last_seen[w] = Instant::now();
        self.owner[w] = conn;
    }

    /// Would a push for `w` arriving on `conn` come from a connection
    /// superseded by a later registration? The in-process sentinel
    /// (`conn == 0`) is never fenced — see the note on `owner`.
    fn fenced(&self, w: usize, conn: u64) -> bool {
        conn != 0 && self.owner[w] != 0 && self.owner[w] != conn
    }

    /// First active worker silent past `timeout`, if any.
    fn timed_out(&self, timeout: Duration) -> Option<usize> {
        self.state.iter().enumerate().find_map(|(w, s)| {
            (*s == MemberState::Active && self.last_seen[w].elapsed() > timeout).then_some(w)
        })
    }

    /// Retire every draining worker whose queues are empty on all keys.
    fn sweep(&mut self, keys: &[KeyState]) {
        for w in 0..self.state.len() {
            if self.state[w] == MemberState::Draining
                && keys.iter().all(|k| k.pending[w].is_empty())
            {
                self.state[w] = MemberState::Gone;
            }
        }
    }
}

struct KeyState {
    /// Current weight snapshot. Immutable once built: every pull of this
    /// version shares the same allocation (`Arc` bump, zero copies), and
    /// the aggregate update *replaces* the Arc rather than mutating it.
    weights: Arc<[f32]>,
    /// Weights as of `version − 1`, kept so pulls can be served at an
    /// *exact* version. A worker that pushes round r and then pulls
    /// version r can race the server applying round r (its own push may
    /// complete the round), so the served version may already have moved
    /// one step ahead — never more, because the puller has not pushed
    /// round r+1 yet. Exact-version pulls keep delayed algorithms
    /// bit-deterministic and faithful to Algorithm 1.
    prev_weights: Arc<[f32]>,
    /// Reusable aggregation buffer, zeroed at the start of each round
    /// instead of reallocated.
    acc: Vec<f32>,
    /// Pending pushes, one FIFO per worker. Delayed algorithms (OD-SGD /
    /// CD-SGD) legitimately run ahead: a fast worker may push round r+1
    /// before a slow worker has pushed round r, so rounds are matched by
    /// queue position, not arrival time.
    pending: Vec<std::collections::VecDeque<Compressed>>,
    /// Number of completed aggregate updates.
    version: u64,
    /// This key's optimizer instance (owns any momentum state), built
    /// from [`ServerConfig::opt`] at server start.
    opt: Box<dyn ServerOpt>,
    /// Pulls waiting for a version that doesn't exist yet.
    waiting: Vec<WaitingPull>,
    /// When the current round first became partial (some workers' pushes
    /// arrived, others' missing). `None` while no round is in flight.
    /// Drives [`ServerConfig::round_deadline`].
    partial_since: Option<Instant>,
}

/// Handle to a running parameter server. Dropping without calling
/// [`ParamServer::shutdown`] detaches the server thread (it exits when all
/// clients disconnect).
pub struct ParamServer {
    tx: Sender<Msg>,
    stats: Arc<TrafficStats>,
    pool: BufferPool,
    failure: Arc<Mutex<Option<NetError>>>,
    handle: Option<JoinHandle<()>>,
}

impl ParamServer {
    /// Start a server owning `init` as the initial weights (one vector per
    /// key, keys are the indices).
    pub fn start(init: Vec<Vec<f32>>, cfg: ServerConfig) -> Self {
        Self::start_traced(init, cfg, Telemetry::disabled())
    }

    /// Like [`ParamServer::start`], additionally forwarding every traffic
    /// and round-lifecycle event this server observes to `telemetry`
    /// (e.g. a `JsonlSink` trace). [`ServerConfig`] stays `Copy`, so the
    /// handle rides in explicitly rather than in the config.
    pub fn start_traced(init: Vec<Vec<f32>>, cfg: ServerConfig, telemetry: Telemetry) -> Self {
        Self::start_with_pool(init, cfg, BufferPool::new(), telemetry)
    }

    /// Like [`ParamServer::start_traced`] but sharing `pool` with the
    /// caller — a sharded group passes one pool to every shard so payload
    /// buffers recycle across the whole group instead of fragmenting per
    /// shard.
    pub(crate) fn start_with_pool(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        pool: BufferPool,
        telemetry: Telemetry,
    ) -> Self {
        Self::start_durable_with_pool(init, cfg, pool, telemetry, Durability::default())
    }

    /// Like [`ParamServer::start_traced`], additionally participating in
    /// the recovery subsystem: optionally restoring state from a shard
    /// checkpoint and/or writing new checkpoints at round boundaries
    /// (see [`crate::recover`]). With a default [`Durability`] this is
    /// exactly [`ParamServer::start_traced`].
    pub fn start_durable(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        telemetry: Telemetry,
        durability: Durability,
    ) -> Self {
        Self::start_durable_with_pool(init, cfg, BufferPool::new(), telemetry, durability)
    }

    pub(crate) fn start_durable_with_pool(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        pool: BufferPool,
        telemetry: Telemetry,
        durability: Durability,
    ) -> Self {
        let (tx, rx) = unbounded();
        let stats = Arc::new(TrafficStats::with_telemetry(telemetry));
        let failure = Arc::new(Mutex::new(None));
        let stats2 = Arc::clone(&stats);
        let failure2 = Arc::clone(&failure);
        let pool2 = pool.clone();
        let handle = std::thread::Builder::new()
            .name("param-server".into())
            .spawn(move || server_loop(init, cfg, rx, stats2, pool2, failure2, durability))
            .expect("spawn server thread");
        Self {
            tx,
            stats,
            pool,
            failure,
            handle: Some(handle),
        }
    }

    /// Start a key-sharded server group: `num_shards` independent server
    /// threads, each owning the keys congruent to its index (the real PS
    /// deployment shape, where shards live on different nodes and keys
    /// are spread across them). Returns one handle whose clients route by
    /// key.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn start_sharded(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        num_shards: usize,
    ) -> ShardedParamServer {
        ShardedParamServer::start(init, cfg, num_shards, Telemetry::disabled())
    }

    /// Like [`ParamServer::start_sharded`], with every shard forwarding
    /// its events to `telemetry` (shards share the one handle, so a
    /// single trace sees the whole group).
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn start_sharded_traced(
        init: Vec<Vec<f32>>,
        cfg: ServerConfig,
        num_shards: usize,
        telemetry: Telemetry,
    ) -> ShardedParamServer {
        ShardedParamServer::start(init, cfg, num_shards, telemetry)
    }

    /// A client handle usable from any thread.
    pub fn client(&self) -> PsClient {
        PsClient::new(self.tx.clone(), Arc::clone(&self.stats), self.pool.clone())
    }

    /// Traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Shared ownership of the traffic counters, for glue (like the
    /// networked front-end) that outlives any one borrow of the server.
    pub(crate) fn stats_arc(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.stats)
    }

    /// Shared ownership of the traffic counters, so a caller can keep
    /// reading them after the server itself has been consumed (e.g. to
    /// check final accounting once a training run shuts it down).
    pub fn shared_stats(&self) -> Arc<TrafficStats> {
        self.stats_arc()
    }

    /// The payload buffer pool shared between this server and its
    /// clients. Buffers recycled by the server after decoding a push are
    /// handed back out through [`PsClient::pool`] /
    /// [`cdsgd_compress::GradientCompressor::compress_into`].
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The failure that ended aggregation, if the
    /// [`ServerConfig::round_deadline`] fired. `None` while healthy.
    pub fn failure(&self) -> Option<NetError> {
        self.failure.lock().expect("failure cell poisoned").clone()
    }

    /// Shared ownership of the failure cell, for front-ends (like the
    /// networked server) that surface the verdict after this handle is
    /// consumed.
    pub(crate) fn failure_arc(&self) -> Arc<Mutex<Option<NetError>>> {
        Arc::clone(&self.failure)
    }

    /// Stop the server thread and wait for it to exit.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ParamServer {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn server_loop(
    init: Vec<Vec<f32>>,
    mut cfg: ServerConfig,
    rx: Receiver<Msg>,
    stats: Arc<TrafficStats>,
    pool: BufferPool,
    failure: Arc<Mutex<Option<NetError>>>,
    durability: Durability,
) {
    // A restore replaces the initial weights, versions, and optimizer
    // state wholesale: the server picks up exactly where the checkpoint
    // captured it (key count and shapes must match the model).
    let restore = durability.restore;
    if let Some(r) = &restore {
        assert_eq!(r.weights.len(), init.len(), "restored key count mismatch");
        for (k, (res, ini)) in r.weights.iter().zip(&init).enumerate() {
            assert_eq!(res.len(), ini.len(), "restored length mismatch on key {k}");
        }
    }
    let start_round = restore.as_ref().map_or(0, |r| r.round);
    let restored: Vec<Option<(Vec<f32>, Vec<f32>)>> = match restore {
        Some(r) => r.weights.into_iter().zip(r.opt_state).map(Some).collect(),
        None => vec![None; init.len()],
    };
    let mut keys: Vec<KeyState> = init
        .into_iter()
        .zip(restored)
        .map(|(weights, restored)| {
            let mut opt = cfg.opt.build();
            let weights = match restored {
                Some((w, o)) => {
                    opt.import_state(&o);
                    w
                }
                None => weights,
            };
            let len = weights.len();
            let weights: Arc<[f32]> = weights.into();
            KeyState {
                prev_weights: Arc::clone(&weights),
                weights,
                acc: vec![0.0; len],
                pending: vec![std::collections::VecDeque::new(); cfg.num_workers],
                version: start_round,
                opt,
                waiting: Vec::new(),
                partial_since: None,
            }
        })
        .collect();
    let mut ckpt = CheckpointTracker::new(durability.checkpoint, keys.len(), start_round);
    // Membership table. Without `cfg.elastic` it is frozen at
    // construction (workers 0..num_workers active forever), so every
    // round aggregates exactly `num_workers` pushes — the historical
    // behaviour, bit-for-bit.
    let mut members = Members::new(cfg.num_workers);
    // Once a round deadline fires, aggregation is over: `failed` holds the
    // verdict, every queued or future pull is answered with it, and pushes
    // are discarded. The loop keeps draining messages (so clients get
    // errors, not hangs) until shutdown.
    let mut failed: Option<NetError> = None;

    loop {
        // With a round deadline or heartbeat timeout armed, wake
        // periodically so a missing push or a silent worker is noticed
        // even when no message ever arrives again.
        let heartbeat = cfg.elastic.and_then(|e| e.heartbeat_timeout);
        let tick_source = match (cfg.round_deadline, heartbeat) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let msg = match tick_source {
            Some(deadline) if failed.is_none() => {
                let tick =
                    (deadline / 4).clamp(Duration::from_millis(5), Duration::from_millis(100));
                match rx.recv_timeout(tick) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            _ => match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            },
        };
        match msg {
            Some(Msg::Push {
                worker,
                key,
                payload,
                conn,
            }) => {
                // Traffic is charged at the full encoded frame size (the
                // same bytes `cdsgd-net` puts on a socket: length prefix +
                // opcode + routing fields + payload), so in-process and
                // TCP runs report identical communication volume.
                let frame = push_frame_bytes(payload.wire_bytes());
                stats.record_push(frame);
                net_delay(cfg.delay_per_byte, frame);
                if failed.is_some() {
                    payload.recycle(&pool);
                    continue;
                }
                if cfg.elastic.is_some() {
                    // A push from a worker the server no longer knows
                    // (e.g. racing its own forced departure) is dropped
                    // rather than panicking the server thread.
                    if worker >= members.state.len() || members.state[worker] == MemberState::Gone {
                        payload.recycle(&pool);
                        continue;
                    }
                    // A straggler from a connection this worker's latest
                    // registration superseded: the new session replays
                    // whatever the completed rounds did not consume, so
                    // aggregating this copy too would double-count it.
                    if members.fenced(worker, conn) {
                        payload.recycle(&pool);
                        continue;
                    }
                    // Pushes also count as liveness.
                    members.last_seen[worker] = Instant::now();
                } else {
                    assert!(worker < cfg.num_workers, "worker id out of range");
                }
                let ks = &mut keys[key];
                assert_eq!(payload.len(), ks.weights.len(), "gradient length mismatch");
                ks.pending[worker].push_back(payload);
                pump_key(key, ks, &members, &cfg, &stats, &pool, &mut ckpt);
                members.sweep(&keys);
            }
            Some(Msg::Join {
                worker,
                conn,
                reply,
            }) => {
                if failed.is_some() {
                    // Dropping `reply` fails the registration.
                    continue;
                }
                if cfg.elastic.is_some() {
                    members.admit(worker, conn);
                    for ks in &mut keys {
                        ks.pending
                            .resize_with(members.state.len(), Default::default);
                        // Admission clears the slot's queued pushes — a
                        // no-op for fresh joiners (empty queues), but
                        // load-bearing for re-admissions: a reconnecting
                        // worker replays every push the completed rounds
                        // did not consume, and a replacement must not
                        // inherit a dead predecessor's leftovers. Either
                        // way, stale queued pushes would double-count.
                        for stale in ks.pending[worker].drain(..) {
                            stale.recycle(&pool);
                        }
                    }
                    let active = members.active();
                    stats
                        .telemetry()
                        .emit(|| Event::WorkerJoined { worker, active });
                }
                // Ack the per-key versions at admission: no round can
                // complete without the joiner from here on, so these are
                // exactly the versions its first pulls must target.
                let versions = keys.iter().map(|k| k.version).collect();
                let _ = reply.send(versions);
            }
            Some(Msg::Leave { worker }) if failed.is_none() && members.is_active(worker) => {
                if let Some(e) = cfg.elastic {
                    demote_member(
                        worker,
                        e,
                        &mut keys,
                        &mut members,
                        &cfg,
                        &stats,
                        &pool,
                        &mut ckpt,
                        &failure,
                        &mut failed,
                    );
                }
            }
            // A two-phase join rollback: the registering client revokes
            // its own tentative admission. The `joined_by` fence makes
            // this exact — only the connection whose registration
            // *promoted* the slot may demote it, so a cancel that trails
            // a re-registration of an established member (a reconnect
            // refresh) falls through to the ignore arm below and cannot
            // shrink the quorum past its pre-join size.
            Some(Msg::CancelJoin { worker, conn })
                if failed.is_none()
                    && members.is_active(worker)
                    && members.joined_by[worker] == conn =>
            {
                if let Some(e) = cfg.elastic {
                    demote_member(
                        worker,
                        e,
                        &mut keys,
                        &mut members,
                        &cfg,
                        &stats,
                        &pool,
                        &mut ckpt,
                        &failure,
                        &mut failed,
                    );
                }
            }
            // Only an *Active* slot's liveness is refreshed: a heartbeat
            // that trails a Leave (or arrives for an evicted/unknown id)
            // must not touch a Draining or Gone slot — the goodbye wins.
            Some(Msg::Heartbeat { worker })
                if cfg.elastic.is_some() && members.is_active(worker) =>
            {
                members.last_seen[worker] = Instant::now();
            }
            // Leave/CancelJoin/Heartbeat from an unknown or inactive
            // worker, a cancel from a connection that didn't promote the
            // slot, or anything after the run already failed: ignored
            // (the guards above filtered them out).
            Some(Msg::Leave { .. })
            | Some(Msg::CancelJoin { .. })
            | Some(Msg::Heartbeat { .. }) => {}
            Some(Msg::Pull {
                key,
                min_version,
                reply,
            }) => {
                if let Some(err) = &failed {
                    let _ = reply.send(Err(err.clone()));
                    continue;
                }
                let ks = &mut keys[key];
                if ks.version == min_version {
                    let frame = pull_reply_frame_bytes(ks.weights.len());
                    stats.record_pull(frame);
                    net_delay(cfg.delay_per_byte, frame);
                    let _ = reply.send(Ok(Arc::clone(&ks.weights)));
                } else if ks.version == min_version + 1 {
                    // The puller raced one aggregate behind; serve the
                    // exact requested version from the history.
                    let frame = pull_reply_frame_bytes(ks.prev_weights.len());
                    stats.record_pull(frame);
                    net_delay(cfg.delay_per_byte, frame);
                    let _ = reply.send(Ok(Arc::clone(&ks.prev_weights)));
                } else if ks.version > min_version {
                    panic!(
                        "pull of version {min_version} for key {key} arrived after \
                         version {} — workers may lag at most one round",
                        ks.version
                    );
                } else {
                    ks.waiting.push((min_version, reply));
                }
            }
            Some(Msg::SetLr(lr)) => cfg.global_lr = lr,
            Some(Msg::Snapshot { reply }) => {
                let w = keys.iter().map(|k| k.weights.to_vec()).collect();
                let v = keys.iter().map(|k| k.version).collect();
                let _ = reply.send((w, v));
            }
            Some(Msg::Checkpoint { reply }) => {
                let round = min_version(&keys);
                let result = match ckpt.policy() {
                    None => {
                        eprintln!("checkpoint: refused: server has no checkpoint directory");
                        None
                    }
                    Some(_) if keys.iter().any(|k| k.version != round) => {
                        eprintln!("checkpoint: refused: key versions are skewed (round in flight)");
                        None
                    }
                    Some(p) => {
                        let snap = ShardCheckpoint {
                            shard: p.shard,
                            num_shards: p.num_shards,
                            round,
                            weights: keys.iter().map(|k| k.weights.to_vec()).collect(),
                            opt_state: keys.iter().map(|k| k.opt.export_state()).collect(),
                        };
                        match snap.save_atomic(&p.dir) {
                            Ok(_) => Some(round),
                            Err(e) => {
                                eprintln!("checkpoint: on-demand write failed: {e}");
                                None
                            }
                        }
                    }
                };
                let _ = reply.send(result);
            }
            Some(Msg::Shutdown) => break,
            None => {}
        }
        if failed.is_none() {
            if let Some(deadline) = cfg.round_deadline {
                if let Some((key, err)) = check_round_deadline(&keys, &members, deadline) {
                    if let NetError::WorkerLost { id, round } = err {
                        stats.telemetry().emit(|| Event::RoundExpired {
                            key,
                            round,
                            victim: id,
                        });
                    }
                    fail_now(&mut keys, &failure, &mut failed, err);
                }
            }
        }
        // Liveness sweep: force out active workers silent past the
        // heartbeat timeout (an ungraceful departure — same drain
        // semantics as `Leave`, but flagged in telemetry).
        if failed.is_none() {
            if let Some(e) = cfg.elastic {
                if let Some(timeout) = e.heartbeat_timeout {
                    while let Some(w) = members.timed_out(timeout) {
                        if members.active().saturating_sub(1) < e.min_quorum {
                            let round = min_version(&keys);
                            fail_now(
                                &mut keys,
                                &failure,
                                &mut failed,
                                NetError::WorkerLost { id: w, round },
                            );
                            break;
                        }
                        members.state[w] = MemberState::Draining;
                        let active = members.active();
                        stats.telemetry().emit(|| Event::WorkerLeft {
                            worker: w,
                            active,
                            graceful: false,
                        });
                        for (key, ks) in keys.iter_mut().enumerate() {
                            pump_key(key, ks, &members, &cfg, &stats, &pool, &mut ckpt);
                        }
                        members.sweep(&keys);
                    }
                }
            }
        }
    }
}

/// Demote an active `worker` to `Draining` — the shared tail of a
/// graceful `Leave` and a join rollback's `CancelJoin`. A *partial*
/// membership below the quorum fails the run; a full graceful drain to
/// zero is a valid end state — the server idles, ready for new joins or
/// a controller's shutdown. (A pool of min_quorum q can only reach zero
/// gracefully when q == 1, stepping 1 → 0.)
#[allow(clippy::too_many_arguments)]
fn demote_member(
    worker: usize,
    e: ElasticConfig,
    keys: &mut [KeyState],
    members: &mut Members,
    cfg: &ServerConfig,
    stats: &TrafficStats,
    pool: &BufferPool,
    ckpt: &mut CheckpointTracker,
    failure: &Mutex<Option<NetError>>,
    failed: &mut Option<NetError>,
) {
    members.state[worker] = MemberState::Draining;
    let active = members.active();
    stats.telemetry().emit(|| Event::WorkerLeft {
        worker,
        active,
        graceful: true,
    });
    if active > 0 && active < e.min_quorum {
        let round = min_version(keys);
        fail_now(
            keys,
            failure,
            failed,
            NetError::WorkerLost { id: worker, round },
        );
    } else {
        // The departed worker no longer gates round completion: pump
        // every key.
        for (key, ks) in keys.iter_mut().enumerate() {
            pump_key(key, ks, members, cfg, stats, pool, ckpt);
        }
        members.sweep(keys);
    }
}

/// Seconds since the first server-side span was timed. The server has no
/// per-run profiler; one process-wide origin keeps its span timestamps
/// monotonic and mutually comparable across shards and runs.
fn server_clock() -> f64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// [`CodecSpans`] adapter for the aggregation loop: decode intervals
/// stream straight out as [`Event::OpSpan`]s ("dequant") on the server's
/// own span lane. The lane index is one past the last real worker
/// (`worker == worker count`): worker lanes are buffered per-worker and
/// flushed in profiler-clock order at epoch barriers, so injecting
/// immediately-emitted server spans into a worker's lane would break the
/// lane's monotonic-timestamp invariant. `round` carries the version the
/// decode feeds.
struct DequantSpans<'a> {
    telemetry: &'a Telemetry,
    lane: usize,
    round: u64,
}

impl CodecSpans for DequantSpans<'_> {
    fn now(&self) -> f64 {
        server_clock()
    }

    fn record(&self, op: Op, start_s: f64) {
        let end_s = server_clock();
        self.telemetry.emit(|| Event::OpSpan {
            worker: self.lane,
            op,
            round: self.round,
            start_s,
            end_s,
        });
    }
}

/// Complete every round this key can: a round fires when all *active*
/// workers have a queued push, and aggregates one push from every worker
/// with a non-empty queue (active and draining alike, in worker-id order
/// — fixed iteration order keeps f32 summation bit-deterministic). The
/// update divides by the actual contributor count. With fixed membership
/// every worker is always active, so this is exactly the historical
/// `while all non-empty` loop with divisor `num_workers`.
#[allow(clippy::too_many_arguments)]
fn pump_key(
    key: Key,
    ks: &mut KeyState,
    members: &Members,
    cfg: &ServerConfig,
    stats: &TrafficStats,
    pool: &BufferPool,
    ckpt: &mut CheckpointTracker,
) {
    loop {
        let complete = members.any_active()
            && members
                .state
                .iter()
                .zip(&ks.pending)
                .all(|(s, q)| *s != MemberState::Active || !q.is_empty());
        if !complete {
            break;
        }
        ks.acc.fill(0.0);
        let traced = stats.telemetry().is_enabled();
        let spans = DequantSpans {
            telemetry: stats.telemetry(),
            lane: ks.pending.len(),
            round: ks.version,
        };
        let mut contributors = 0usize;
        for q in ks.pending.iter_mut() {
            if let Some(p) = q.pop_front() {
                if traced {
                    // The codec records each decode as one "dequant" span.
                    decompress_add_traced(&p, &mut ks.acc, &spans);
                } else {
                    decompress_add(&p, &mut ks.acc);
                }
                // Payload storage goes back to the shared pool so the
                // next compress_into can reuse it.
                p.recycle(pool);
                contributors += 1;
            }
        }
        apply_update(ks, cfg, contributors, stats);
        ks.version += 1;
        // Scheduled checkpoints capture each key the instant it crosses
        // the boundary round (versions advance one at a time, so every
        // boundary is observed); the file is written once all keys have.
        ckpt.observe(key, ks.version, &ks.weights, ks.opt.as_ref());
        let version = ks.version;
        stats
            .telemetry()
            .emit(|| Event::RoundComplete { key, version });
        // Release any pulls now satisfied.
        let mut rest = Vec::new();
        let mut ready = Vec::new();
        for w in ks.waiting.drain(..) {
            if w.0 <= version {
                ready.push(w.1);
            } else {
                rest.push(w);
            }
        }
        ks.waiting = rest;
        for reply in ready {
            let frame = pull_reply_frame_bytes(ks.weights.len());
            stats.record_pull(frame);
            net_delay(cfg.delay_per_byte, frame);
            let _ = reply.send(Ok(Arc::clone(&ks.weights)));
        }
    }
    // Start (or clear) the partial-round clock for this key. The
    // lifecycle event fires only on the empty→partial transition, once
    // per round, not per straggling push.
    let partial = ks.pending.iter().any(|q| !q.is_empty());
    if partial {
        if ks.partial_since.is_none() {
            ks.partial_since = Some(Instant::now());
            let round = ks.version;
            stats
                .telemetry()
                .emit(|| Event::RoundPartial { key, round });
        }
    } else {
        ks.partial_since = None;
    }
}

/// Lowest completed version across keys — the round a failure is
/// attributed to.
fn min_version(keys: &[KeyState]) -> u64 {
    keys.iter().map(|k| k.version).min().unwrap_or(0)
}

/// Enter the failed state: publish the verdict, fail every parked pull
/// (they would otherwise block forever on rounds that can no longer
/// complete), and remember it so future messages fail fast.
fn fail_now(
    keys: &mut [KeyState],
    failure: &Mutex<Option<NetError>>,
    failed: &mut Option<NetError>,
    err: NetError,
) {
    *failure.lock().expect("failure cell poisoned") = Some(err.clone());
    for ks in keys.iter_mut() {
        for (_, reply) in ks.waiting.drain(..) {
            let _ = reply.send(Err(err.clone()));
        }
    }
    *failed = Some(err);
}

/// If any key's round has been partial past `deadline`, name the victim:
/// the lowest-id *active* worker whose push for that round never arrived
/// (draining and gone workers legitimately have empty queues). The
/// unfinishable round is `version` (rounds are 0-indexed; `version`
/// counts completed ones). Returns the offending key alongside the error
/// so the caller can attribute the expiry in telemetry.
fn check_round_deadline(
    keys: &[KeyState],
    members: &Members,
    deadline: Duration,
) -> Option<(Key, NetError)> {
    for (key, ks) in keys.iter().enumerate() {
        let since = match ks.partial_since {
            Some(t) => t,
            None => continue,
        };
        if since.elapsed() < deadline {
            continue;
        }
        let id = match ks
            .pending
            .iter()
            .enumerate()
            .position(|(w, q)| members.is_active(w) && q.is_empty())
        {
            Some(id) => id,
            // Every active worker has pushed; the round completes on the
            // next pump, so there is nothing to expire.
            None => continue,
        };
        return Some((
            key,
            NetError::WorkerLost {
                id,
                round: ks.version,
            },
        ));
    }
    None
}

/// Emulated transfer time for `bytes` at the configured delay.
fn net_delay(delay_per_byte: f64, bytes: usize) {
    if delay_per_byte > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(
            delay_per_byte * bytes as f64,
        ));
    }
}

/// `W ← W − η/N · opt(acc)`, eq. 10 generalized over the key's
/// [`ServerOpt`] (plain SGD for the paper's rule), with `N` the number
/// of workers whose pushes fed this round (`contributors`). Fixed
/// membership makes that always `cfg.num_workers`.
///
/// The optimizer builds the new version as a fresh `Arc<[f32]>` snapshot
/// (the one copy per round, counted in [`TrafficStats::bytes_copied`])
/// which rotates the old snapshot into `prev_weights` — pulls of either
/// version are then served by reference-count bumps alone.
fn apply_update(ks: &mut KeyState, cfg: &ServerConfig, contributors: usize, stats: &TrafficStats) {
    let step = cfg.global_lr / contributors as f32;
    let new = ks.opt.apply(&ks.weights, &ks.acc, step);
    stats.record_copy(4 * new.len());
    ks.prev_weights = std::mem::replace(&mut ks.weights, new);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_update_rule() {
        let ps = ParamServer::start(vec![vec![1.0, 2.0]], ServerConfig::new(1, 0.1));
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![10.0, -10.0])).unwrap();
        let w = c.pull(0, 1).unwrap();
        assert_eq!(*w, [0.0, 3.0]);
        ps.shutdown();
    }

    #[test]
    fn aggregation_waits_for_all_workers() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(2, 1.0));
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        // Version still 0: a pull at min_version 0 returns the original.
        assert_eq!(*c.pull(0, 0).unwrap(), [0.0]);
        c.push(1, 0, Compressed::Raw(vec![4.0])).unwrap();
        // Both pushed: W = 0 - 1.0/2 * (2+4) = -3.
        assert_eq!(*c.pull(0, 1).unwrap(), [-3.0]);
        ps.shutdown();
    }

    #[test]
    fn pull_blocks_until_version_available() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        let c2 = ps.client();
        let waiter = std::thread::spawn(move || c2.pull(0, 1).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        assert_eq!(*waiter.join().unwrap(), [-1.0]);
        ps.shutdown();
    }

    #[test]
    fn multiple_keys_progress_independently() {
        let ps = ParamServer::start(vec![vec![0.0], vec![0.0]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        c.push(0, 1, Compressed::Raw(vec![5.0])).unwrap();
        assert_eq!(*c.pull(1, 1).unwrap(), [-5.0]);
        // Key 0 untouched.
        assert_eq!(*c.pull(0, 0).unwrap(), [0.0]);
        let (_, versions) = c.snapshot().unwrap();
        assert_eq!(versions, vec![0, 1]);
        ps.shutdown();
    }

    #[test]
    fn set_lr_takes_effect_next_round() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        c.pull(0, 1).unwrap();
        c.set_lr(0.1).unwrap();
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        let w = c.pull(0, 2).unwrap();
        assert!((w[0] - (-1.1)).abs() < 1e-6);
        ps.shutdown();
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(1, 1.0).with_momentum(0.9),
        );
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        let w1 = c.pull(0, 1).unwrap()[0];
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        let w2 = c.pull(0, 2).unwrap()[0];
        // Step 1: v=1, w=-1. Step 2: v=1.9, w=-2.9.
        assert!((w1 + 1.0).abs() < 1e-6);
        assert!((w2 + 2.9).abs() < 1e-6);
        ps.shutdown();
    }

    #[test]
    fn nesterov_optimizer_applies_lookahead_through_the_server() {
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(1, 1.0).with_optimizer(ServerOptKind::Nesterov { momentum: 0.9 }),
        );
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        let w1 = c.pull(0, 1).unwrap()[0];
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        let w2 = c.pull(0, 2).unwrap()[0];
        // Step 1: v=1, d=1.9, w=-1.9. Step 2: v=1.9, d=2.71, w=-4.61.
        assert!((w1 + 1.9).abs() < 1e-6);
        assert!((w2 + 4.61).abs() < 1e-5);
        ps.shutdown();
    }

    #[test]
    fn traffic_stats_count_wire_bytes() {
        let ps = ParamServer::start(vec![vec![0.0; 16]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![0.0; 16])).unwrap();
        c.pull(0, 1).unwrap();
        // Push frame: 4 prefix + 1 opcode + 4 worker + 4 key + (4 header
        // + 64 payload) = 81. Pull reply: 4 + 1 + 4 key + 8 version + 64
        // weights = 81. Both match the bytes `cdsgd-net` puts on a socket.
        assert_eq!(ps.stats().bytes_pushed(), 81);
        assert_eq!(ps.stats().bytes_pulled(), 81);
        ps.shutdown();
    }

    #[test]
    fn same_version_pulls_share_one_snapshot_allocation() {
        // Two clients on two threads pulling the same version must get the
        // *same* Arc — the server serves snapshots by reference, not copy.
        let ps = ParamServer::start(vec![vec![0.0; 8]], ServerConfig::new(1, 1.0));
        let c1 = ps.client();
        let c2 = ps.client();
        c1.push(0, 0, Compressed::Raw(vec![1.0; 8])).unwrap();
        let h1 = std::thread::spawn(move || c1.pull(0, 1).unwrap());
        let h2 = std::thread::spawn(move || c2.pull(0, 1).unwrap());
        let (w1, w2) = (h1.join().unwrap(), h2.join().unwrap());
        assert!(
            Arc::ptr_eq(&w1, &w2),
            "same-version pulls must share storage"
        );
        assert_eq!(*w1, [-1.0; 8]);
        ps.shutdown();
    }

    #[test]
    fn bytes_copied_counts_snapshots_not_pulls() {
        // One push builds one 8-element snapshot; two pulls of that same
        // version add nothing to the copy counter (only to pull traffic).
        let ps = ParamServer::start(vec![vec![0.0; 8]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![1.0; 8])).unwrap();
        c.pull(0, 1).unwrap();
        c.pull(0, 1).unwrap();
        assert_eq!(ps.stats().bytes_copied(), 4 * 8);
        assert_eq!(
            ps.stats().bytes_pulled() as usize,
            2 * pull_reply_frame_bytes(8)
        );
        ps.shutdown();
    }

    #[test]
    fn round_deadline_names_the_missing_worker() {
        // Two workers; only worker 0 pushes. The round stays partial past
        // the deadline, so pulls fail with WorkerLost { id: 1 } instead of
        // blocking forever — and the verdict is queryable on the handle.
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(2, 1.0).with_round_deadline(Duration::from_millis(50)),
        );
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        let err = c.pull(0, 1).unwrap_err();
        assert_eq!(err, NetError::WorkerLost { id: 1, round: 0 });
        assert_eq!(ps.failure(), Some(NetError::WorkerLost { id: 1, round: 0 }));
        // Later pulls fail fast with the same verdict.
        assert_eq!(
            c.pull(0, 0).unwrap_err(),
            NetError::WorkerLost { id: 1, round: 0 }
        );
        ps.shutdown();
    }

    #[test]
    fn no_deadline_means_no_failure_mode() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(2, 1.0));
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(ps.failure(), None);
        assert_eq!(*c.pull(0, 0).unwrap(), [0.0]);
        ps.shutdown();
    }

    #[test]
    fn round_lifecycle_events_reach_an_attached_sink() {
        use cdsgd_telemetry::MemorySink;
        let mem = Arc::new(MemorySink::new());
        let ps = ParamServer::start_traced(
            vec![vec![0.0]],
            ServerConfig::new(2, 1.0),
            Telemetry::new(mem.clone()),
        );
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        c.push(1, 0, Compressed::Raw(vec![1.0])).unwrap();
        c.pull(0, 1).unwrap();
        let events = mem.events();
        assert!(
            events.contains(&Event::RoundPartial { key: 0, round: 0 }),
            "first push opens the round: {events:?}"
        );
        assert!(
            events.contains(&Event::RoundComplete { key: 0, version: 1 }),
            "second push completes it: {events:?}"
        );
        // Byte accounting flows through the very same stream.
        assert!(events.iter().any(|e| matches!(e, Event::Push { .. })));
        assert!(events.iter().any(|e| matches!(e, Event::Pull { .. })));
        ps.shutdown();
    }

    #[test]
    fn expired_round_emits_round_expired() {
        use cdsgd_telemetry::MemorySink;
        let mem = Arc::new(MemorySink::new());
        let ps = ParamServer::start_traced(
            vec![vec![0.0]],
            ServerConfig::new(2, 1.0).with_round_deadline(Duration::from_millis(50)),
            Telemetry::new(mem.clone()),
        );
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![1.0])).unwrap();
        c.pull(0, 1).unwrap_err();
        assert!(mem.events().contains(&Event::RoundExpired {
            key: 0,
            round: 0,
            victim: 1,
        }));
        ps.shutdown();
    }

    #[test]
    fn elastic_join_acks_versions_and_resizes_quorum() {
        // Start with one worker; after one round, worker 1 joins. The ack
        // carries the versions its first pulls must target, and the next
        // round waits for (and divides by) both workers.
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1)),
        );
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-2.0]);
        assert_eq!(c.register(1).unwrap(), vec![1]);
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        // Worker 0 alone no longer completes a round.
        assert_eq!(*c.pull(0, 1).unwrap(), [-2.0]);
        c.push(1, 0, Compressed::Raw(vec![4.0])).unwrap();
        // W = -2 - 1.0/2 * (2+4) = -5.
        assert_eq!(*c.pull(0, 2).unwrap(), [-5.0]);
        ps.shutdown();
    }

    #[test]
    fn graceful_leave_shrinks_quorum_and_drains_queued_pushes() {
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(2, 1.0).with_elastic(ElasticConfig::new(1)),
        );
        let c = ps.client();
        // Worker 1 pushes its last round, then leaves; worker 0's push
        // arrives after the leave. The round still aggregates both
        // (divisor 2), because the leaver's queued push feeds the round
        // it was computed for.
        c.push(1, 0, Compressed::Raw(vec![4.0])).unwrap();
        c.leave(1).unwrap();
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-3.0]);
        // From here on worker 0 alone completes rounds, divisor 1.
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 2).unwrap(), [-5.0]);
        ps.shutdown();
    }

    #[test]
    fn graceful_drain_to_zero_idles_and_accepts_rejoin() {
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1)),
        );
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-2.0]);
        // The last worker leaving is a complete drain, not a failure:
        // the server idles with the aggregated weights intact.
        c.leave(0).unwrap();
        let (w, v) = c.snapshot().unwrap();
        assert_eq!((w[0].as_slice(), v[0]), ([-2.0].as_slice(), 1));
        assert_eq!(ps.failure(), None);
        // Scale back up from zero: a rejoin resumes training solo.
        assert_eq!(c.register(0).unwrap(), vec![1]);
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 2).unwrap(), [-4.0]);
        ps.shutdown();
    }

    #[test]
    fn cancel_join_rolls_back_a_tentative_join() {
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1)),
        );
        let c = ps.client();
        // Worker 1 is tentatively admitted, then the two-phase register
        // rolls it back: worker 0 alone completes rounds again, and no
        // phantom member stalls the shard until heartbeat eviction.
        assert_eq!(c.register(1).unwrap(), vec![0]);
        c.cancel_join(1).unwrap();
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-2.0]);
        assert_eq!(ps.failure(), None);
        // The slot is reusable: a later real join gates the next round.
        assert_eq!(c.register(1).unwrap(), vec![1]);
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        c.push(1, 0, Compressed::Raw(vec![4.0])).unwrap();
        // W = -2 - 1.0/2 * (2+4) = -5.
        assert_eq!(*c.pull(0, 2).unwrap(), [-5.0]);
        ps.shutdown();
    }

    #[test]
    fn cancel_join_after_a_reregistration_is_a_noop() {
        // min_quorum 2 pins the regression this fixes: a rollback that
        // trails a re-registration of an established member must not
        // demote it — with a `leave`-based rollback, a transient partial
        // register failure became a permanent below-quorum one.
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(2, 1.0).with_elastic(ElasticConfig::new(2)),
        );
        let c = ps.client();
        // Worker 1 is in the initial set: registering it again is a
        // refresh, not a promotion, so the cancel finds no tentative
        // join to undo.
        assert_eq!(c.register(1).unwrap(), vec![0]);
        c.cancel_join(1).unwrap();
        // Both members still gate and feed rounds; the server is healthy.
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        c.push(1, 0, Compressed::Raw(vec![4.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-3.0]);
        assert_eq!(ps.failure(), None);
        ps.shutdown();
    }

    #[test]
    fn in_process_push_is_not_fenced_by_a_wire_registration() {
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(1, 1.0).with_elastic(ElasticConfig::new(1)),
        );
        let c = ps.client();
        // Worker 0 registers over a transport connection (id 7), which
        // fences pushes from *other wire connections*…
        assert_eq!(c.join_async_from(7, 0).unwrap().recv().unwrap(), vec![0]);
        // …but never the in-process sentinel: conn 0 marks a trusted
        // same-process caller, not a supersedable wire session.
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-2.0]);
        // A straggler from a superseded wire connection is still dropped.
        c.push_from(3, 0, 0, Compressed::Raw(vec![100.0])).unwrap();
        c.push_from(7, 0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 2).unwrap(), [-4.0]);
        ps.shutdown();
    }

    #[test]
    fn leave_below_min_quorum_fails_the_server() {
        let ps = ParamServer::start(
            vec![vec![0.0]],
            ServerConfig::new(2, 1.0).with_elastic(ElasticConfig::new(2)),
        );
        let c = ps.client();
        c.leave(1).unwrap();
        // The failure cell is written by the server thread; poll briefly.
        let t = Instant::now();
        while ps.failure().is_none() && t.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ps.failure(), Some(NetError::WorkerLost { id: 1, round: 0 }));
        assert!(c.pull(0, 1).is_err());
        ps.shutdown();
    }

    #[test]
    fn heartbeat_timeout_forces_out_a_silent_worker() {
        use cdsgd_telemetry::MemorySink;
        let mem = Arc::new(MemorySink::new());
        let ps = ParamServer::start_traced(
            vec![vec![0.0]],
            ServerConfig::new(2, 1.0).with_elastic(
                ElasticConfig::new(1).with_heartbeat_timeout(Duration::from_millis(50)),
            ),
            Telemetry::new(mem.clone()),
        );
        let c = ps.client();
        // Worker 0 stays live via heartbeats while worker 1 goes silent;
        // once it's forced out, worker 0 alone completes rounds.
        let alive = {
            let c = c.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let _ = c.heartbeat(0);
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        };
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-2.0]);
        alive.join().unwrap();
        assert!(
            mem.events().contains(&Event::WorkerLeft {
                worker: 1,
                active: 1,
                graceful: false,
            }),
            "forced departure must be reported: {:?}",
            mem.events()
        );
        assert_eq!(ps.failure(), None, "quorum still satisfied");
        ps.shutdown();
    }

    #[test]
    fn fixed_membership_ignores_membership_messages() {
        // Without `elastic`, leave/heartbeat are inert and register is
        // just a version handshake — aggregation still waits for all
        // `num_workers` pushes.
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(2, 1.0));
        let c = ps.client();
        c.leave(1).unwrap();
        c.heartbeat(0).unwrap();
        assert_eq!(c.register(5).unwrap(), vec![0]);
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        assert_eq!(*c.pull(0, 0).unwrap(), [0.0], "still waiting for worker 1");
        c.push(1, 0, Compressed::Raw(vec![4.0])).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-3.0]);
        ps.shutdown();
    }

    #[test]
    fn scheduled_checkpoint_resume_continues_bit_identically() {
        use crate::recover::{self, CheckpointPolicy};
        let dir = std::env::temp_dir().join(format!("cdsgd-srv-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Uninterrupted reference: 4 rounds with momentum (so optimizer
        // state matters).
        let cfg = ServerConfig::new(1, 0.5).with_momentum(0.9);
        let reference = {
            let ps = ParamServer::start(vec![vec![0.0, 1.0]], cfg);
            let c = ps.client();
            for _ in 0..4 {
                c.push(0, 0, Compressed::Raw(vec![1.0, -1.0])).unwrap();
            }
            let w = c.pull(0, 4).unwrap().to_vec();
            ps.shutdown();
            w
        };

        // Checkpointed run: 2 rounds, snapshot at the every=2 boundary.
        {
            let durability = Durability {
                restore: None,
                checkpoint: Some(CheckpointPolicy::new(&dir, Some(2), 0, 1)),
            };
            let ps = ParamServer::start_durable(
                vec![vec![0.0, 1.0]],
                cfg,
                Telemetry::disabled(),
                durability,
            );
            let c = ps.client();
            for _ in 0..2 {
                c.push(0, 0, Compressed::Raw(vec![1.0, -1.0])).unwrap();
            }
            c.pull(0, 2).unwrap();
            ps.shutdown();
        }
        assert_eq!(recover::latest_complete_round(&dir, 1).unwrap(), Some(2));

        // Resume from the checkpoint (momentum restored) and run the
        // remaining 2 rounds: bit-identical to the uninterrupted run.
        let restored = recover::load_latest(&dir, 0, 1).unwrap().unwrap();
        let durability = Durability {
            restore: Some(restored.into_restored()),
            checkpoint: None,
        };
        let ps = ParamServer::start_durable(
            vec![vec![0.0, 1.0]],
            cfg,
            Telemetry::disabled(),
            durability,
        );
        let c = ps.client();
        for _ in 0..2 {
            c.push(0, 0, Compressed::Raw(vec![1.0, -1.0])).unwrap();
        }
        assert_eq!(*c.pull(0, 4).unwrap(), *reference);
        ps.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn on_demand_checkpoint_requires_a_directory() {
        let ps = ParamServer::start(vec![vec![0.0]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        assert_eq!(c.checkpoint_now().unwrap(), None);
        ps.shutdown();
    }

    #[test]
    fn on_demand_checkpoint_captures_the_quiesced_round() {
        use crate::recover::{self, CheckpointPolicy};
        let dir = std::env::temp_dir().join(format!("cdsgd-srv-odc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durability = Durability {
            restore: None,
            // On-demand only: no interval.
            checkpoint: Some(CheckpointPolicy::new(&dir, None, 0, 1)),
        };
        let ps = ParamServer::start_durable(
            vec![vec![0.0], vec![0.0]],
            ServerConfig::new(1, 1.0),
            Telemetry::disabled(),
            durability,
        );
        let c = ps.client();
        c.push(0, 0, Compressed::Raw(vec![2.0])).unwrap();
        c.push(0, 1, Compressed::Raw(vec![4.0])).unwrap();
        c.pull(0, 1).unwrap();
        c.pull(1, 1).unwrap();
        assert_eq!(c.checkpoint_now().unwrap(), Some(1));
        let ckpt = recover::load_latest(&dir, 0, 1).unwrap().unwrap();
        assert_eq!(ckpt.round, 1);
        assert_eq!(ckpt.weights, vec![vec![-2.0], vec![-4.0]]);
        ps.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compressed_push_is_decoded_before_update() {
        use cdsgd_compress::{GradientCompressor, TwoBitQuantizer};
        let ps = ParamServer::start(vec![vec![0.0; 3]], ServerConfig::new(1, 1.0));
        let c = ps.client();
        let mut q = TwoBitQuantizer::new(0.5);
        let payload = q.compress(0, &[0.9, -0.9, 0.1]);
        c.push(0, 0, payload).unwrap();
        assert_eq!(*c.pull(0, 1).unwrap(), [-0.5, 0.5, 0.0]);
        ps.shutdown();
    }
}
