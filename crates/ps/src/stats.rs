//! Communication-traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Byte and message counters for everything that crosses the (simulated)
/// network. Shared between the server and all clients; all counters are
/// monotonic and lock-free.
#[derive(Debug, Default)]
pub struct TrafficStats {
    bytes_pushed: AtomicU64,
    bytes_pulled: AtomicU64,
    num_pushes: AtomicU64,
    num_pulls: AtomicU64,
    bytes_copied: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl TrafficStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_push(&self, bytes: usize) {
        self.bytes_pushed.fetch_add(bytes as u64, Ordering::Relaxed);
        self.num_pushes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_pull(&self, bytes: usize) {
        self.bytes_pulled.fetch_add(bytes as u64, Ordering::Relaxed);
        self.num_pulls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_copy(&self, bytes: usize) {
        self.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_sent(&self, bytes: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_received(&self, bytes: usize) {
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Total bytes pushed worker→server (compressed size on the wire).
    pub fn bytes_pushed(&self) -> u64 {
        self.bytes_pushed.load(Ordering::Relaxed)
    }

    /// Total bytes pulled server→worker (weights are always raw f32).
    pub fn bytes_pulled(&self) -> u64 {
        self.bytes_pulled.load(Ordering::Relaxed)
    }

    /// Total push messages.
    pub fn num_pushes(&self) -> u64 {
        self.num_pushes.load(Ordering::Relaxed)
    }

    /// Total pull messages.
    pub fn num_pulls(&self) -> u64 {
        self.num_pulls.load(Ordering::Relaxed)
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_pushed() + self.bytes_pulled()
    }

    /// Bytes the server *materialised* for weight snapshots — one
    /// `Arc<[f32]>` build per new version, regardless of how many workers
    /// pull it. The gap between this and [`TrafficStats::bytes_pulled`] is
    /// the copying the zero-copy pull path avoids.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied.load(Ordering::Relaxed)
    }

    /// Bytes actually written to a transport (frame prefix included),
    /// counted by the networked server/client glue as frames go out.
    /// Zero for the pure in-process path, where no bytes are
    /// materialised — the gap between this and the protocol-level
    /// [`TrafficStats::bytes_pulled`]/[`TrafficStats::bytes_pushed`]
    /// estimates is exactly what moving to a real transport costs.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes actually read from a transport (frame prefix included).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TrafficStats::new();
        s.record_push(100);
        s.record_push(50);
        s.record_pull(400);
        s.record_copy(400);
        s.record_copy(400);
        s.record_sent(404);
        s.record_received(104);
        assert_eq!(s.bytes_pushed(), 150);
        assert_eq!(s.bytes_pulled(), 400);
        assert_eq!(s.num_pushes(), 2);
        assert_eq!(s.num_pulls(), 1);
        assert_eq!(s.total_bytes(), 550);
        assert_eq!(s.bytes_copied(), 800);
        assert_eq!(s.bytes_sent(), 404);
        assert_eq!(s.bytes_received(), 104);
    }
}
