//! Communication-traffic accounting.
//!
//! Since the telemetry refactor, [`TrafficStats`] is a *view* over a
//! [`cdsgd_telemetry::AggregateSink`]: every `record_*` call emits a
//! typed [`Event`] through a [`Telemetry`] handle whose first sink is
//! the internal aggregate, so the counters the accessors report are
//! derived from the exact same event stream an attached trace sees.
//! With no extra sink attached the behaviour (and every counter value)
//! is bit-for-bit what the plain atomic counters used to produce.

use cdsgd_telemetry::{AggregateSink, Event, Sink, Telemetry};
use std::sync::Arc;

/// Byte and message counters for everything that crosses the (simulated)
/// network. Shared between the server and all clients; all counters are
/// monotonic and lock-free.
#[derive(Debug)]
pub struct TrafficStats {
    agg: Arc<AggregateSink>,
    tel: Telemetry,
}

impl Default for TrafficStats {
    fn default() -> Self {
        Self::new()
    }
}

impl TrafficStats {
    /// Fresh zeroed counters, observed by no extra sink.
    pub fn new() -> Self {
        Self::with_telemetry(Telemetry::disabled())
    }

    /// Fresh counters that additionally forward every traffic event to
    /// `extra` (e.g. a trace file): the internal aggregate and the extra
    /// sink observe the same events, so their totals agree exactly.
    pub fn with_telemetry(extra: Telemetry) -> Self {
        let agg = Arc::new(AggregateSink::new());
        let tel = Telemetry::new(Arc::clone(&agg) as Arc<dyn Sink>).and(&extra);
        Self { agg, tel }
    }

    /// The event stream these counters are folded from. Layers that own
    /// a `TrafficStats` (the server loop, the net glue) emit their
    /// non-traffic lifecycle events through this same handle so one
    /// attached trace sees everything.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    pub(crate) fn record_push(&self, bytes: usize) {
        self.tel.emit(|| Event::Push {
            bytes: bytes as u64,
        });
    }

    pub(crate) fn record_pull(&self, bytes: usize) {
        self.tel.emit(|| Event::Pull {
            bytes: bytes as u64,
        });
    }

    pub(crate) fn record_copy(&self, bytes: usize) {
        self.tel.emit(|| Event::SnapshotCopy {
            bytes: bytes as u64,
        });
    }

    pub(crate) fn record_sent(&self, conn: u64, bytes: usize) {
        self.tel.emit(|| Event::FrameSent {
            conn,
            bytes: bytes as u64,
        });
    }

    pub(crate) fn record_received(&self, conn: u64, bytes: usize) {
        self.tel.emit(|| Event::FrameReceived {
            conn,
            bytes: bytes as u64,
        });
    }

    pub(crate) fn record_collective(&self, rank: usize, world: usize, payload_bytes: u64) {
        self.tel.emit(|| Event::CollectiveDone {
            rank,
            world,
            payload_bytes,
        });
    }

    /// Total bytes pushed worker→server (compressed size on the wire).
    pub fn bytes_pushed(&self) -> u64 {
        self.agg.bytes_pushed()
    }

    /// Total bytes pulled server→worker (weights are always raw f32).
    pub fn bytes_pulled(&self) -> u64 {
        self.agg.bytes_pulled()
    }

    /// Total push messages.
    pub fn num_pushes(&self) -> u64 {
        self.agg.num_pushes()
    }

    /// Total pull messages.
    pub fn num_pulls(&self) -> u64 {
        self.agg.num_pulls()
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_pushed() + self.bytes_pulled()
    }

    /// Bytes the server *materialised* for weight snapshots — one
    /// `Arc<[f32]>` build per new version, regardless of how many workers
    /// pull it. The gap between this and [`TrafficStats::bytes_pulled`] is
    /// the copying the zero-copy pull path avoids.
    pub fn bytes_copied(&self) -> u64 {
        self.agg.bytes_copied()
    }

    /// Bytes actually written to a transport (frame prefix included),
    /// counted by the networked server/client glue as frames go out.
    /// Zero for the pure in-process path, where no bytes are
    /// materialised — the gap between this and the protocol-level
    /// [`TrafficStats::bytes_pulled`]/[`TrafficStats::bytes_pushed`]
    /// estimates is exactly what moving to a real transport costs.
    pub fn bytes_sent(&self) -> u64 {
        self.agg.bytes_sent()
    }

    /// Bytes actually read from a transport (frame prefix included).
    pub fn bytes_received(&self) -> u64 {
        self.agg.bytes_received()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_telemetry::MemorySink;

    #[test]
    fn counters_accumulate() {
        let s = TrafficStats::new();
        s.record_push(100);
        s.record_push(50);
        s.record_pull(400);
        s.record_copy(400);
        s.record_copy(400);
        s.record_sent(1, 404);
        s.record_received(1, 104);
        assert_eq!(s.bytes_pushed(), 150);
        assert_eq!(s.bytes_pulled(), 400);
        assert_eq!(s.num_pushes(), 2);
        assert_eq!(s.num_pulls(), 1);
        assert_eq!(s.total_bytes(), 550);
        assert_eq!(s.bytes_copied(), 800);
        assert_eq!(s.bytes_sent(), 404);
        assert_eq!(s.bytes_received(), 104);
    }

    #[test]
    fn attached_sink_sees_the_same_events_the_counters_fold() {
        let mem = Arc::new(MemorySink::new());
        let s = TrafficStats::with_telemetry(Telemetry::new(mem.clone()));
        s.record_push(81);
        s.record_pull(33);
        s.record_sent(9, 21);
        assert_eq!(
            mem.events(),
            vec![
                Event::Push { bytes: 81 },
                Event::Pull { bytes: 33 },
                Event::FrameSent { conn: 9, bytes: 21 },
            ]
        );
        assert_eq!(s.bytes_pushed(), 81);
        assert_eq!(s.bytes_pulled(), 33);
        assert_eq!(s.bytes_sent(), 21);
    }
}
