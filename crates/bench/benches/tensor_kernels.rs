//! Math-kernel micro-benchmarks: the matmul and conv primitives that set
//! τ (computation time per iteration) in the real in-process trainer.

use cdsgd_tensor::{im2col, kernel, Conv2dGeom, SmallRng64, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let mut rng = SmallRng64::new(1);
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(
            BenchmarkId::new("nn", n),
            &(a.clone(), b.clone()),
            |bench, (a, b)| {
                bench.iter(|| a.matmul(b));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("nt", n),
            &(a.clone(), b.clone()),
            |bench, (a, b)| {
                bench.iter(|| a.matmul_nt(b));
            },
        );
        g.bench_with_input(BenchmarkId::new("tn", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| a.matmul_tn(b));
        });
    }
    g.finish();
}

/// Both kernel paths side by side: the dispatched entry runs whatever
/// backend `kernel::backend()` picked (AVX2 where available), while the
/// `scalar/...` entry calls the reference implementation directly — no
/// child process needed since `kernel::scalar` is public and bypasses
/// the cached dispatch.
fn bench_gemm_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_paths");
    for &n in &[64usize, 256, 512] {
        let mut rng = SmallRng64::new(3);
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        let id = format!("{}({})", kernel::backend().name(), "dispatch");
        g.bench_with_input(
            BenchmarkId::new(id, n),
            &(a.clone(), b.clone()),
            |bench, (a, b)| {
                let mut out = vec![0.0f32; n * n];
                bench.iter(|| {
                    out.fill(0.0);
                    kernel::gemm(a.data(), b.data(), &mut out, n, n, n);
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("scalar", n), &(a, b), |bench, (a, b)| {
            let mut out = vec![0.0f32; n * n];
            bench.iter(|| {
                out.fill(0.0);
                kernel::scalar::gemm_block(a.data(), b.data(), 0..n, &mut out, n, n);
            });
        });
    }
    g.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut g = c.benchmark_group("im2col");
    let geom = Conv2dGeom {
        c: 16,
        h: 32,
        w: 32,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let mut rng = SmallRng64::new(2);
    let img = Tensor::randn(&[16 * 32 * 32], 1.0, &mut rng);
    g.throughput(Throughput::Bytes((4 * img.len()) as u64));
    g.bench_function("c16_32x32_k3", |b| {
        b.iter(|| im2col(img.data(), &geom));
    });
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_gemm_paths, bench_im2col);
criterion_main!(benches);
