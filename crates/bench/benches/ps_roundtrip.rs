//! Parameter-server round-trip latency: one push+pull cycle per worker
//! count and payload size, raw vs 2-bit compressed.

use cdsgd_compress::{Compressed, GradientCompressor, TwoBitQuantizer};
use cdsgd_ps::{ParamServer, ServerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("ps_roundtrip");
    for &n in &[4_096usize, 262_144] {
        g.throughput(Throughput::Bytes((4 * n) as u64));
        g.bench_with_input(BenchmarkId::new("raw_1worker", n), &n, |b, &n| {
            let ps = ParamServer::start(vec![vec![0.0; n]], ServerConfig::new(1, 0.1));
            let client = ps.client();
            let grad = vec![0.01f32; n];
            let mut version = 0u64;
            b.iter(|| {
                // Pooled payload: reuses storage the server recycled
                // after decoding the previous round's push.
                let mut payload = client.pool().take_f32();
                payload.extend_from_slice(&grad);
                client.push(0, 0, Compressed::Raw(payload)).unwrap();
                version += 1;
                client.pull(0, version)
            });
            ps.shutdown();
        });
        g.bench_with_input(BenchmarkId::new("2bit_1worker", n), &n, |b, &n| {
            let ps = ParamServer::start(vec![vec![0.0; n]], ServerConfig::new(1, 0.1));
            let client = ps.client();
            let grad = vec![0.6f32; n];
            let mut q = TwoBitQuantizer::new(0.5);
            let mut version = 0u64;
            b.iter(|| {
                client
                    .push(0, 0, q.compress_into(0, &grad, client.pool()))
                    .unwrap();
                version += 1;
                client.pull(0, version)
            });
            ps.shutdown();
        });
    }

    // 4 worker threads pushing concurrently each iteration.
    g.bench_function("raw_4workers_64k", |b| {
        let n = 65_536usize;
        let ps = ParamServer::start(vec![vec![0.0; n]], ServerConfig::new(4, 0.1));
        let clients: Vec<_> = (0..4).map(|_| ps.client()).collect();
        let grad = vec![0.01f32; n];
        let mut version = 0u64;
        b.iter(|| {
            std::thread::scope(|s| {
                for (w, cl) in clients.iter().enumerate() {
                    let grad = &grad;
                    s.spawn(move || {
                        let mut payload = cl.pool().take_f32();
                        payload.extend_from_slice(grad);
                        cl.push(w, 0, Compressed::Raw(payload)).unwrap();
                    });
                }
            });
            version += 1;
            clients[0].pull(0, version)
        });
        ps.shutdown();
    });
    g.finish();
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);
