//! What the telemetry layer costs on the training hot path.
//!
//! Three variants of the same profiled CD-SGD epoch: telemetry
//! *disabled* (the `Telemetry::emit` fast path — the event closure is
//! never even run), a `NullSink` (every event constructed, then
//! dropped), and a `JsonlSink` (every event serialized to disk). The
//! disabled and null variants should be indistinguishable from each
//! other at epoch granularity; the JSONL variant pays for serialization
//! and buffered I/O. A second group measures the bare emit call.

use std::sync::Arc;

use cd_sgd::{Algorithm, Event, JsonlSink, NullSink, Telemetry, TrainConfig, Trainer};
use cdsgd_data::toy;
use cdsgd_nn::models;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("epoch_2workers_telemetry");
    g.sample_size(10);
    let data = toy::gaussian_blobs(640, 16, 4, 0.5, 3);
    let jsonl_path =
        std::env::temp_dir().join(format!("cdsgd_{}_bench_trace.jsonl", std::process::id()));

    let variants: Vec<(&str, Box<dyn Fn() -> Telemetry>)> = vec![
        ("disabled", Box::new(Telemetry::disabled)),
        ("null_sink", Box::new(|| Telemetry::new(Arc::new(NullSink)))),
        ("jsonl_sink", {
            let path = jsonl_path.clone();
            Box::new(move || {
                Telemetry::new(Arc::new(JsonlSink::create(&path).expect("create trace")))
            })
        }),
    ];
    for (name, make) in &variants {
        g.bench_function(*name, |b| {
            b.iter(|| {
                let cfg = TrainConfig::new(Algorithm::cd_sgd(0.05, 0.1, 5, 0), 2)
                    .with_lr(0.1)
                    .with_batch_size(32)
                    .with_epochs(1)
                    .with_seed(9)
                    .with_profiling(true)
                    .with_telemetry(make());
                Trainer::new(
                    cfg,
                    |rng| models::mlp(&[16, 64, 4], rng),
                    data.clone(),
                    None,
                )
                .run()
            });
        });
    }
    g.finish();
    std::fs::remove_file(&jsonl_path).ok();
}

fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("emit_one_event");
    let disabled = Telemetry::disabled();
    let null = Telemetry::new(Arc::new(NullSink));
    g.bench_function("disabled", |b| {
        b.iter(|| {
            disabled.emit(|| Event::Push {
                bytes: black_box(81),
            })
        })
    });
    g.bench_function("null_sink", |b| {
        b.iter(|| {
            null.emit(|| Event::Push {
                bytes: black_box(81),
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_epoch, bench_emit);
criterion_main!(benches);
