//! Ablation: the cost of the residual (error-feedback) buffer in the
//! 2-bit quantizer — encode time with and without error feedback, and
//! with cold vs warm residual state. (The *accuracy* side of this
//! ablation lives in the `ablation_accuracy` binary.)

use cdsgd_compress::{GradientCompressor, TwoBitQuantizer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_residual(c: &mut Criterion) {
    let mut g = c.benchmark_group("twobit_residual");
    let n = 1_048_576usize;
    let grad: Vec<f32> = (0..n).map(|i| ((i as f32 * 0.31).sin()) * 0.4).collect();
    g.throughput(Throughput::Bytes((4 * n) as u64));
    g.bench_with_input(BenchmarkId::new("with_residual", n), &grad, |b, grad| {
        let mut q = TwoBitQuantizer::new(0.5);
        q.compress(0, grad); // warm the buffer
        b.iter(|| q.compress(0, grad));
    });
    g.bench_with_input(BenchmarkId::new("without_residual", n), &grad, |b, grad| {
        let mut q = TwoBitQuantizer::new(0.5).with_residual(false);
        b.iter(|| q.compress(0, grad));
    });
    g.bench_with_input(BenchmarkId::new("cold_start", n), &grad, |b, grad| {
        b.iter(|| {
            let mut q = TwoBitQuantizer::new(0.5);
            q.compress(0, grad)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_residual);
criterion_main!(benches);
