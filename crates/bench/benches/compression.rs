//! Codec micro-benchmarks: encode/decode throughput of every gradient
//! compressor. The encode cost is the paper's δ — the overhead CD-SGD
//! hides; these numbers quantify it on this machine.

use cdsgd_compress::{
    decompress, GradientCompressor, NoCompression, OneBitQuantizer, QsgdQuantizer,
    TernGradQuantizer, TopKSparsifier, TwoBitQuantizer,
};
use cdsgd_tensor::kernel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SIZES: [usize; 2] = [65_536, 1_048_576];

fn gradient(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32 * 0.37).sin()) * 0.8).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    for &n in &SIZES {
        let grad = gradient(n);
        g.throughput(Throughput::Bytes((4 * n) as u64));
        g.bench_with_input(BenchmarkId::new("2bit", n), &grad, |b, grad| {
            let mut q = TwoBitQuantizer::new(0.5);
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("1bit", n), &grad, |b, grad| {
            let mut q = OneBitQuantizer::new();
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("terngrad", n), &grad, |b, grad| {
            let mut q = TernGradQuantizer::new(7);
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("qsgd4", n), &grad, |b, grad| {
            let mut q = QsgdQuantizer::new(4, 7);
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("topk1pct", n), &grad, |b, grad| {
            let mut q = TopKSparsifier::new(0.01);
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("raw", n), &grad, |b, grad| {
            let mut q = NoCompression;
            b.iter(|| q.compress(0, grad));
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    for &n in &SIZES {
        let grad = gradient(n);
        let mut q = TwoBitQuantizer::new(0.5);
        let payload = q.compress(0, &grad);
        g.throughput(Throughput::Bytes((4 * n) as u64));
        g.bench_with_input(BenchmarkId::new("2bit", n), &payload, |b, p| {
            let mut out = vec![0.0f32; n];
            b.iter(|| decompress(p, &mut out));
        });
    }
    g.finish();
}

/// The codec's primitive kernels on both paths: the dispatched entry is
/// whatever backend `kernel::backend()` selected, the `scalar/...` entry
/// calls the public reference implementation directly (no dispatch, no
/// child process).
fn bench_kernel_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_kernels");
    for &n in &SIZES {
        let grad = gradient(n);
        let symbols: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let mut packed = vec![0u8; n.div_ceil(4)];
        let mut syms = vec![0u8; n];
        let mut res = vec![0.0f32; n];
        let backend = kernel::backend().name();
        g.throughput(Throughput::Bytes((4 * n) as u64));
        g.bench_with_input(
            BenchmarkId::new(format!("pack_2bit/{backend}"), n),
            &symbols,
            |b, s| {
                let mut out = vec![0u8; n.div_ceil(4)];
                b.iter(|| kernel::pack_2bit(s, &mut out));
            },
        );
        g.bench_with_input(BenchmarkId::new("pack_2bit/scalar", n), &symbols, |b, s| {
            let mut out = vec![0u8; n.div_ceil(4)];
            b.iter(|| kernel::scalar::pack_2bit(s, &mut out));
        });
        kernel::pack_2bit(&symbols, &mut packed);
        g.bench_with_input(
            BenchmarkId::new(format!("unpack_2bit/{backend}"), n),
            &packed,
            |b, p| {
                let mut out = vec![0u8; n];
                b.iter(|| kernel::unpack_2bit(p, &mut out));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("unpack_2bit/scalar", n),
            &packed,
            |b, p| {
                let mut out = vec![0u8; n];
                b.iter(|| kernel::scalar::unpack_2bit(p, &mut out));
            },
        );
        g.bench_with_input(
            BenchmarkId::new(format!("residual_scan/{backend}"), n),
            &grad,
            |b, grad| {
                b.iter(|| kernel::threshold_scan_residual(grad, 0.5, &mut syms, &mut res));
            },
        );
        let mut syms2 = vec![0u8; n];
        let mut res2 = vec![0.0f32; n];
        g.bench_with_input(
            BenchmarkId::new("residual_scan/scalar", n),
            &grad,
            |b, grad| {
                b.iter(|| {
                    kernel::scalar::threshold_scan_residual(grad, 0.5, &mut syms2, &mut res2)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_kernel_paths);
criterion_main!(benches);
