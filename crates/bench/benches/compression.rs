//! Codec micro-benchmarks: encode/decode throughput of every gradient
//! compressor. The encode cost is the paper's δ — the overhead CD-SGD
//! hides; these numbers quantify it on this machine.

use cdsgd_compress::{
    decompress, GradientCompressor, NoCompression, OneBitQuantizer, QsgdQuantizer,
    TernGradQuantizer, TopKSparsifier, TwoBitQuantizer,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SIZES: [usize; 2] = [65_536, 1_048_576];

fn gradient(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32 * 0.37).sin()) * 0.8).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    for &n in &SIZES {
        let grad = gradient(n);
        g.throughput(Throughput::Bytes((4 * n) as u64));
        g.bench_with_input(BenchmarkId::new("2bit", n), &grad, |b, grad| {
            let mut q = TwoBitQuantizer::new(0.5);
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("1bit", n), &grad, |b, grad| {
            let mut q = OneBitQuantizer::new();
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("terngrad", n), &grad, |b, grad| {
            let mut q = TernGradQuantizer::new(7);
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("qsgd4", n), &grad, |b, grad| {
            let mut q = QsgdQuantizer::new(4, 7);
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("topk1pct", n), &grad, |b, grad| {
            let mut q = TopKSparsifier::new(0.01);
            b.iter(|| q.compress(0, grad));
        });
        g.bench_with_input(BenchmarkId::new("raw", n), &grad, |b, grad| {
            let mut q = NoCompression;
            b.iter(|| q.compress(0, grad));
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    for &n in &SIZES {
        let grad = gradient(n);
        let mut q = TwoBitQuantizer::new(0.5);
        let payload = q.compress(0, &grad);
        g.throughput(Throughput::Bytes((4 * n) as u64));
        g.bench_with_input(BenchmarkId::new("2bit", n), &payload, |b, p| {
            let mut out = vec![0.0f32; n];
            b.iter(|| decompress(p, &mut out));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
