//! End-to-end iteration time of each distributed algorithm on the real
//! in-process stack (2 workers, small MLP): measures the actual cost of
//! one synchronized round including compression and the PS round-trip.

use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cdsgd_data::toy;
use cdsgd_nn::models;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_epoch_2workers");
    g.sample_size(10);
    let data = toy::gaussian_blobs(640, 16, 4, 0.5, 3);
    for algo in [
        Algorithm::SSgd,
        Algorithm::OdSgd { local_lr: 0.05 },
        Algorithm::BitSgd { threshold: 0.1 },
        Algorithm::cd_sgd(0.05, 0.1, 5, 0),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &algo,
            |b, algo| {
                b.iter(|| {
                    let cfg = TrainConfig::new(algo.clone(), 2)
                        .with_lr(0.1)
                        .with_batch_size(32)
                        .with_epochs(1)
                        .with_seed(9);
                    Trainer::new(
                        cfg,
                        |rng| models::mlp(&[16, 64, 4], rng),
                        data.clone(),
                        None,
                    )
                    .run()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
