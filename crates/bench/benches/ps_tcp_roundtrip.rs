//! Parameter-server round-trip over a real localhost TCP socket: one
//! push+pull cycle per payload size, raw vs 2-bit compressed. The
//! in-process twin is `ps_roundtrip`; the delta between the two is the
//! full wire cost — encode, frame, kernel socket hop, decode.

use cdsgd_compress::{Compressed, GradientCompressor, TwoBitQuantizer};
use cdsgd_net::NetConfig;
use cdsgd_ps::{NetCluster, PsBackend, ServerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn tcp_cluster(n: usize) -> NetCluster {
    NetCluster::start_tcp_local(
        vec![vec![0.0; n]],
        ServerConfig::new(1, 0.1),
        1,
        NetConfig::default(),
    )
    .expect("start TCP shard")
}

fn bench_tcp_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("ps_tcp_roundtrip");
    for &n in &[4_096usize, 262_144] {
        g.throughput(Throughput::Bytes((4 * n) as u64));
        g.bench_with_input(BenchmarkId::new("raw_1worker", n), &n, |b, &n| {
            let cluster = tcp_cluster(n);
            let client = cluster.client().expect("connect");
            let grad = vec![0.01f32; n];
            let mut version = 0u64;
            b.iter(|| {
                let mut payload = client.pool().take_f32();
                payload.extend_from_slice(&grad);
                client.push(0, 0, Compressed::Raw(payload)).unwrap();
                version += 1;
                client.pull(0, version).unwrap()
            });
            drop(client);
            Box::new(cluster).shutdown();
        });
        g.bench_with_input(BenchmarkId::new("2bit_1worker", n), &n, |b, &n| {
            let cluster = tcp_cluster(n);
            let client = cluster.client().expect("connect");
            let grad = vec![0.6f32; n];
            let mut q = TwoBitQuantizer::new(0.5);
            let mut version = 0u64;
            b.iter(|| {
                client
                    .push(0, 0, q.compress_into(0, &grad, client.pool()))
                    .unwrap();
                version += 1;
                client.pull(0, version).unwrap()
            });
            drop(client);
            Box::new(cluster).shutdown();
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tcp_roundtrip);
criterion_main!(benches);
