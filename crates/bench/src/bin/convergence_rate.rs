//! Theorem 2 — empirical O(1/√K + 1/K) convergence-rate check on convex
//! distributed logistic regression with exact eq. 10/11 update rules.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin convergence_rate
//!         [--workers 4] [--kstep 2]`

use cd_sgd::convergence::rate_sweep;
use cdsgd_bench::arg_usize;

fn main() {
    let workers = arg_usize("workers", 4);
    let kstep = arg_usize("kstep", 2);
    let ks = [50usize, 100, 200, 400, 800, 1_600, 3_200, 6_400];

    println!("== Theorem 2: L(mean_k w_k) - L(w*) vs K, CD-SGD on convex logistic regression ==");
    println!("(N={workers} workers, k-step={kstep}, eta = 1/sqrt(K))\n");
    println!(
        "{:>8} {:>16} {:>16} {:>12}",
        "K", "suboptimality", "bound 1/sqrt(K)+1/K", "ratio"
    );
    let pts = rate_sweep(&ks, workers, kstep, 2024);
    // Normalize the reference bound through the first point.
    let bound = |k: usize| 1.0 / (k as f64).sqrt() + 1.0 / k as f64;
    let c = pts[0].suboptimality / bound(pts[0].k_iters);
    for p in &pts {
        println!(
            "{:>8} {:>16.6} {:>16.6} {:>12.3}",
            p.k_iters,
            p.suboptimality,
            c * bound(p.k_iters),
            p.suboptimality / (c * bound(p.k_iters)),
        );
    }
    println!("\n(a bounded ratio that returns toward 1 as K grows means the measured rate");
    println!(" is O(1/sqrt(K) + 1/K) up to a constant — Theorem 2's claim)");
}
