//! Fig. 10 — speedup ratio of OD-SGD, BIT-SGD and CD-SGD over the S-SGD
//! baseline on the paper's four models (ResNet-50, AlexNet, VGG-16,
//! Inception-bn), 4×4-GPU nodes, k=5:
//!
//! * (a) batch 32 per GPU on the K80 cluster
//! * (b) batch 32 per GPU on the V100 cluster
//! * (c) batch 64 per GPU on the V100 cluster
//! * (d) batch 128 per GPU on the V100 cluster
//!
//! Expected shape: comm-heavy models (AlexNet, VGG-16) gain most; the
//! K80's slow compute shrinks every gap; larger batches shrink CD-SGD's
//! advantage (computation becomes the bottleneck).
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin fig10_speedup [--k 5]`

use cdsgd_bench::arg_usize;
use cdsgd_simtime::pipeline::{AlgoKind, PipelineSim};
use cdsgd_simtime::{zoo, ClusterSpec};

fn panel(title: &str, cluster: &ClusterSpec, batch: usize, k: usize) {
    println!("-- {title} (k={k}) --");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "model", "OD-SGD", "BIT-SGD", "CD-SGD", "ssgd_iter_ms"
    );
    for model in zoo::fig10_models() {
        let sim = PipelineSim::new(&model, cluster, batch);
        let ssgd = sim.run(AlgoKind::Ssgd, 42).avg_iter_time;
        let speedup = |algo: AlgoKind, iters: usize| -> f64 {
            ssgd / sim.run(algo, iters).avg_iter_time - 1.0
        };
        println!(
            "{:<14} {:>9.0}% {:>9.0}% {:>9.0}% {:>12.2}",
            model.name,
            100.0 * speedup(AlgoKind::OdSgd, 42),
            100.0 * speedup(AlgoKind::BitSgd, 42),
            100.0 * speedup(AlgoKind::CdSgd { k }, 2 + 10 * k),
            ssgd * 1e3,
        );
    }
    println!();
}

fn main() {
    let k = arg_usize("k", 5);
    println!("== Fig. 10: speedup over S-SGD, 4 nodes x 4 GPUs, 56 Gbps IB ==\n");
    panel(
        "(a) batch 32 per GPU, K80",
        &ClusterSpec::k80_cluster(),
        32,
        k,
    );
    panel(
        "(b) batch 32 per GPU, V100",
        &ClusterSpec::v100_cluster(),
        32,
        k,
    );
    panel(
        "(c) batch 64 per GPU, V100",
        &ClusterSpec::v100_cluster(),
        64,
        k,
    );
    panel(
        "(d) batch 128 per GPU, V100",
        &ClusterSpec::v100_cluster(),
        128,
        k,
    );
    println!("paper CD-SGD speedups: (a) 0/43/33/32%  (b) 24/43/39/44%  (c) 28/35/71/89%  (d) 3/45/2/89%");
    println!("(order: ResNet-50, AlexNet, VGG-16, Inception-bn; expected shape, not exact values)");
}
