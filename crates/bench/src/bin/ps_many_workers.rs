//! Connection-count scaling of the event-loop parameter server: one
//! shard, N concurrent TCP workers, synchronous rounds. Sweeps N and
//! records wall-clock per round, aggregate push throughput, and the
//! server's IO-thread count (which must stay flat — the point of the
//! readiness-polling redesign) into `BENCH_ps_many_workers.json`.
//!
//! ```text
//! cargo run --release -p cdsgd-bench --bin ps_many_workers \
//!     [--rounds 20] [--key-len 1024] [--max-workers 128]
//! ```

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use cdsgd_bench::arg_usize;
use cdsgd_compress::Compressed;
use cdsgd_net::{NetConfig, TcpAcceptor};
use cdsgd_ps::{NetCluster, PsBackend, PsNetServer, ServerConfig};

fn main() {
    let rounds = arg_usize("rounds", 20) as u64;
    let key_len = arg_usize("key-len", 1024);
    let max_workers = arg_usize("max-workers", 128);

    let sweep: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .filter(|&n| n <= max_workers)
        .collect();

    println!(
        "== parameter-server connection scaling: {rounds} rounds, {key_len}-float key, \
         TCP localhost ==\n"
    );
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>11} {:>9}",
        "workers", "elapsed_s", "rounds_per_s", "pushes_per_s", "io_threads", "rejected"
    );

    let mut records = Vec::new();
    for &workers in &sweep {
        let server = PsNetServer::start(vec![vec![0.0; key_len]], ServerConfig::new(workers, 0.2));
        let (acceptor, addr) =
            TcpAcceptor::bind(("127.0.0.1", 0), NetConfig::default()).expect("bind");
        server.listen(acceptor);
        let addr = Arc::new(addr.to_string());

        // Connect everyone first so the timed window measures rounds,
        // not TCP handshakes.
        let barrier = Arc::new(std::sync::Barrier::new(workers + 1));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let addr = Arc::clone(&addr);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let cluster =
                        NetCluster::connect(std::slice::from_ref(&addr), 1, NetConfig::default())
                            .expect("connect");
                    let client = cluster.client().expect("open connection");
                    barrier.wait();
                    for round in 0..rounds {
                        client
                            .push(w, 0, Compressed::Raw(vec![0.01; key_len]))
                            .expect("push");
                        client.pull(0, round + 1).expect("pull");
                    }
                    barrier.wait();
                })
            })
            .collect();

        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        let elapsed = start.elapsed().as_secs_f64();
        for h in handles {
            h.join().expect("worker thread");
        }

        let rounds_per_s = rounds as f64 / elapsed;
        let pushes_per_s = (rounds * workers as u64) as f64 / elapsed;
        let io_threads = server.io_threads();
        let rejected = server.rejected_connections();
        server.shutdown();

        println!(
            "{workers:>8} {elapsed:>10.3} {rounds_per_s:>12.1} {pushes_per_s:>14.1} \
             {io_threads:>11} {rejected:>9}"
        );
        records.push(serde_json::json!({
            "workers": workers,
            "rounds": rounds,
            "key_len": key_len,
            "elapsed_s": elapsed,
            "rounds_per_s": rounds_per_s,
            "pushes_per_s": pushes_per_s,
            "io_threads": io_threads,
            "rejected_connections": rejected,
        }));
    }

    let out = serde_json::json!({
        "bench": "ps_many_workers",
        "transport": "tcp_localhost",
        "records": records,
    });
    let path = "BENCH_ps_many_workers.json";
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize"))
        .expect("write BENCH json");
    println!("\nwrote {path}");
}
