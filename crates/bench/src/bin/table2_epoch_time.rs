//! Table 2 — average epoch wall-clock time of ResNet-20 on CIFAR-10:
//! S-SGD, BIT-SGD and CD-SGD at k ∈ {2, 5, 10, 20}, on 2 and 4 nodes.
//!
//! The paper's observation: on K80 computation is the bottleneck, so k
//! has no effect on speed, and CD-SGD's advantage comes purely from
//! overlapping computation with communication.
//!
//! Two reproductions are printed:
//! 1. **Simulated** epoch times from the timing substrate at the paper's
//!    actual scale (ResNet-20, K80 cluster, 50k CIFAR images).
//! 2. **Measured** epoch times from the real in-process trainer on the
//!    CPU-scaled workload (shape check: CD/OD ≤ BIT ≤ S-SGD; k flat).
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin table2_epoch_time
//!         [--epochs 3] [--samples 2000] [--skip-measured]`

use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cdsgd_bench::{arg_flag, arg_usize};
use cdsgd_data::synth;
use cdsgd_nn::models;
use cdsgd_simtime::pipeline::{AlgoKind, PipelineSim};
use cdsgd_simtime::{zoo, ClusterSpec};

fn simulated_row(nodes: usize) -> Vec<(String, f64)> {
    let cluster = ClusterSpec::k80_cluster().with_single_gpu_nodes(nodes);
    let model = zoo::resnet20();
    let sim = PipelineSim::new(&model, &cluster, 32);
    // 50_000 CIFAR images split across nodes at batch 32 per worker.
    let iters_per_epoch = 50_000 / nodes / 32;
    let algos: Vec<(String, AlgoKind)> = vec![
        ("SSGD".into(), AlgoKind::Ssgd),
        ("BIT-SGD".into(), AlgoKind::BitSgd),
        ("k2".into(), AlgoKind::CdSgd { k: 2 }),
        ("k5".into(), AlgoKind::CdSgd { k: 5 }),
        ("k10".into(), AlgoKind::CdSgd { k: 10 }),
        ("k20".into(), AlgoKind::CdSgd { k: 20 }),
    ];
    algos
        .into_iter()
        .map(|(name, algo)| {
            let iters = match algo {
                AlgoKind::CdSgd { k } => 2 + 10 * k,
                _ => 42,
            };
            let avg = sim.run(algo, iters).avg_iter_time;
            (name, avg * iters_per_epoch as f64)
        })
        .collect()
}

fn main() {
    println!("== Table 2 (simulated): average epoch wall-clock of ResNet-20 on the K80 cluster (seconds) ==");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "config", "SSGD", "BIT-SGD", "k2", "k5", "k10", "k20"
    );
    for nodes in [4usize, 2] {
        let row = simulated_row(nodes);
        print!("{:<22}", format!("Resnet20({nodes}nodes)"));
        for (_, t) in &row {
            print!(" {t:>8.2}");
        }
        println!();
    }
    println!("paper: Resnet20(4nodes) 2.24 2.22 1.79 1.78 1.78 1.76");
    println!("paper: Resnet20(2nodes) 4.32 3.61 3.48 3.44 3.46 3.44");
    println!("(expected shape: CD-SGD < BIT-SGD ≤ S-SGD; k has no effect on speed)\n");

    if arg_flag("skip-measured") {
        return;
    }

    println!("== Table 2 (measured, CPU-scaled): real threaded training, ResNet-20-lite ==");
    let epochs = arg_usize("epochs", 3);
    let samples = arg_usize("samples", 2_000);
    let data = synth::cifar_like(samples, 5);
    let (train, _) = data.split(1.0);

    for workers in [2usize, 4] {
        let warmup = (train.len() / workers / 32).max(1);
        let algos: Vec<(String, Algorithm)> = vec![
            ("SSGD".into(), Algorithm::SSgd),
            ("BIT-SGD".into(), Algorithm::BitSgd { threshold: 0.5 }),
            ("k2".into(), Algorithm::cd_sgd(0.05, 0.5, 2, warmup)),
            ("k5".into(), Algorithm::cd_sgd(0.05, 0.5, 5, warmup)),
            ("k10".into(), Algorithm::cd_sgd(0.05, 0.5, 10, warmup)),
            ("k20".into(), Algorithm::cd_sgd(0.05, 0.5, 20, warmup)),
        ];
        print!("{:<22}", format!("Resnet20-lite({workers}w)"));
        for (_, algo) in &algos {
            let cfg = TrainConfig::new(algo.clone(), workers)
                .with_lr(0.4)
                .with_batch_size(32)
                .with_epochs(epochs)
                .with_seed(5);
            let t = Trainer::new(
                cfg,
                |rng| models::resnet_cifar(8, 1, 10, rng),
                train.clone(),
                None,
            )
            .run();
            print!(" {:>8.2}", t.avg_epoch_time());
        }
        println!();
    }
}
