//! Kernel-layer dispatch sweep: the same primitive ops timed on the
//! scalar reference, the SIMD backend, and SIMD + rayon tiling, across
//! gradient sizes from 4 Ki to 1 Mi elements. Emits `BENCH_kernels.json`
//! and prints a speedup table.
//!
//! The backend choice is cached per process (`CDSGD_FORCE_SCALAR` is
//! read once), so each mode runs in a child process: the parent
//! re-executes this binary with the right environment and merges the
//! JSON each child prints.
//!
//! ```text
//! cargo run --release -p cdsgd-bench --bin kernels [--iters 7]
//! ```

use std::hint::black_box;
use std::process::Command;
use std::time::Instant;

use cdsgd_bench::arg_usize;
use cdsgd_tensor::kernel;

const CHILD_ENV: &str = "CDSGD_KERNELS_CHILD";
const MARKER: &str = "KERNELS_JSON ";

/// Element counts swept, with display labels.
const SIZES: [(usize, &str); 4] = [
    (4 * 1024, "4Ki"),
    (64 * 1024, "64Ki"),
    (256 * 1024, "256Ki"),
    (1024 * 1024, "1Mi"),
];

const OPS: [&str; 5] = [
    "gemm",
    "pack_2bit",
    "unpack_2bit",
    "residual",
    "apply_update",
];

/// The three dispatch modes, with the environment that selects each.
/// `CDSGD_PAR_THRESHOLD=off` isolates SIMD from tiling; the last mode
/// leaves the defaults so rayon engages on the sizes over the threshold.
const MODES: [(&str, &[(&str, &str)]); 3] = [
    (
        "scalar",
        &[("CDSGD_FORCE_SCALAR", "1"), ("CDSGD_PAR_THRESHOLD", "off")],
    ),
    ("simd", &[("CDSGD_PAR_THRESHOLD", "off")]),
    ("simd+rayon", &[]),
];

fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            // Centered in [-1, 1): symbols fire on both threshold sides.
            (s >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// Median wall-clock seconds over `iters` runs of `f`.
fn median_s(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// One mode's measurements: a record per (op, size).
fn run_child(iters: usize) -> Vec<serde_json::Value> {
    let mut records = Vec::new();
    for (n, label) in SIZES {
        // GEMM over square matrices whose output has n elements.
        let side = (n as f64).sqrt() as usize;
        let a = pseudo(side * side, 11);
        let b = pseudo(side * side, 23);
        let mut c = vec![0.0f32; side * side];
        // Scalar 1024^3 GEMM runs ~seconds per iteration; fewer
        // repetitions keep the sweep tractable without losing the median.
        let gemm_iters = if side >= 512 { 3.min(iters) } else { iters };
        let gemm_s = median_s(gemm_iters, || {
            kernel::gemm(black_box(&a), black_box(&b), &mut c, side, side, side);
            black_box(&c);
        });
        records.push(serde_json::json!({
            "op": "gemm", "n": n, "label": label, "median_s": gemm_s,
            "work": format!("{side}x{side}x{side}"),
        }));

        let symbols: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let mut packed = vec![0u8; n.div_ceil(4)];
        let pack_s = median_s(iters, || {
            kernel::pack_2bit(black_box(&symbols), &mut packed);
            black_box(&packed);
        });
        records.push(serde_json::json!({
            "op": "pack_2bit", "n": n, "label": label, "median_s": pack_s,
        }));

        let mut unpacked = vec![0u8; n];
        let unpack_s = median_s(iters, || {
            kernel::unpack_2bit(black_box(&packed), &mut unpacked);
            black_box(&unpacked);
        });
        records.push(serde_json::json!({
            "op": "unpack_2bit", "n": n, "label": label, "median_s": unpack_s,
        }));

        // The 2-bit codec's hot loop: threshold scan + residual update.
        let grad = pseudo(n, 37);
        let mut syms = vec![0u8; n];
        let mut res = vec![0.0f32; n];
        let residual_s = median_s(iters, || {
            kernel::threshold_scan_residual(black_box(&grad), 0.5, &mut syms, &mut res);
            black_box(&res);
        });
        records.push(serde_json::json!({
            "op": "residual", "n": n, "label": label, "median_s": residual_s,
        }));

        // The server's apply path: w - step * g into a fresh snapshot.
        let w = pseudo(n, 53);
        let g = pseudo(n, 71);
        let mut next = vec![0.0f32; n];
        let apply_s = median_s(iters, || {
            kernel::sgd_step(&mut next, black_box(&w), black_box(&g), 0.01);
            black_box(&next);
        });
        records.push(serde_json::json!({
            "op": "apply_update", "n": n, "label": label, "median_s": apply_s,
        }));
    }
    records
}

fn median_of(records: &[serde_json::Value], op: &str, n: usize) -> Option<f64> {
    records.iter().find_map(|r| {
        (r["op"].as_str() == Some(op) && r["n"].as_u64() == Some(n as u64))
            .then(|| r["median_s"].as_f64())
            .flatten()
    })
}

fn main() {
    let iters = arg_usize("iters", 7);

    if std::env::var(CHILD_ENV).is_ok() {
        let out = serde_json::json!({
            "backend": kernel::backend().name(),
            "records": run_child(iters),
        });
        println!(
            "{MARKER}{}",
            serde_json::to_string(&out).expect("serialize")
        );
        return;
    }

    let exe = std::env::current_exe().expect("bench binary path");
    let mut modes = Vec::new();
    for (mode, env) in MODES {
        let mut cmd = Command::new(&exe);
        cmd.args(["--iters", &iters.to_string()])
            .env(CHILD_ENV, "1")
            .env_remove("CDSGD_FORCE_SCALAR")
            .env_remove("CDSGD_PAR_THRESHOLD");
        for (k, v) in env {
            cmd.env(k, v);
        }
        eprintln!("running mode {mode} ...");
        let out = cmd.output().expect("spawn child");
        assert!(
            out.status.success(),
            "mode {mode} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find_map(|l| l.strip_prefix(MARKER))
            .unwrap_or_else(|| panic!("mode {mode}: no {MARKER} line in child output"));
        let parsed: serde_json::Value = serde_json::from_str(line).expect("child JSON");
        modes.push((mode, parsed));
    }

    // Comparison table: per (op, size), median seconds per mode and the
    // speedup of each non-scalar mode over the scalar reference.
    println!(
        "{:>14} {:>7} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "op", "size", "scalar_s", "simd_s", "simd+ray_s", "simd_x", "ray_x"
    );
    let scalar = modes[0].1["records"].as_array().expect("records").clone();
    let simd = modes[1].1["records"].as_array().expect("records").clone();
    let rayon = modes[2].1["records"].as_array().expect("records").clone();
    for op in OPS {
        for (n, label) in SIZES {
            let s = median_of(&scalar, op, n).unwrap_or(f64::NAN);
            let v = median_of(&simd, op, n).unwrap_or(f64::NAN);
            let r = median_of(&rayon, op, n).unwrap_or(f64::NAN);
            println!(
                "{op:>14} {label:>7} {s:>12.6} {v:>12.6} {r:>12.6} {:>8.2} {:>8.2}",
                s / v,
                s / r
            );
        }
    }

    let out = serde_json::json!({
        "bench": "kernels",
        "sizes": SIZES.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        "iters": iters,
        "modes": modes
            .iter()
            .map(|(mode, v)| {
                serde_json::json!({
                    "mode": *mode,
                    "backend": v["backend"].clone(),
                    "records": v["records"].clone(),
                })
            })
            .collect::<Vec<_>>(),
    });
    let path = "BENCH_kernels.json";
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize"))
        .expect("write BENCH json");
    println!("\nwrote {path}");
}
