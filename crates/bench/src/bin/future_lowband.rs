//! Future work (paper §6): "we plan to evaluate CD-SGD on larger
//! computer clusters with low bandwidth environment" — done here with the
//! timing substrate: cluster-size × bandwidth sweep of CD-SGD's speedup
//! over S-SGD and BIT-SGD on ResNet-50.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin future_lowband [--k 5]`

use cdsgd_bench::arg_usize;
use cdsgd_simtime::pipeline::{AlgoKind, PipelineSim};
use cdsgd_simtime::{zoo, ClusterSpec};

fn main() {
    let k = arg_usize("k", 5);
    let model = zoo::resnet50();
    println!("== Future work: ResNet-50, V100 nodes, cluster-size x bandwidth sweep (k={k}) ==\n");
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "nodes", "gbps", "ssgd_ms", "bit_ms", "cd_ms", "cd_vs_ssgd", "cd_vs_bit"
    );
    for nodes in [4usize, 8, 16, 32] {
        for gbps in [1.0f64, 10.0, 56.0] {
            let cluster = ClusterSpec {
                nodes,
                ..ClusterSpec::v100_cluster()
            }
            .with_bandwidth_gbps(gbps);
            let sim = PipelineSim::new(&model, &cluster, 32);
            let ssgd = sim.run(AlgoKind::Ssgd, 42).avg_iter_time;
            let bit = sim.run(AlgoKind::BitSgd, 42).avg_iter_time;
            let cd = sim.run(AlgoKind::CdSgd { k }, 2 + 10 * k).avg_iter_time;
            println!(
                "{:>7} {:>9} {:>12.1} {:>12.1} {:>12.1} {:>13.0}% {:>13.0}%",
                nodes,
                gbps,
                ssgd * 1e3,
                bit * 1e3,
                cd * 1e3,
                (ssgd / cd - 1.0) * 100.0,
                (bit / cd - 1.0) * 100.0,
            );
        }
    }
    println!("\n(expected: CD-SGD's advantage grows as bandwidth shrinks and the cluster grows;");
    println!(" at 1 Gbps even the k-step correction round dominates — larger k pays off there)");
}
