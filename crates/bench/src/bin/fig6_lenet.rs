//! Fig. 6 — learning curves of LeNet-5 on the MNIST-like workload.
//!
//! Paper setting: global lr 0.1, local lr 0.4 (CD/OD), threshold 0.5,
//! batch 32/GPU, k=2; train/test accuracy for M=2 and M=4 workers. The
//! expected shape: BIT-SGD converges visibly worse; CD-SGD matches (or
//! slightly beats) S-SGD and OD-SGD.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin fig6_lenet
//!         [--workers 2] [--epochs 8] [--samples 4000]`

use cdsgd_bench::{arg_f32, arg_usize, paper_algorithms, CurveSpec};
use cdsgd_data::synth;
use cdsgd_nn::models;

fn main() {
    let workers = arg_usize("workers", 2);
    let epochs = arg_usize("epochs", 8);
    // The paper uses local lr 0.4 on real MNIST; our synthetic stand-in
    // has different gradient scales and needs 0.1 for the same shape.
    let local_lr = arg_f32("local-lr", 0.1);
    let samples = arg_usize("samples", 4_000);

    let data = synth::mnist_like(samples, 42);
    let (train, test) = data.split(0.85);

    let spec = CurveSpec {
        title: format!("Fig. 6: LeNet-5 on MNIST-like, M={workers}"),
        workers,
        epochs,
        batch: 32,
        global_lr: 0.1,
        seed: 42,
        augment: false,
        lr_schedule: vec![],
    };
    // Paper: local lr 0.4, threshold 0.5, k=2; warm-up sized to ~one epoch
    // of the smallest shard.
    let warmup = (train.len() / workers / 32).max(1);
    let algos = paper_algorithms(local_lr, 0.5, 2, warmup);
    spec.run(&algos, |rng| models::lenet5(10, rng), &train, &test);

    println!(
        "paper reference (MNIST, M=2): S-SGD 99.15%, CD-SGD 99.14%, OD-SGD 99.12%, BIT-SGD <99%"
    );
}
