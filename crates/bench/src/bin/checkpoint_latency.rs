//! Durable-checkpoint latency (DESIGN.md §14): how long does one shard
//! snapshot (encode + write + fsync + atomic rename) and one restore
//! (scan the manifest, read, verify the checksum, decode) take, as the
//! model grows? The write sits on the server's round path when
//! `--checkpoint-every` is armed, so its cost is the price of a
//! recovery point; the restore bounds `psd --resume` startup delay.
//! Sweeps model sizes, reports per-op latency and throughput, and
//! records everything into `BENCH_checkpoint.json`.
//!
//! ```text
//! cargo run --release -p cdsgd-bench --bin checkpoint_latency \
//!     [--iters 20] [--keys 16] [--max-floats 4194304]
//! ```

use std::time::Instant;

use cd_sgd::WorkerCheckpoint;
use cdsgd_bench::arg_usize;
use cdsgd_ps::recover::{load_latest, ShardCheckpoint};

/// Median of timed runs, in seconds.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let iters = arg_usize("iters", 20);
    let keys = arg_usize("keys", 16);
    let max_floats = arg_usize("max-floats", 4 << 20);

    let dir = std::env::temp_dir().join(format!("cdsgd_bench_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let sweep: Vec<usize> = [1usize << 10, 1 << 14, 1 << 18, 1 << 20, 4 << 20]
        .into_iter()
        .filter(|&n| n <= max_floats)
        .collect();

    println!("== checkpoint write/restore latency: {keys} keys, {iters} iters, median ==\n");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "floats", "bytes", "save_ms", "save_MBps", "restore_ms", "worker_ms"
    );

    let mut records = Vec::new();
    for &floats in &sweep {
        let key_len = floats / keys;
        let weights: Vec<Vec<f32>> = (0..keys).map(|k| vec![k as f32 * 0.5; key_len]).collect();
        let opt_state: Vec<Vec<f32>> = weights.iter().map(|w| vec![0.1; w.len()]).collect();
        let ckpt = ShardCheckpoint {
            shard: 0,
            num_shards: 1,
            round: 0,
            weights,
            opt_state,
        };
        let bytes = ckpt.encode().len();

        // Server-side snapshot: the atomic tmp + fsync + rename path the
        // shard runs at each armed round boundary. Bump the round per
        // iteration so every save creates a fresh manifest entry and the
        // final restore scans a realistically populated directory.
        let mut save_s = Vec::with_capacity(iters);
        let mut round_ckpt = ckpt.clone();
        for i in 0..iters {
            round_ckpt.round = i as u64;
            let t = Instant::now();
            round_ckpt.save_atomic(&dir).expect("save shard checkpoint");
            save_s.push(t.elapsed().as_secs_f64());
        }

        // Restore: exactly what `psd --resume` does at startup.
        let mut restore_s = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            let loaded = load_latest(&dir, 0, 1)
                .expect("load latest")
                .expect("checkpoint exists");
            restore_s.push(t.elapsed().as_secs_f64());
            assert_eq!(loaded.round, (iters - 1) as u64);
        }

        // Worker-side private-state snapshot (model + strategy buffers),
        // written once per epoch when `worker --checkpoint-dir` is set.
        let mut worker_s = Vec::with_capacity(iters);
        let wkpt = WorkerCheckpoint {
            worker: 0,
            num_workers: 1,
            epoch: 0,
            round: 0,
            model: ckpt.weights.clone(),
            strategy: ckpt.opt_state.clone(),
        };
        for _ in 0..iters {
            let t = Instant::now();
            wkpt.save_atomic(&dir).expect("save worker checkpoint");
            worker_s.push(t.elapsed().as_secs_f64());
        }

        let (save, restore, worker) = (median(save_s), median(restore_s), median(worker_s));
        let save_mbps = bytes as f64 / save / 1e6;
        println!(
            "{floats:>12} {bytes:>10} {:>12.3} {save_mbps:>12.1} {:>12.3} {:>12.3}",
            save * 1e3,
            restore * 1e3,
            worker * 1e3
        );
        records.push(serde_json::json!({
            "floats": floats,
            "keys": keys,
            "encoded_bytes": bytes,
            "save_ms": save * 1e3,
            "save_mbytes_per_s": save_mbps,
            "restore_ms": restore * 1e3,
            "worker_save_ms": worker * 1e3,
        }));

        std::fs::remove_dir_all(&dir).expect("clear checkpoint dir");
    }

    let out = serde_json::json!({
        "bench": "checkpoint",
        "iters": iters,
        "records": records,
    });
    let path = "BENCH_checkpoint.json";
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize"))
        .expect("write BENCH json");
    println!("\nwrote {path}");
}
