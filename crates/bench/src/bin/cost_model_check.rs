//! Eqs. 2, 4–9 — cross-check of the paper's closed-form time-cost model
//! against the discrete-event simulator, plus the eq. 8/9 case tables.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin cost_model_check`

use cdsgd_simtime::pipeline::{AlgoKind, PipelineSim};
use cdsgd_simtime::zoo::{LayerSpec, ModelSpec};
use cdsgd_simtime::{ClusterSpec, CostInputs, CostModel};

fn single_layer(params: u64, thr: f64) -> ModelSpec {
    ModelSpec {
        name: "single".into(),
        layers: vec![LayerSpec {
            name: "all".into(),
            params,
            flops_fwd: 1e9,
        }],
        throughput: (thr, thr),
    }
}

fn main() {
    println!("== Closed-form (eqs. 2,4-7) vs discrete-event simulator ==");
    println!("single-layer models eliminate pipelining effects; deviations (CD-SGD only) come from\ncross-iteration encode/comm overlap that the per-iteration closed form charges serially.\n");
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "scenario (params, img/s)",
        "ssgd_cf",
        "ssgd_sim",
        "bit_cf",
        "bit_sim",
        "od_cf",
        "od_sim",
        "cd_cf",
        "cd_sim"
    );
    let cluster = ClusterSpec::k80_cluster();
    let scenarios: Vec<(u64, f64)> = vec![
        (50_000_000, 500.0), // comm-bound
        (1_000_000, 50.0),   // compute-bound
        (20_000_000, 120.0), // mixed
    ];
    let mut worst: f64 = 0.0;
    for (p, thr) in scenarios {
        let model = single_layer(p, thr);
        let sim = PipelineSim::new(&model, &cluster, 32);
        let cm = CostModel::new(CostInputs::derive(&model, &cluster, 32, 5));
        let ssgd = sim.run(AlgoKind::Ssgd, 42).avg_iter_time;
        let bit = sim.run(AlgoKind::BitSgd, 42).avg_iter_time;
        let od = sim.run(AlgoKind::OdSgd, 42).avg_iter_time;
        let cd = sim.run(AlgoKind::CdSgd { k: 5 }, 52).avg_iter_time;
        println!(
            "{:<28} {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms",
            format!("({p}, {thr})"),
            cm.t_ssgd() * 1e3,
            ssgd * 1e3,
            cm.t_bit() * 1e3,
            bit * 1e3,
            cm.t_loc() * 1e3,
            od * 1e3,
            cm.t_cd_avg() * 1e3,
            cd * 1e3,
        );
        for (cf, s) in [(cm.t_ssgd(), ssgd), (cm.t_bit(), bit), (cm.t_loc(), od)] {
            worst = worst.max((cf - s).abs() / cf);
        }
    }
    println!(
        "\nworst relative deviation on non-CD algorithms: {:.1}%",
        worst * 100.0
    );

    println!(
        "\n== Eq. 8 (saving vs local-update method) and eq. 9 (saving vs BIT-SGD) case table =="
    );
    println!(
        "{:<34} {:>10} {:>10} {:>12} {:>12}",
        "regime (tau, phi, psi, delta)", "Ts_loc@cmp", "Ts_loc@cor", "Ts_bit@cmp", "Ts_bit@cor"
    );
    let regimes: Vec<(&str, CostInputs)> = vec![
        (
            "compute-bound",
            CostInputs {
                tau: 1.0,
                phi: 0.5,
                psi: 0.05,
                delta: 0.1,
                k: 5,
            },
        ),
        (
            "comm-bound",
            CostInputs {
                tau: 0.1,
                phi: 1.0,
                psi: 0.2,
                delta: 0.05,
                k: 5,
            },
        ),
        (
            "middle",
            CostInputs {
                tau: 0.5,
                phi: 1.0,
                psi: 0.1,
                delta: 0.1,
                k: 5,
            },
        ),
    ];
    for (name, inp) in regimes {
        let cm = CostModel::new(inp);
        println!(
            "{:<34} {:>10.3} {:>10.3} {:>12.3} {:>12.3}",
            format!(
                "{name} ({}, {}, {}, {})",
                inp.tau, inp.phi, inp.psi, inp.delta
            ),
            cm.saving_vs_loc(1),
            cm.saving_vs_loc(0),
            cm.saving_vs_bit(1),
            cm.saving_vs_bit(0),
        );
    }
    println!("\n(paper §3.3: Ts_bit can be NEGATIVE in the correction iteration when phi is large — eq. 9 case 3)");
}
