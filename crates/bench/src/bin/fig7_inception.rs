//! Fig. 7 — learning curves of Inception-bn on the CIFAR-10-like
//! workload.
//!
//! Paper setting: global lr 0.4, local lr 0.05, threshold 0.5, batch 32,
//! k=2, M=2 and M=4 workers. Expected shape: BIT-SGD clearly below the
//! rest (92.7 vs ~94 top-1 in the paper); CD-SGD best or tied-best; a
//! visible fluctuation at the warm-up→formal switch.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin fig7_inception
//!         [--workers 2] [--epochs 10] [--samples 4000] [--width 4]`

use cdsgd_bench::{arg_f32, arg_usize, paper_algorithms, CurveSpec};
use cdsgd_data::synth;
use cdsgd_nn::models;

fn main() {
    let workers = arg_usize("workers", 2);
    let epochs = arg_usize("epochs", 10);
    let local_lr = arg_f32("local-lr", 0.05);
    let samples = arg_usize("samples", 4_000);
    let width = arg_usize("width", 4);

    let data = synth::cifar_like(samples, 77);
    let (train, test) = data.split(0.85);

    let spec = CurveSpec {
        title: format!("Fig. 7: Inception-bn-lite (width {width}) on CIFAR-like, M={workers}"),
        workers,
        epochs,
        batch: 32,
        global_lr: 0.4,
        seed: 7,
        augment: false,
        lr_schedule: vec![],
    };
    let warmup = (train.len() / workers / 32).max(1);
    let algos = paper_algorithms(local_lr, 0.5, 2, warmup);
    spec.run(
        &algos,
        move |rng| models::inception_cifar(width, 10, rng),
        &train,
        &test,
    );

    println!("paper reference (CIFAR-10, M=2 top-1): CD-SGD 94.15%, OD-SGD 93.99%, S-SGD 94.00%, BIT-SGD 92.69%");
}
