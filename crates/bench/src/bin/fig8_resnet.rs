//! Fig. 8 — learning curves of ResNet-50 on the ImageNet-scale workload,
//! 4 workers, with lr decay.
//!
//! Paper setting: local lr 0.1, lr adjusted at epochs 30/60/80 of 90.
//! We run the scaled ImageNet-like workload (100 classes) and scale the
//! decay points proportionally to the epoch budget. Expected shape:
//! BIT-SGD persistently worst; CD-SGD ≈ OD-SGD, slightly below S-SGD;
//! all within a point of each other at the end.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin fig8_resnet
//!         [--epochs 12] [--samples 3000] [--width 8]`

use cd_sgd::LrSchedule;
use cdsgd_bench::{arg_f32, arg_usize, paper_algorithms, CurveSpec};
use cdsgd_data::synth;
use cdsgd_nn::models;

fn main() {
    let workers = 4;
    let epochs = arg_usize("epochs", 12);
    let local_lr = arg_f32("local-lr", 0.1);
    let samples = arg_usize("samples", 3_000);
    let width = arg_usize("width", 8);

    let data = synth::imagenet_like(samples, 1234);
    let (train, test) = data.split(0.85);

    // Paper decays x0.1 at 30/60/80 of 90 epochs; scale to the budget.
    let schedule = LrSchedule::paper_resnet50(0.4, epochs);
    let spec = CurveSpec {
        title: format!("Fig. 8: ResNet-50-lite (width {width}) on ImageNet-like, M={workers}"),
        workers,
        epochs,
        batch: 32,
        global_lr: schedule.at(0),
        seed: 11,
        augment: false,
        lr_schedule: schedule
            .change_points(epochs)
            .into_iter()
            .filter(|&(e, _)| e > 0)
            .collect(),
    };
    let warmup = (train.len() / workers / 32).max(1);
    let algos = paper_algorithms(local_lr, 0.5, 2, warmup);
    spec.run(
        &algos,
        move |rng| models::resnet_imagenet(width, 100, rng),
        &train,
        &test,
    );

    println!("paper reference (ImageNet top-1): CD-SGD 72.4%, OD-SGD 72.6%, S-SGD 72.7%, BIT-SGD 72.0%; CD-SGD epoch time 41% less than BIT-SGD");
}
