//! Topology sweep (DESIGN.md §16): the same workload trained through
//! every synchronization topology — parameter server, ring allreduce,
//! tree reduce-broadcast, and decentralized compressed gossip — across
//! worker counts and codecs, into `BENCH_topologies.json`.
//!
//! Three claims are pinned here:
//!
//! 1. **Zero allocation per step** (the pooled-chunk contract of
//!    `ps::allreduce`): after one warm-up allreduce, a member's
//!    `BufferPool` miss counter must not move — every subsequent step
//!    runs entirely on recycled chunk buffers. The bench *asserts* this,
//!    it does not merely record it.
//! 2. **Bandwidth optimality**: the ring's telemetry byte accounting
//!    lands on 2(N−1)/N of the vector per member per round, matching
//!    the `simtime` cost model's ideal.
//! 3. **Decentralized ≈ PS at matched codec**: gossip-compressed
//!    training reaches a final accuracy within tolerance of the
//!    PS-based compressed baseline; the JSON records both sides.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin topologies
//!         [--epochs 3] [--samples 480] [--steps 200]`

use std::time::Instant;

use cd_sgd::{Algorithm, Codec, Topology, TrainConfig, Trainer, TrainingHistory};
use cdsgd_bench::arg_usize;
use cdsgd_data::toy;
use cdsgd_nn::models;
use cdsgd_ps::{ring_group, AllReduceBackend, DecentralizedBackend, WireMode};
use cdsgd_simtime::ClusterSpec;

/// One trained configuration → one JSON record.
struct Row {
    workers: usize,
    topology: String,
    codec: String,
    final_acc: Option<f32>,
    wall_s: f64,
    wire_bytes: u64,
}

fn train(
    workers: usize,
    epochs: usize,
    samples: usize,
    topology: Topology,
    algo: Algorithm,
) -> (TrainingHistory, f64) {
    let data = toy::gaussian_blobs(samples, 8, 4, 0.6, 9);
    let (train, test) = data.split(0.8);
    let cfg = TrainConfig::new(algo, workers)
        .with_lr(0.2)
        .with_batch_size(16)
        .with_epochs(epochs)
        .with_seed(5)
        .with_topology(topology.clone());
    let trainer = Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test));
    let t0 = Instant::now();
    let history = match &topology {
        Topology::Ps => trainer.run(),
        Topology::Ring => trainer
            .run_with(|_, _| Ok(Box::new(AllReduceBackend::ring(workers, WireMode::Tcp)?) as _))
            .expect("ring run"),
        Topology::Tree => trainer
            .run_with(|_, _| Ok(Box::new(AllReduceBackend::tree(workers, WireMode::Tcp)?) as _))
            .expect("tree run"),
        Topology::Decentralized { .. } => trainer
            .run_with(|_, _| Ok(Box::new(DecentralizedBackend::ring(workers, WireMode::Tcp)?) as _))
            .expect("decentralized run"),
    };
    (history, t0.elapsed().as_secs_f64())
}

fn row(
    workers: usize,
    epochs: usize,
    samples: usize,
    topology: Topology,
    algo: Algorithm,
    codec: &str,
) -> Row {
    let name = topology.name();
    let (h, wall_s) = train(workers, epochs, samples, topology, algo);
    let wire_bytes = h
        .epochs
        .last()
        .map_or(0, |e| e.cumulative_push_bytes + e.cumulative_pull_bytes);
    println!(
        "{:<20} N={workers} codec={codec:<10} acc={} wall={wall_s:.2}s wire={} B",
        name,
        h.final_test_acc().map_or("-".into(), |a| format!("{a:.4}")),
        wire_bytes
    );
    Row {
        workers,
        topology: name,
        codec: codec.into(),
        final_acc: h.final_test_acc(),
        wall_s,
        wire_bytes,
    }
}

/// Satellite contract: after one warm-up allreduce, `steps` further
/// rounds must not miss the chunk pool once. Panics on any allocation.
fn assert_zero_alloc_steady_state(workers: usize, len: usize, steps: usize) -> u64 {
    let (members, _stats) = ring_group(workers);
    let handles: Vec<_> = members
        .into_iter()
        .map(|m| {
            std::thread::spawn(move || {
                let mut v = vec![1.0f32; len];
                m.allreduce_mean(&mut v); // warm-up: pools fill
                let baseline = m.pool().misses();
                for _ in 0..steps {
                    m.allreduce_mean(&mut v);
                }
                assert_eq!(
                    m.pool().misses(),
                    baseline,
                    "steady-state allreduce allocated fresh chunk buffers"
                );
                baseline
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn main() {
    let epochs = arg_usize("epochs", 3);
    let samples = arg_usize("samples", 480);
    let steps = arg_usize("steps", 200);

    println!("== zero-allocation steady state (in-memory ring, {steps} steps) ==");
    let warmup_misses = assert_zero_alloc_steady_state(4, 10_000, steps);
    println!("ok: {warmup_misses} warm-up pool misses total, 0 in steady state\n");

    println!("== topology sweep (blobs, mlp 8-32-4) ==");
    let mut records = Vec::new();
    for &workers in &[2usize, 4] {
        // PS baselines: uncompressed S-SGD and the compressed algorithms
        // the decentralized mode is compared against at matched codec.
        records.push(row(
            workers,
            epochs,
            samples,
            Topology::Ps,
            Algorithm::SSgd,
            "none",
        ));
        // Codecs matched across PS and decentralized. Note top-k is at
        // 10%, not the PS-friendly 1%: decentralized gossip compresses
        // *model differences*, and Tang et al.'s convergence bound
        // requires the compression variance to stay small — top-1% of a
        // diff is too sparse for the replicas to reach consensus.
        for (codec, cname) in [
            (Codec::TwoBit { threshold: 0.05 }, "2bit"),
            (Codec::TopK { ratio: 0.1 }, "top10%"),
        ] {
            let warmup = (samples * 4 / 5 / workers / 16).max(1);
            records.push(row(
                workers,
                epochs,
                samples,
                Topology::Ps,
                Algorithm::cd_sgd_with(0.05, codec.clone(), 2, warmup),
                cname,
            ));
            records.push(row(
                workers,
                epochs,
                samples,
                Topology::Decentralized { codec },
                Algorithm::ArSgd,
                cname,
            ));
        }
        // Uncompressed collectives: ring and tree allreduce over TCP.
        records.push(row(
            workers,
            epochs,
            samples,
            Topology::Ring,
            Algorithm::ArSgd,
            "none",
        ));
        records.push(row(
            workers,
            epochs,
            samples,
            Topology::Tree,
            Algorithm::ArSgd,
            "none",
        ));
    }

    // The decentralized-vs-PS comparison the acceptance pins: at each
    // matched codec the gossip run must land within tolerance of the PS
    // compressed baseline (blobs is easy; both should be near-perfect).
    let mut comparisons = Vec::new();
    for r in &records {
        if r.topology.starts_with("decentralized") {
            let ps = records
                .iter()
                .find(|p| p.topology == "ps" && p.codec == r.codec && p.workers == r.workers)
                .expect("matched PS baseline");
            let (d, p) = (r.final_acc.unwrap_or(0.0), ps.final_acc.unwrap_or(0.0));
            println!(
                "decentralized/{} N={}: acc {d:.4} vs ps {p:.4} (Δ={:+.4})",
                r.codec,
                r.workers,
                d - p
            );
            assert!(
                (d - p).abs() <= 0.15,
                "decentralized/{} N={} drifted from the PS baseline: {d} vs {p}",
                r.codec,
                r.workers
            );
            comparisons.push(serde_json::json!({
                "workers": r.workers,
                "codec": r.codec,
                "decentralized_acc": d,
                "ps_acc": p,
                "tolerance": 0.15,
            }));
        }
    }

    // The simtime cost model the sweep is read against (DESIGN.md §16).
    let cluster = ClusterSpec::k80_cluster().with_single_gpu_nodes(4);
    let model_bytes = 4.0 * (8.0 * 32.0 + 32.0 + 32.0 * 4.0 + 4.0);
    let cost = serde_json::json!({
        "workers": cluster.num_workers(),
        "model_bytes": model_bytes,
        "ring_allreduce_s": cluster.ring_allreduce_time(model_bytes),
        "tree_allreduce_s": cluster.tree_allreduce_time(model_bytes),
        "crossover_bytes": cluster.allreduce_crossover_bytes(),
    });
    println!(
        "\ncost model (N=4, 56 Gbps): ring {:.1} µs, tree {:.1} µs, crossover at {:.0} KiB",
        cluster.ring_allreduce_time(model_bytes) * 1e6,
        cluster.tree_allreduce_time(model_bytes) * 1e6,
        cluster.allreduce_crossover_bytes() / 1024.0
    );

    let out = serde_json::json!({
        "bench": "topologies",
        "epochs": epochs,
        "samples": samples,
        "zero_alloc_steady_state": { "steps": steps, "steady_state_misses": 0 },
        "records": records.iter().map(|r| serde_json::json!({
            "workers": r.workers,
            "topology": r.topology,
            "codec": r.codec,
            "final_acc": r.final_acc,
            "wall_s": r.wall_s,
            "wire_bytes": r.wire_bytes,
        })).collect::<Vec<_>>(),
        "decentralized_vs_ps": comparisons,
        "cost_model": cost,
    });
    let path = "BENCH_topologies.json";
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize"))
        .expect("write BENCH json");
    println!("wrote {path}");
}
