//! Straggler analysis harness: quantify the paper's §2.1 motivation
//! ("S-SGD requires the faster worker nodes to wait for the slower
//! ones") and how much of it the local-update mechanism absorbs.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin straggler_analysis`

use cdsgd_simtime::StragglerSim;

fn main() {
    let iters = 5_000usize;
    println!("== Sync overhead vs worker count (τ=100 ms, comm=10 ms, jitter 0.3) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "workers", "blocking_ms", "delayed_ms", "absorption"
    );
    for n in [1usize, 2, 4, 8, 16, 32] {
        let s = StragglerSim::homogeneous(n, 0.1, 0.01, 0.3);
        let b = s.blocking_avg(iters, 11);
        let d = s.delayed_avg(iters, 11);
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>11.2}x",
            n,
            b * 1e3,
            d * 1e3,
            b / d
        );
    }

    println!("\n== Transient jitter sweep (16 workers) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "jitter", "blocking_ms", "delayed_ms", "absorption"
    );
    for jitter in [0.0f64, 0.1, 0.3, 0.5, 1.0] {
        let s = StragglerSim::homogeneous(16, 0.1, 0.01, jitter);
        let b = s.blocking_avg(iters, 13);
        let d = s.delayed_avg(iters, 13);
        println!(
            "{:>8.1} {:>14.2} {:>14.2} {:>11.2}x",
            jitter,
            b * 1e3,
            d * 1e3,
            b / d
        );
    }

    println!("\n== Persistent straggler (16 workers, jitter 0.2): one worker f× slower ==");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "factor", "blocking_ms", "delayed_ms", "absorption"
    );
    for f in [1.0f64, 1.5, 2.0, 4.0] {
        let s = StragglerSim::homogeneous(16, 0.1, 0.01, 0.2).with_persistent_straggler(f);
        let b = s.blocking_avg(iters, 17);
        let d = s.delayed_avg(iters, 17);
        println!(
            "{:>8.1} {:>14.2} {:>14.2} {:>11.2}x",
            f,
            b * 1e3,
            d * 1e3,
            b / d
        );
    }
    println!(
        "\n(expected: the one-round slack absorbs transient jitter but not a persistent straggler)"
    );
}
