//! Fig. 9 — k-step sensitivity: test accuracy of CD-SGD for
//! k ∈ {2, 5, 10, 20} vs S-SGD and BIT-SGD, ResNet-20 on CIFAR-10 with
//! data augmentation, 2 and 4 workers.
//!
//! Expected shape (paper §4.3): k=2 is best (can beat S-SGD); accuracy
//! decreases as k grows, more sharply with more workers; k→∞ approaches
//! BIT-SGD.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin fig9_kstep
//!         [--workers 2] [--epochs 10] [--samples 4000] [--width 8]`

use cd_sgd::Algorithm;
use cdsgd_bench::{arg_f32, arg_usize, CurveSpec};
use cdsgd_data::synth;
use cdsgd_nn::models;

fn main() {
    let workers = arg_usize("workers", 2);
    let epochs = arg_usize("epochs", 10);
    let local_lr = arg_f32("local-lr", 0.05);
    let samples = arg_usize("samples", 4_000);
    let width = arg_usize("width", 8);

    let data = synth::cifar_like(samples, 99);
    let (train, test) = data.split(0.85);

    let warmup = (train.len() / workers / 32).max(1);
    let mut algos = vec![Algorithm::SSgd, Algorithm::BitSgd { threshold: 0.5 }];
    for k in [2usize, 5, 10, 20] {
        algos.push(Algorithm::cd_sgd(local_lr, 0.5, k, warmup));
    }

    let spec = CurveSpec {
        title: format!(
            "Fig. 9: k-step sensitivity, ResNet-20-lite (width {width}), CIFAR-like w/ augmentation, M={workers}"
        ),
        workers,
        epochs,
        batch: 32,
        global_lr: 0.4,
        seed: 21,
        augment: true,
        lr_schedule: vec![],
    };
    let histories = spec.run(
        &algos,
        move |rng| models::resnet_cifar(width, 1, 10, rng),
        &train,
        &test,
    );

    println!("== Fig. 9 shape checks ==");
    // On the synthetic task accuracy can saturate at 100%; final training
    // loss carries the same ordering information, so both are reported.
    let acc: Vec<f32> = histories
        .iter()
        .map(|h| h.best_test_acc().unwrap_or(0.0))
        .collect();
    let loss: Vec<f32> = histories
        .iter()
        .map(|h| h.final_train_loss().unwrap_or(f32::NAN))
        .collect();
    println!(
        "k2 vs S-SGD:      acc {:.4} vs {:.4} | loss {:.4} vs {:.4} (paper: k2 ≈/beats S-SGD)",
        acc[2], acc[0], loss[2], loss[0]
    );
    println!(
        "k20 vs BIT-SGD:   acc {:.4} vs {:.4} | loss {:.4} vs {:.4} (paper: large k -> BIT-SGD)",
        acc[5], acc[1], loss[5], loss[1]
    );
    println!(
        "by k (2,5,10,20): acc {:.4} {:.4} {:.4} {:.4} | loss {:.4} {:.4} {:.4} {:.4}",
        acc[2], acc[3], acc[4], acc[5], loss[2], loss[3], loss[4], loss[5]
    );
    println!("(paper: quality decreases monotonically in k)");
    println!("\npaper reference (4 nodes): k20 89.68% vs BIT-SGD 88.81%");
}
