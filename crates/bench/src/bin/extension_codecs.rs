//! Extension (the paper's future work §6): CD-SGD with gradient
//! *sparsification* and other codecs in place of 2-bit quantization —
//! "it is worthy to explore efficient gradient sparsification algorithms
//! to further improve the training efficiency of CD-SGD".
//!
//! Compares convergence and push traffic of CD-SGD with 2-bit, 1-bit,
//! Top-k (DGC-style) and QSGD codecs on the same workload.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin extension_codecs
//!         [--epochs 8] [--samples 3000]`

use cd_sgd::{Algorithm, Codec, TrainConfig, Trainer};
use cdsgd_bench::arg_usize;
use cdsgd_data::synth;
use cdsgd_nn::models;

fn main() {
    let epochs = arg_usize("epochs", 8);
    let samples = arg_usize("samples", 3_000);
    let workers = 2usize;
    let data = synth::mnist_like(samples, 63);
    let (train, test) = data.split(0.85);
    let warmup = (train.len() / workers / 32).max(1);

    let variants: Vec<(String, Algorithm)> = vec![
        ("S-SGD (reference)".into(), Algorithm::SSgd),
        (
            "CD-SGD + 2bit (paper)".into(),
            Algorithm::cd_sgd_with(0.1, Codec::TwoBit { threshold: 0.5 }, 2, warmup),
        ),
        (
            "CD-SGD + 1bit".into(),
            Algorithm::cd_sgd_with(0.1, Codec::OneBit, 2, warmup),
        ),
        (
            "CD-SGD + top-1%".into(),
            Algorithm::cd_sgd_with(0.1, Codec::TopK { ratio: 0.01 }, 2, warmup),
        ),
        (
            "CD-SGD + top-10%".into(),
            Algorithm::cd_sgd_with(0.1, Codec::TopK { ratio: 0.1 }, 2, warmup),
        ),
        (
            "CD-SGD + qsgd(4)".into(),
            Algorithm::cd_sgd_with(0.1, Codec::Qsgd { levels: 4, seed: 9 }, 2, warmup),
        ),
    ];

    println!(
        "== Extension: CD-SGD with alternative codecs (LeNet-5, MNIST-like, M={workers}, k=2) ==\n"
    );
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>14}",
        "variant", "final_acc", "best_acc", "final_loss", "push_MiB"
    );
    for (label, algo) in variants {
        let cfg = TrainConfig::new(algo, workers)
            .with_lr(0.1)
            .with_batch_size(32)
            .with_epochs(epochs)
            .with_seed(63);
        let h = Trainer::new(
            cfg,
            |rng| models::lenet5(10, rng),
            train.clone(),
            Some(test.clone()),
        )
        .run();
        println!(
            "{:<24} {:>10} {:>10} {:>12.4} {:>14.2}",
            label,
            h.final_test_acc().map_or("-".into(), |a| format!("{a:.4}")),
            h.best_test_acc().map_or("-".into(), |a| format!("{a:.4}")),
            h.final_train_loss().unwrap_or(f32::NAN),
            h.epochs.last().unwrap().cumulative_push_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    println!("\nexpected: all CD variants track S-SGD accuracy (the k-step correction");
    println!("repairs every codec's bias); traffic ranks top-1% < 1bit < 2bit ≈ qsgd4 < raw.");
}
