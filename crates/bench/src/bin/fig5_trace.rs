//! Fig. 5 — op-schedule traces of BIT-SGD vs CD-SGD.
//!
//! The paper profiles ResNet-20 training on two K80 workers with MXNet's
//! profiler and views the trace in chrome://tracing, observing that (a)
//! BIT-SGD's FP waits for the previous iteration's communication while
//! CD-SGD's does not, and (b) CD-SGD completes 6 iterations in the time
//! BIT-SGD completes 5.
//!
//! This binary regenerates both claims from the discrete-event simulator
//! and writes Chrome-trace JSON files you can load in a trace viewer.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin fig5_trace [--iters N]`

use cdsgd_bench::arg_usize;
use cdsgd_simtime::pipeline::{AlgoKind, PipelineSim};
use cdsgd_simtime::{zoo, ClusterSpec};

fn main() {
    let iters = arg_usize("iters", 12);
    let cluster = ClusterSpec::k80_cluster().with_single_gpu_nodes(2);
    let model = zoo::resnet20();
    let sim = PipelineSim::new(&model, &cluster, 32);

    println!("== Fig. 5: execution traces, ResNet-20, 2 workers, K80 ==\n");
    for algo in [AlgoKind::BitSgd, AlgoKind::CdSgd { k: 4 }] {
        let res = sim.run(algo, iters);
        println!("-- {} --", algo.name());
        println!(
            "{:<6} {:>4} {:>5} {:>12} {:>12}",
            "op", "iter", "layer", "start_ms", "end_ms"
        );
        for e in res
            .trace
            .events()
            .iter()
            .filter(|e| e.iter >= 2 && e.iter <= 5)
        {
            let layer = if e.layer == usize::MAX {
                "-".into()
            } else {
                e.layer.to_string()
            };
            println!(
                "{:<6} {:>4} {:>5} {:>12.3} {:>12.3}",
                e.op,
                e.iter,
                layer,
                e.start * 1e3,
                e.end * 1e3
            );
        }
        // Fig. 5's headline: iterations completed per 100 ms window.
        let window = 0.1;
        let done = res.iteration_done.iter().filter(|&&t| t <= window).count();
        println!(
            "iterations completed in the first {:.0} ms: {}",
            window * 1e3,
            done
        );
        println!("avg iteration time: {:.3} ms", res.avg_iter_time * 1e3);

        let path = format!(
            "fig5_{}.trace.json",
            algo.name().to_lowercase().replace(['(', ')', '='], "_")
        );
        std::fs::write(&path, res.trace.to_chrome_json(&algo.name())).expect("write trace file");
        println!("chrome trace written to {path}\n");
    }

    // The paper's textual observation, checked explicitly: the 4th FP of
    // CD-SGD starts before the 3rd communication ends.
    let cd = sim.run(AlgoKind::CdSgd { k: 4 }, iters);
    let fp4 = cd
        .trace
        .events()
        .iter()
        .find(|e| e.op == "FP" && e.iter == 4 && e.layer == 0)
        .expect("FP of iteration 4")
        .start;
    let comm3 = cd.iteration_done[3];
    println!(
        "CD-SGD: FP of iteration 4 starts at {:.2} ms; communication of iteration 3 ends at {:.2} ms ({})",
        fp4 * 1e3,
        comm3 * 1e3,
        if fp4 < comm3 { "overlapped, as in the paper" } else { "NOT overlapped" }
    );
}
