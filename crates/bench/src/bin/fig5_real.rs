//! Fig. 5 (real execution) — the paper's profiler observation reproduced
//! on the *actual* threaded implementation, not the timing simulator:
//! BIT-SGD workers block on the pull every iteration, while CD-SGD
//! workers' pull-wait collapses to ~zero because the deferred pull is
//! already satisfied when requested.
//!
//! Prints per-op wall-clock totals and the blocked fraction, and writes
//! Chrome traces of the real worker timelines.
//!
//! An emulated shared network (default 5 MiB/s, `--mibps`) puts the run
//! in the paper's communication-visible regime; without it the in-process
//! server is effectively infinitely fast and both algorithms block ~0%.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin fig5_real
//!         [--epochs 2] [--samples 1200] [--mibps 5]`

use cd_sgd::profile::{summarize, to_chrome_json};
use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cdsgd_bench::arg_usize;
use cdsgd_data::synth;
use cdsgd_nn::models;

fn main() {
    let epochs = arg_usize("epochs", 2);
    let samples = arg_usize("samples", 1_200);
    let mibps = arg_usize("mibps", 5);
    let workers = 2usize;
    let data = synth::cifar_like(samples, 3);
    let (train, _) = data.split(1.0);
    // Short warm-up so the profiled window is dominated by the formal
    // (overlapping) phase.
    let warmup = 5usize;

    println!(
        "== Fig. 5 (real execution): ResNet-20-lite, {workers} workers, per-op wall-clock ==\n"
    );
    for algo in [
        Algorithm::BitSgd { threshold: 0.5 },
        Algorithm::cd_sgd(0.05, 0.5, 4, warmup),
    ] {
        let name = algo.name();
        let cfg = TrainConfig::new(algo, workers)
            .with_lr(0.4)
            .with_batch_size(32)
            .with_epochs(epochs)
            .with_seed(3)
            .with_profiling(true)
            .with_emulated_network(mibps as f64 * 1024.0 * 1024.0);
        let h = Trainer::new(
            cfg,
            |rng| models::resnet_cifar(8, 1, 10, rng),
            train.clone(),
            None,
        )
        .run();
        let events = h.profile.expect("profiling enabled");
        let summary = summarize(&events);
        println!("-- {name} --");
        for (op, total) in &summary.totals {
            println!("  {op:<14} {total:>9.3} s");
        }
        println!(
            "  blocked on pulls: {:.1}% of worker time",
            summary.pull_wait_fraction * 100.0
        );
        let path = format!(
            "fig5_real_{}.trace.json",
            name.to_lowercase().replace(['(', ')', '='], "_")
        );
        std::fs::write(&path, to_chrome_json(&events, &name)).expect("write trace");
        println!("  chrome trace: {path}\n");
    }
    println!("expected shape (paper Fig. 5): BIT-SGD's blocked fraction is substantial;");
    println!("CD-SGD's is near zero — the next FP never waits for the current communication.");
}
