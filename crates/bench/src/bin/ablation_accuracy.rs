//! Ablation (accuracy side): the design choices DESIGN.md §5 calls out,
//! measured on the same workload:
//!
//! 1. residual buffer on/off in the 2-bit quantizer (BIT-SGD),
//! 2. k-step correction on/off (CD-SGD vs OD-SGD+quantization),
//! 3. local update on/off (CD-SGD vs BIT-SGD),
//! 4. warm-up length sweep for CD-SGD.
//!
//! Usage: `cargo run --release -p cdsgd-bench --bin ablation_accuracy
//!         [--epochs 8] [--samples 3000]`

use cd_sgd::{Algorithm, TrainConfig, Trainer};
use cdsgd_bench::arg_usize;
use cdsgd_data::synth;
use cdsgd_nn::models;

fn main() {
    let epochs = arg_usize("epochs", 8);
    let samples = arg_usize("samples", 3_000);
    let workers = 2usize;
    let data = synth::mnist_like(samples, 31);
    let (train, test) = data.split(0.85);
    let warmup = (train.len() / workers / 32).max(1);

    let run = |label: &str, algo: Algorithm| {
        let cfg = TrainConfig::new(algo, workers)
            .with_lr(0.1)
            .with_batch_size(32)
            .with_epochs(epochs)
            .with_seed(31);
        let h = Trainer::new(
            cfg,
            |rng| models::lenet5(10, rng),
            train.clone(),
            Some(test.clone()),
        )
        .run();
        println!(
            "{:<44} final_acc {:>7} best_acc {:>7} final_loss {:>8.4}",
            label,
            h.final_test_acc().map_or("-".into(), |a| format!("{a:.4}")),
            h.best_test_acc().map_or("-".into(), |a| format!("{a:.4}")),
            h.final_train_loss().unwrap_or(f32::NAN),
        );
    };

    println!(
        "== Ablation: accuracy impact of each CD-SGD design choice (LeNet-5, MNIST-like, M=2) ==\n"
    );

    println!("-- baselines --");
    run("S-SGD", Algorithm::SSgd);
    run(
        "OD-SGD (local update only)",
        Algorithm::OdSgd { local_lr: 0.1 },
    );
    run(
        "BIT-SGD (quantization only)",
        Algorithm::BitSgd { threshold: 0.5 },
    );

    println!("\n-- k-step correction (CD-SGD, k sweep; k large => no correction) --");
    for k in [2usize, 5, 20, 1_000] {
        run(
            &format!("CD-SGD k={k}"),
            Algorithm::cd_sgd(0.1, 0.5, k, warmup),
        );
    }

    println!("\n-- warm-up length (CD-SGD, k=2) --");
    for w in [0usize, warmup / 4, warmup, 2 * warmup] {
        run(
            &format!("CD-SGD warmup={w}"),
            Algorithm::cd_sgd(0.1, 0.5, 2, w),
        );
    }

    println!("\n-- quantization threshold (BIT-SGD) --");
    for thr in [0.1f32, 0.5, 2.0] {
        run(
            &format!("BIT-SGD threshold={thr}"),
            Algorithm::BitSgd { threshold: thr },
        );
    }

    println!("\nexpected shape: k-step correction recovers BIT-SGD's accuracy loss;");
    println!("k=2 ≈ S-SGD; k→∞ ≈ BIT-SGD; extreme thresholds hurt BIT-SGD most.");
}
