//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Each paper experiment has its own binary under `src/bin/`; this crate
//! holds the argument parsing, the generic "run these algorithms on this
//! workload and print learning curves" driver, and the row printers.

use cd_sgd::{Algorithm, TrainConfig, Trainer, TrainingHistory};
use cdsgd_data::Dataset;
use cdsgd_nn::Sequential;
use cdsgd_tensor::SmallRng64;

/// Read `--name <value>` from the process arguments, else `default`.
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg_string(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v}"))
    })
}

/// Read `--name <value>` as f32.
pub fn arg_f32(name: &str, default: f32) -> f32 {
    arg_string(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects a number, got {v}"))
    })
}

/// Read `--name <value>` as a string.
pub fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1).cloned())
}

/// True if `--name` is present (with or without a value).
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// Specification of one learning-curve experiment (Figs. 6–9 share it).
#[derive(Clone)]
pub struct CurveSpec {
    /// Experiment title printed in the header.
    pub title: String,
    /// Worker count M.
    pub workers: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Per-worker batch size.
    pub batch: usize,
    /// Server learning rate.
    pub global_lr: f32,
    /// Seed shared across algorithms (same data order & init).
    pub seed: u64,
    /// Augment training batches.
    pub augment: bool,
    /// lr decay points.
    pub lr_schedule: Vec<(usize, f32)>,
}

impl CurveSpec {
    /// Run every algorithm on the same data/model and print per-epoch
    /// learning curves plus a final-accuracy summary. Returns the
    /// histories in input order.
    pub fn run(
        &self,
        algos: &[Algorithm],
        builder: impl Fn(&mut SmallRng64) -> Sequential + Send + Sync + Clone + 'static,
        train: &Dataset,
        test: &Dataset,
    ) -> Vec<TrainingHistory> {
        println!(
            "== {} (M={} workers, {} epochs) ==",
            self.title, self.workers, self.epochs
        );
        let mut out = Vec::new();
        for algo in algos {
            let mut cfg = TrainConfig::new(algo.clone(), self.workers)
                .with_lr(self.global_lr)
                .with_batch_size(self.batch)
                .with_epochs(self.epochs)
                .with_seed(self.seed)
                .with_augment(self.augment);
            for &(e, lr) in &self.lr_schedule {
                cfg = cfg.with_lr_decay(e, lr);
            }
            let trainer = Trainer::new(cfg, builder.clone(), train.clone(), Some(test.clone()));
            let history = trainer.run();
            println!("-- {} --", history.algo);
            print!("{}", history.to_tsv());
            out.push(history);
        }
        println!("\n== summary: {} ==", self.title);
        println!(
            "{:<14} {:>10} {:>10} {:>12} {:>14}",
            "algorithm", "final_acc", "best_acc", "final_loss", "avg_epoch_s"
        );
        for h in &out {
            println!(
                "{:<14} {:>10} {:>10} {:>12.4} {:>14.3}",
                h.algo,
                h.final_test_acc().map_or("-".into(), |a| format!("{a:.4}")),
                h.best_test_acc().map_or("-".into(), |a| format!("{a:.4}")),
                h.final_train_loss().unwrap_or(f32::NAN),
                h.avg_epoch_time(),
            );
        }
        println!();
        out
    }
}

/// The four paper algorithms with its standard hyper-parameters:
/// `(local_lr, threshold, k, warmup)` pulled from §4.2.
pub fn paper_algorithms(local_lr: f32, threshold: f32, k: usize, warmup: usize) -> Vec<Algorithm> {
    vec![
        Algorithm::SSgd,
        Algorithm::OdSgd { local_lr },
        Algorithm::BitSgd { threshold },
        Algorithm::cd_sgd(local_lr, threshold, k, warmup),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_algorithms_ordering() {
        let a = paper_algorithms(0.1, 0.5, 2, 10);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].name(), "S-SGD");
        assert_eq!(a[3].name(), "CD-SGD(k=2)");
    }

    #[test]
    fn arg_defaults_pass_through() {
        // No such flags in the test process: defaults returned.
        assert_eq!(arg_usize("definitely-not-set", 7), 7);
        assert_eq!(arg_f32("also-not-set", 0.5), 0.5);
        assert!(arg_string("missing").is_none());
        assert!(!arg_flag("missing"));
    }
}
