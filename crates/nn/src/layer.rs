//! The [`Layer`] trait and the [`Param`] value/gradient pair.

use cdsgd_tensor::Tensor;

/// Forward-pass mode: training (batch statistics, dropout active) or
/// evaluation (running statistics, dropout off).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Training mode.
    Train,
    /// Inference/evaluation mode.
    Eval,
}

/// A learnable parameter tensor together with its gradient buffer.
///
/// `grad` always has the same shape as `value`; `backward` overwrites it
/// (gradients are not accumulated across calls — one backward per forward).
#[derive(Clone, Debug)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. `value`, produced by the last backward.
    pub grad: Tensor,
}

impl Param {
    /// A parameter with a zeroed gradient buffer of matching shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True if the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A neural-network layer with explicit, manually-derived gradients.
///
/// Contract:
/// * `forward` caches whatever activations `backward` needs. One
///   `backward` consumes the most recent `forward`'s cache.
/// * `backward` receives ∂loss/∂output and returns ∂loss/∂input, writing
///   ∂loss/∂params into each [`Param::grad`] (overwriting, not adding).
/// * `visit_params` exposes parameters in a stable order; the parameter
///   server keys layers by visitation index, so the order must not change
///   between calls.
pub trait Layer: Send {
    /// Compute the layer output and cache activations for backward.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Back-propagate: given ∂loss/∂output return ∂loss/∂input and fill
    /// parameter gradients.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visit all learnable parameters in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        let _ = f;
    }

    /// Short layer name for diagnostics and trace output.
    fn name(&self) -> &'static str;

    /// Total learnable scalar count.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zero all parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.grad.fill_zero());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoParams;
    impl Layer for NoParams {
        fn forward(&mut self, x: &Tensor, _m: Mode) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, dy: &Tensor) -> Tensor {
            dy.clone()
        }
        fn name(&self) -> &'static str {
            "noparams"
        }
    }

    #[test]
    fn param_new_zeroes_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.data(), &[0.0; 6]);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn default_visit_params_is_empty() {
        let mut l = NoParams;
        assert_eq!(l.num_params(), 0);
        l.zero_grads(); // must not panic
    }
}
