//! Additional pointwise activations: LeakyReLU, ELU, GELU, Softplus.
//! These extend the zoo beyond the paper's models (LeNet uses tanh, the
//! conv nets use ReLU) for downstream users.

use crate::layer::{Layer, Mode};
use cdsgd_tensor::kernel;
use cdsgd_tensor::Tensor;

/// Leaky rectified linear unit: `x` for `x > 0`, `αx` otherwise.
#[derive(Debug)]
pub struct LeakyRelu {
    alpha: f32,
    input: Vec<f32>,
}

impl LeakyRelu {
    /// Leaky ReLU with negative-side slope `alpha` (e.g. 0.01).
    pub fn new(alpha: f32) -> Self {
        assert!(alpha.is_finite());
        Self {
            alpha,
            input: Vec::new(),
        }
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.input = x.data().to_vec();
        let a = self.alpha;
        x.map(|v| if v > 0.0 { v } else { a * v })
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.input.len(),
            "backward without matching forward"
        );
        let a = self.alpha;
        let mut out = Tensor::zeros(dy.shape());
        kernel::zip_into(out.data_mut(), dy.data(), &self.input, |g, x| {
            if x > 0.0 {
                g
            } else {
                a * g
            }
        });
        out
    }

    fn name(&self) -> &'static str {
        "leaky_relu"
    }
}

/// Exponential linear unit: `x` for `x > 0`, `α(e^x − 1)` otherwise.
#[derive(Debug)]
pub struct Elu {
    alpha: f32,
    input: Vec<f32>,
}

impl Elu {
    /// ELU with scale `alpha` (commonly 1.0).
    pub fn new(alpha: f32) -> Self {
        assert!(alpha.is_finite());
        Self {
            alpha,
            input: Vec::new(),
        }
    }
}

impl Layer for Elu {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.input = x.data().to_vec();
        let a = self.alpha;
        x.map(|v| if v > 0.0 { v } else { a * (v.exp() - 1.0) })
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.input.len(),
            "backward without matching forward"
        );
        let a = self.alpha;
        let mut out = Tensor::zeros(dy.shape());
        kernel::zip_into(out.data_mut(), dy.data(), &self.input, |g, x| {
            if x > 0.0 {
                g
            } else {
                g * a * x.exp()
            }
        });
        out
    }

    fn name(&self) -> &'static str {
        "elu"
    }
}

/// Gaussian error linear unit (tanh approximation, as used by most
/// frameworks): `0.5x(1 + tanh(√(2/π)(x + 0.044715x³)))`.
#[derive(Debug, Default)]
pub struct Gelu {
    input: Vec<f32>,
}

impl Gelu {
    /// New GELU layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn phi(x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        0.5 * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.input = x.data().to_vec();
        x.map(|v| v * Self::phi(v))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.input.len(),
            "backward without matching forward"
        );
        const C: f32 = 0.797_884_6;
        let mut out = Tensor::zeros(dy.shape());
        kernel::zip_into(out.data_mut(), dy.data(), &self.input, |g, x| {
            let t = (C * (x + 0.044715 * x * x * x)).tanh();
            let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * x * x);
            g * (0.5 * (1.0 + t) + 0.5 * x * dt)
        });
        out
    }

    fn name(&self) -> &'static str {
        "gelu"
    }
}

/// Softplus: `ln(1 + e^x)`, the smooth ReLU.
#[derive(Debug, Default)]
pub struct Softplus {
    input: Vec<f32>,
}

impl Softplus {
    /// New softplus layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Softplus {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.input = x.data().to_vec();
        // Numerically stable: max(x,0) + ln(1 + e^{−|x|}).
        x.map(|v| v.max(0.0) + (-v.abs()).exp().ln_1p())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.input.len(),
            "backward without matching forward"
        );
        let mut out = Tensor::zeros(dy.shape());
        kernel::zip_into(out.data_mut(), dy.data(), &self.input, |g, x| {
            g / (1.0 + (-x).exp())
        });
        out
    }

    fn name(&self) -> &'static str {
        "softplus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_numeric(mk: &dyn Fn() -> Box<dyn Layer>, xs: &[f32], tol: f32) {
        let eps = 1e-3f32;
        for &x0 in xs {
            let mut l = mk();
            l.forward(&Tensor::from_vec(vec![1], vec![x0]), Mode::Train);
            let analytic = l.backward(&Tensor::ones(&[1])).data()[0];
            let fp = mk()
                .forward(&Tensor::from_vec(vec![1], vec![x0 + eps]), Mode::Train)
                .data()[0];
            let fm = mk()
                .forward(&Tensor::from_vec(vec![1], vec![x0 - eps]), Mode::Train)
                .data()[0];
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < tol,
                "at {x0}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    const PROBES: [f32; 6] = [-2.0, -0.7, -0.1, 0.2, 1.0, 2.5];

    #[test]
    fn leaky_relu_values_and_gradient() {
        let mut l = LeakyRelu::new(0.1);
        let y = l.forward(&Tensor::from_vec(vec![2], vec![2.0, -2.0]), Mode::Train);
        assert_eq!(y.data(), &[2.0, -0.2]);
        check_numeric(&|| Box::new(LeakyRelu::new(0.1)), &PROBES, 1e-2);
    }

    #[test]
    fn elu_values_and_gradient() {
        let mut l = Elu::new(1.0);
        let y = l.forward(&Tensor::from_vec(vec![2], vec![1.0, -1.0]), Mode::Train);
        assert!((y.data()[0] - 1.0).abs() < 1e-6);
        assert!((y.data()[1] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
        check_numeric(&|| Box::new(Elu::new(1.0)), &PROBES, 1e-2);
    }

    #[test]
    fn gelu_shape_and_gradient() {
        let mut l = Gelu::new();
        let y = l.forward(
            &Tensor::from_vec(vec![3], vec![-3.0, 0.0, 3.0]),
            Mode::Train,
        );
        // GELU(0) = 0; GELU(3) ≈ 3; GELU(−3) ≈ 0.
        assert!(y.data()[1].abs() < 1e-6);
        assert!((y.data()[2] - 3.0).abs() < 0.02);
        assert!(y.data()[0].abs() < 0.02);
        check_numeric(&|| Box::new(Gelu::new()), &PROBES, 2e-2);
    }

    #[test]
    fn softplus_values_and_gradient() {
        let mut l = Softplus::new();
        let y = l.forward(&Tensor::from_vec(vec![2], vec![0.0, 100.0]), Mode::Train);
        assert!((y.data()[0] - (2.0f32).ln()).abs() < 1e-6);
        assert!((y.data()[1] - 100.0).abs() < 1e-4); // no overflow
        check_numeric(&|| Box::new(Softplus::new()), &PROBES, 1e-2);
    }
}
