//! Composite blocks with non-sequential topology: residual (ResNet) and
//! inception (GoogLeNet/Inception-bn) blocks.

use crate::activation::Relu;
use crate::batchnorm::BatchNorm2d;
use crate::conv2d::Conv2d;
use crate::layer::{Layer, Mode, Param};
use crate::pool::AvgPool2d;
use crate::util::{concat_channels, split_channels};
use cdsgd_tensor::{SmallRng64, Tensor};

/// A basic ResNet v1 residual block:
/// `relu( bn(conv3x3(relu(bn(conv3x3(x))))) + shortcut(x) )`.
///
/// The shortcut is identity when shapes match, or a strided 1×1
/// conv + BN projection when the block downsamples / widens.
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    projection: Option<(Conv2d, BatchNorm2d)>,
    /// Mask of the final ReLU (which acts on main + shortcut sum).
    out_mask: Vec<bool>,
}

impl ResidualBlock {
    /// Residual block `in_c -> out_c` with the given stride on the first
    /// convolution. A projection shortcut is added automatically when
    /// `stride != 1 || in_c != out_c`.
    pub fn new(in_c: usize, out_c: usize, stride: usize, rng: &mut SmallRng64) -> Self {
        let projection = if stride != 1 || in_c != out_c {
            Some((
                Conv2d::new(in_c, out_c, 1, stride, 0, rng),
                BatchNorm2d::new(out_c),
            ))
        } else {
            None
        };
        Self {
            conv1: Conv2d::new(in_c, out_c, 3, stride, 1, rng),
            bn1: BatchNorm2d::new(out_c),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_c, out_c, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(out_c),
            projection,
            out_mask: Vec::new(),
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let main = {
            let h = self.conv1.forward(x, mode);
            let h = self.bn1.forward(&h, mode);
            let h = self.relu1.forward(&h, mode);
            let h = self.conv2.forward(&h, mode);
            self.bn2.forward(&h, mode)
        };
        let shortcut = match &mut self.projection {
            Some((conv, bn)) => {
                let s = conv.forward(x, mode);
                bn.forward(&s, mode)
            }
            None => x.clone(),
        };
        let sum = main.add(&shortcut);
        self.out_mask = sum.data().iter().map(|&v| v > 0.0).collect();
        sum.map(|v| v.max(0.0))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.out_mask.len(),
            "backward without matching forward"
        );
        // Through the final ReLU.
        let dsum = Tensor::from_vec(
            dy.shape().to_vec(),
            dy.data()
                .iter()
                .zip(&self.out_mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        );
        // Main path.
        let d = self.bn2.backward(&dsum);
        let d = self.conv2.backward(&d);
        let d = self.relu1.backward(&d);
        let d = self.bn1.backward(&d);
        let mut dx = self.conv1.backward(&d);
        // Shortcut path.
        let dshort = match &mut self.projection {
            Some((conv, bn)) => {
                let d = bn.backward(&dsum);
                conv.backward(&d)
            }
            None => dsum,
        };
        dx.add_assign(&dshort);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &mut self.projection {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn name(&self) -> &'static str {
        "residual"
    }
}

/// One branch of an inception block: a small conv stack ending in BN+ReLU.
struct InceptionBranch {
    stack: Vec<(Conv2d, BatchNorm2d, Relu)>,
    pool_first: Option<AvgPool2d>,
    out_c: usize,
}

impl InceptionBranch {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut cur = match &mut self.pool_first {
            // 3x3 avg pool, stride 1 — pad is emulated by using k=1 here
            // would change geometry; we use stride-1 k=3 pooling only on
            // inputs >= 3 px, and same-size via explicit pad below.
            Some(p) => p.forward(x, mode),
            None => x.clone(),
        };
        for (conv, bn, relu) in &mut self.stack {
            cur = conv.forward(&cur, mode);
            cur = bn.forward(&cur, mode);
            cur = relu.forward(&cur, mode);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut cur = dy.clone();
        for (conv, bn, relu) in self.stack.iter_mut().rev() {
            cur = relu.backward(&cur);
            cur = bn.backward(&cur);
            cur = conv.backward(&cur);
        }
        match &mut self.pool_first {
            Some(p) => p.backward(&cur),
            None => cur,
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for (conv, bn, _) in &mut self.stack {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }
}

/// An Inception-bn style block with four parallel branches concatenated
/// along channels:
///
/// 1. 1×1 conv (`b1` channels)
/// 2. 1×1 → 3×3 conv (`b3` channels)
/// 3. 1×1 → 3×3 → 3×3 conv (`b5` channels, the "double 3×3" that
///    Inception-bn substitutes for 5×5)
/// 4. 3×3 avg-pool (stride 1, padded) → 1×1 conv (`bp` channels)
///
/// Every conv is followed by BN + ReLU, as in Inception-bn.
pub struct InceptionBlock {
    branches: Vec<InceptionBranch>,
    branch_channels: Vec<usize>,
}

impl InceptionBlock {
    /// Build a block over `in_c` input channels with the given per-branch
    /// output widths.
    pub fn new(
        in_c: usize,
        b1: usize,
        b3: usize,
        b5: usize,
        bp: usize,
        rng: &mut SmallRng64,
    ) -> Self {
        let mk = |conv: Conv2d| {
            let c = conv.out_channels();
            (conv, BatchNorm2d::new(c), Relu::new())
        };
        let reduce3 = (b3 / 2).max(1);
        let reduce5 = (b5 / 2).max(1);
        let branches = vec![
            InceptionBranch {
                stack: vec![mk(Conv2d::new(in_c, b1, 1, 1, 0, rng))],
                pool_first: None,
                out_c: b1,
            },
            InceptionBranch {
                stack: vec![
                    mk(Conv2d::new(in_c, reduce3, 1, 1, 0, rng)),
                    mk(Conv2d::new(reduce3, b3, 3, 1, 1, rng)),
                ],
                pool_first: None,
                out_c: b3,
            },
            InceptionBranch {
                stack: vec![
                    mk(Conv2d::new(in_c, reduce5, 1, 1, 0, rng)),
                    mk(Conv2d::new(reduce5, b5, 3, 1, 1, rng)),
                    mk(Conv2d::new(b5, b5, 3, 1, 1, rng)),
                ],
                pool_first: None,
                out_c: b5,
            },
            InceptionBranch {
                // 3x3 stride-1 avg pool shrinks H,W by 2; the following
                // 1x1 conv keeps that size, so we instead use a padded
                // 3x3 *conv* emulating pool-project in one step.
                stack: vec![mk(Conv2d::new(in_c, bp, 3, 1, 1, rng))],
                pool_first: None,
                out_c: bp,
            },
        ];
        let branch_channels = branches.iter().map(|b| b.out_c).collect();
        Self {
            branches,
            branch_channels,
        }
    }

    /// Total output channels (sum over branches).
    pub fn out_channels(&self) -> usize {
        self.branch_channels.iter().sum()
    }
}

impl Layer for InceptionBlock {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let outs: Vec<Tensor> = self
            .branches
            .iter_mut()
            .map(|b| b.forward(x, mode))
            .collect();
        concat_channels(&outs)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let parts = split_channels(dy, &self.branch_channels);
        let mut dx: Option<Tensor> = None;
        for (branch, part) in self.branches.iter_mut().zip(&parts) {
            let d = branch.backward(part);
            match &mut dx {
                Some(acc) => acc.add_assign(&d),
                None => dx = Some(d),
            }
        }
        dx.expect("inception block has branches")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for b in &mut self.branches {
            b.visit_params(f);
        }
    }

    fn name(&self) -> &'static str {
        "inception"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_identity_block_shapes() {
        let mut rng = SmallRng64::new(0);
        let mut b = ResidualBlock::new(4, 4, 1, &mut rng);
        let x = Tensor::randn(&[2, 4, 8, 8], 1.0, &mut rng);
        let y = b.forward(&x, Mode::Train);
        assert_eq!(y.shape(), x.shape());
        let dx = b.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn residual_downsample_block_shapes() {
        let mut rng = SmallRng64::new(1);
        let mut b = ResidualBlock::new(4, 8, 2, &mut rng);
        let x = Tensor::randn(&[2, 4, 8, 8], 1.0, &mut rng);
        let y = b.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
        let dx = b.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn residual_projection_adds_params() {
        let mut rng = SmallRng64::new(2);
        let mut id_block = ResidualBlock::new(4, 4, 1, &mut rng);
        let mut proj_block = ResidualBlock::new(4, 8, 2, &mut rng);
        assert!(proj_block.num_params() > id_block.num_params());
    }

    #[test]
    fn residual_output_nonnegative() {
        let mut rng = SmallRng64::new(3);
        let mut b = ResidualBlock::new(2, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 2.0, &mut rng);
        let y = b.forward(&x, Mode::Train);
        assert!(y.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn inception_concatenates_branch_channels() {
        let mut rng = SmallRng64::new(4);
        let mut blk = InceptionBlock::new(3, 4, 6, 2, 3, &mut rng);
        assert_eq!(blk.out_channels(), 15);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y = blk.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 15, 8, 8]);
        let dx = blk.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn residual_numerical_gradient_spot_check() {
        let mut rng = SmallRng64::new(5);
        let mut b = ResidualBlock::new(2, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 3, 3], 0.5, &mut rng);
        let w = Tensor::randn(&[1 * 2 * 3 * 3], 1.0, &mut rng);
        // Loss = <y, w>; clone block state per evaluation to keep BN
        // running stats out of the picture is unnecessary since train-mode
        // BN uses batch stats only.
        let y = b.forward(&x, Mode::Train);
        let dy = Tensor::from_vec(y.shape().to_vec(), w.data().to_vec());
        let dx = b.backward(&dy);
        let eps = 1e-2f32;
        for i in (0..x.len()).step_by(4) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp: f32 = b
                .forward(&xp, Mode::Train)
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, c)| a * c)
                .sum();
            let fm: f32 = b
                .forward(&xm, Mode::Train)
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, c)| a * c)
                .sum();
            let numeric = (fp - fm) / (2.0 * eps);
            // ReLU kinks and BN coupling make this a loose check.
            assert!(
                (dx.data()[i] - numeric).abs() < 0.15 * (1.0 + numeric.abs()),
                "dx[{i}] {} vs {numeric}",
                dx.data()[i]
            );
        }
    }
}
