//! # cdsgd-nn
//!
//! A hand-plumbed neural-network framework: every layer implements an
//! explicit `forward` / `backward` pair (no autograd tape), exactly like
//! the layer-wise structure the paper's pipelining discussion assumes.
//! This crate is the substrate standing in for MXNet's model layer
//! (DESIGN.md §2).
//!
//! * [`Layer`] — the forward/backward/params contract.
//! * Layers: [`Dense`], [`Conv2d`], [`MaxPool2d`], [`AvgPool2d`],
//!   [`GlobalAvgPool`], [`BatchNorm2d`], [`Relu`], [`Sigmoid`], [`Tanh`],
//!   [`Dropout`], [`Flatten`], [`ResidualBlock`], [`InceptionBlock`].
//! * [`Sequential`] — container with stable per-parameter keys, the unit
//!   the parameter server shards by.
//! * [`SoftmaxCrossEntropy`] — the classification loss used throughout
//!   the paper's experiments.
//! * [`models`] — the model zoo (LeNet-5, MLPs, ResNet-20-lite,
//!   Inception-bn-lite) scaled so CPU training converges in minutes.
//!
//! ```
//! use cdsgd_nn::{models, Layer, Mode, SoftmaxCrossEntropy};
//! use cdsgd_tensor::{SmallRng64, Tensor};
//!
//! let mut rng = SmallRng64::new(0);
//! let mut model = models::mlp(&[4, 16, 3], &mut rng);
//! let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
//! let logits = model.forward(&x, Mode::Train);
//! let (loss, dlogits) = SoftmaxCrossEntropy.loss_and_grad(&logits, &[0, 2]);
//! model.backward(&dlogits);
//! assert!(loss > 0.0);
//! ```

mod activation;
mod activation_ext;
mod batchnorm;
mod blocks;
mod conv2d;
mod dense;
mod dropout;
mod flatten;
mod layer;
mod loss;
pub mod models;
mod pool;
mod sequential;
mod util;

pub use activation::{Relu, Sigmoid, Tanh};
pub use activation_ext::{Elu, Gelu, LeakyRelu, Softplus};
pub use batchnorm::BatchNorm2d;
pub use blocks::{InceptionBlock, ResidualBlock};
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use layer::{Layer, Mode, Param};
pub use loss::SoftmaxCrossEntropy;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use sequential::Sequential;
pub use util::{concat_channels, split_channels};
