//! Pointwise activation layers: ReLU, Sigmoid, Tanh.

use crate::layer::{Layer, Mode};
use cdsgd_tensor::kernel;
use cdsgd_tensor::Tensor;

/// Rectified linear unit: `max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    /// 1.0 where the forward input was strictly positive, else 0.0.
    mask: Vec<f32>,
}

impl Relu {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.mask = x
            .data()
            .iter()
            .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
            .collect();
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.mask.len(),
            "backward without matching forward"
        );
        let mut out = Tensor::zeros(dy.shape());
        // Branch (not `g * m`): the gated-off lanes must be literal 0.0,
        // never `-0.0` or NaN from the incoming gradient.
        kernel::zip_into(out.data_mut(), dy.data(), &self.mask, |g, m| {
            if m != 0.0 {
                g
            } else {
                0.0
            }
        });
        out
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Logistic sigmoid: `1 / (1 + e^-x)`.
#[derive(Debug, Default)]
pub struct Sigmoid {
    out: Vec<f32>,
}

impl Sigmoid {
    /// New sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.out = y.data().to_vec();
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.out.len(),
            "backward without matching forward"
        );
        let mut out = Tensor::zeros(dy.shape());
        kernel::zip_into(out.data_mut(), dy.data(), &self.out, |g, y| {
            g * y * (1.0 - y)
        });
        out
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

/// Hyperbolic tangent.
#[derive(Debug, Default)]
pub struct Tanh {
    out: Vec<f32>,
}

impl Tanh {
    /// New tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let y = x.map(f32::tanh);
        self.out = y.data().to_vec();
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.out.len(),
            "backward without matching forward"
        );
        let mut out = Tensor::zeros(dy.shape());
        kernel::zip_into(out.data_mut(), dy.data(), &self.out, |g, y| {
            g * (1.0 - y * y)
        });
        out
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 2.0, -0.5]);
        let y = l.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let dx = l.backward(&Tensor::ones(&[4]));
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_midpoint() {
        let mut l = Sigmoid::new();
        let y = l.forward(&Tensor::zeros(&[1]), Mode::Train);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        let dx = l.backward(&Tensor::ones(&[1]));
        assert!((dx.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_is_odd_with_unit_slope_at_zero() {
        let mut l = Tanh::new();
        let y = l.forward(&Tensor::from_vec(vec![2], vec![1.5, -1.5]), Mode::Train);
        assert!((y.data()[0] + y.data()[1]).abs() < 1e-6);
        let mut l2 = Tanh::new();
        l2.forward(&Tensor::zeros(&[1]), Mode::Train);
        let dx = l2.backward(&Tensor::ones(&[1]));
        assert!((dx.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn numerical_gradient_check() {
        // d/dx f(x) via central differences matches backward for all three.
        let eps = 1e-3f32;
        let xs = [-1.2f32, -0.3, 0.0, 0.4, 2.0];
        let check = |mk: &dyn Fn() -> Box<dyn Layer>| {
            for &x0 in &xs {
                let mut l = mk();
                l.forward(&Tensor::from_vec(vec![1], vec![x0]), Mode::Train);
                let analytic = l.backward(&Tensor::ones(&[1])).data()[0];
                let mut lp = mk();
                let fp = lp
                    .forward(&Tensor::from_vec(vec![1], vec![x0 + eps]), Mode::Train)
                    .data()[0];
                let mut lm = mk();
                let fm = lm
                    .forward(&Tensor::from_vec(vec![1], vec![x0 - eps]), Mode::Train)
                    .data()[0];
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-2,
                    "at {x0}: analytic {analytic} vs numeric {numeric}"
                );
            }
        };
        check(&|| Box::new(Sigmoid::new()));
        check(&|| Box::new(Tanh::new()));
        // ReLU away from the kink:
        for &x0 in &[-1.0f32, 1.0] {
            let mut l = Relu::new();
            l.forward(&Tensor::from_vec(vec![1], vec![x0]), Mode::Train);
            let analytic = l.backward(&Tensor::ones(&[1])).data()[0];
            assert_eq!(analytic, if x0 > 0.0 { 1.0 } else { 0.0 });
        }
    }
}
