//! NCHW channel-axis utilities used by the branching blocks.

use cdsgd_tensor::Tensor;

/// Concatenate NCHW tensors along the channel axis. All inputs must share
/// `N`, `H`, `W`.
///
/// # Panics
/// Panics on empty input or mismatched non-channel dimensions.
pub fn concat_channels(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "cannot concat zero tensors");
    let (n, h, w) = {
        let s = parts[0].shape();
        assert_eq!(s.len(), 4, "concat_channels expects [N,C,H,W]");
        (s[0], s[2], s[3])
    };
    let total_c: usize = parts
        .iter()
        .map(|p| {
            let s = p.shape();
            assert_eq!((s[0], s[2], s[3]), (n, h, w), "non-channel dims must match");
            s[1]
        })
        .sum();
    let plane = h * w;
    let mut out = Tensor::zeros(&[n, total_c, h, w]);
    for s in 0..n {
        let mut c_off = 0usize;
        for p in parts {
            let pc = p.shape()[1];
            let src = &p.data()[s * pc * plane..(s + 1) * pc * plane];
            let dst_base = (s * total_c + c_off) * plane;
            out.data_mut()[dst_base..dst_base + pc * plane].copy_from_slice(src);
            c_off += pc;
        }
    }
    out
}

/// Split an NCHW tensor along channels into chunks of the given sizes.
/// Inverse of [`concat_channels`].
///
/// # Panics
/// Panics if the chunk sizes don't sum to the channel count.
pub fn split_channels(x: &Tensor, sizes: &[usize]) -> Vec<Tensor> {
    assert_eq!(x.ndim(), 4, "split_channels expects [N,C,H,W]");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    assert_eq!(
        sizes.iter().sum::<usize>(),
        c,
        "chunk sizes must cover all channels"
    );
    let plane = h * w;
    let mut parts: Vec<Tensor> = sizes
        .iter()
        .map(|&pc| Tensor::zeros(&[n, pc, h, w]))
        .collect();
    for s in 0..n {
        let mut c_off = 0usize;
        for (part, &pc) in parts.iter_mut().zip(sizes) {
            let src_base = (s * c + c_off) * plane;
            let dst = &mut part.data_mut()[s * pc * plane..(s + 1) * pc * plane];
            dst.copy_from_slice(&x.data()[src_base..src_base + pc * plane]);
            c_off += pc;
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_tensor::SmallRng64;

    #[test]
    fn concat_then_split_round_trips() {
        let mut rng = SmallRng64::new(0);
        let a = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[2, 5, 4, 4], 1.0, &mut rng);
        let c = Tensor::randn(&[2, 1, 4, 4], 1.0, &mut rng);
        let cat = concat_channels(&[a.clone(), b.clone(), c.clone()]);
        assert_eq!(cat.shape(), &[2, 9, 4, 4]);
        let parts = split_channels(&cat, &[3, 5, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
        assert_eq!(parts[2], c);
    }

    #[test]
    fn concat_preserves_per_sample_layout() {
        // Sample 0 channels come before sample 1 channels of the same part.
        let a = Tensor::from_vec(vec![2, 1, 1, 1], vec![1., 2.]);
        let b = Tensor::from_vec(vec![2, 1, 1, 1], vec![10., 20.]);
        let cat = concat_channels(&[a, b]);
        assert_eq!(cat.data(), &[1., 10., 2., 20.]);
    }

    #[test]
    #[should_panic(expected = "non-channel dims")]
    fn mismatched_spatial_dims_panic() {
        let a = Tensor::zeros(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1, 1, 3, 3]);
        concat_channels(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "cover all channels")]
    fn bad_split_sizes_panic() {
        split_channels(&Tensor::zeros(&[1, 4, 2, 2]), &[1, 2]);
    }
}
