//! Softmax cross-entropy loss.

use cdsgd_tensor::Tensor;

/// Fused softmax + cross-entropy over integer class labels.
///
/// The fused form is numerically stable and has the famously simple
/// gradient `(softmax(logits) − onehot) / N`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Mean cross-entropy loss and its gradient w.r.t. the logits.
    ///
    /// `logits` is `[N, C]`, `labels` has `N` entries in `0..C`.
    ///
    /// # Panics
    /// Panics on shape/label mismatches.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        assert_eq!(logits.ndim(), 2, "logits must be [N, C]");
        let (n, c) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(labels.len(), n, "one label per sample");
        assert!(labels.iter().all(|&l| l < c), "label out of range");

        let probs = logits.softmax_rows();
        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        let inv_n = 1.0 / n as f32;
        for (i, &label) in labels.iter().enumerate() {
            let p = probs.at(&[i, label]).max(1e-12);
            loss -= p.ln();
            *grad.at_mut(&[i, label]) -= 1.0;
        }
        grad.scale_inplace(inv_n);
        (loss * inv_n, grad)
    }

    /// Classification accuracy of `logits` against `labels` in `[0,1]`.
    pub fn accuracy(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        let preds = logits.argmax_rows();
        if preds.is_empty() {
            return 0.0;
        }
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f32 / preds.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_tensor::SmallRng64;

    #[test]
    fn uniform_logits_give_ln_c() {
        let loss_fn = SoftmaxCrossEntropy;
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = loss_fn.loss_and_grad(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_loss_near_zero() {
        let loss_fn = SoftmaxCrossEntropy;
        let mut logits = Tensor::zeros(&[2, 3]);
        *logits.at_mut(&[0, 1]) = 50.0;
        *logits.at_mut(&[1, 2]) = 50.0;
        let (loss, _) = loss_fn.loss_and_grad(&logits, &[1, 2]);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // Σ_c (p_c - y_c) = 1 - 1 = 0 per row.
        let loss_fn = SoftmaxCrossEntropy;
        let mut rng = SmallRng64::new(0);
        let logits = Tensor::randn(&[5, 7], 2.0, &mut rng);
        let (_, grad) = loss_fn.loss_and_grad(&logits, &[0, 1, 2, 3, 4]);
        for row in grad.data().chunks_exact(7) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-5, "row sum {s}");
        }
    }

    #[test]
    fn numerical_gradient_check() {
        let loss_fn = SoftmaxCrossEntropy;
        let mut rng = SmallRng64::new(1);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = [2usize, 0, 3];
        let (_, grad) = loss_fn.loss_and_grad(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = loss_fn.loss_and_grad(&lp, &labels);
            let (fm, _) = loss_fn.loss_and_grad(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((grad.data()[i] - numeric).abs() < 1e-3, "grad[{i}]");
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let loss_fn = SoftmaxCrossEntropy;
        let logits = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 0.]);
        let acc = loss_fn.accuracy(&logits, &[0, 1, 1]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        SoftmaxCrossEntropy.loss_and_grad(&Tensor::zeros(&[1, 3]), &[3]);
    }
}
