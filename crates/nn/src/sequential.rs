//! The [`Sequential`] container: an ordered stack of layers with stable
//! per-parameter keys — the sharding unit the parameter server uses.

use crate::layer::{Layer, Mode, Param};
use cdsgd_tensor::Tensor;

/// An ordered stack of layers applied one after another.
///
/// Parameter keys: the i-th parameter encountered by a depth-first
/// [`Layer::visit_params`] walk has key `i`. The walk order is fixed by
/// construction, so keys are stable across iterations and identical on
/// every worker — the property the PS push/pull protocol relies on.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty container.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Flattened parameter sizes in key order: `sizes()[key]` is the
    /// element count of parameter `key`.
    pub fn param_sizes(&mut self) -> Vec<usize> {
        let mut sizes = Vec::new();
        self.visit_params(&mut |p| sizes.push(p.len()));
        sizes
    }

    /// Copy all parameter values out, one `Vec<f32>` per key.
    pub fn export_params(&mut self) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        self.export_params_into(&mut out);
        out
    }

    /// Copy parameter values into `out`, reusing its per-key buffers
    /// across calls (the hot-loop variant of
    /// [`Sequential::export_params`]). `out` is resized to exactly one
    /// vector per key.
    pub fn export_params_into(&mut self, out: &mut Vec<Vec<f32>>) {
        let mut i = 0usize;
        self.visit_params(&mut |p| {
            if i == out.len() {
                out.push(Vec::new());
            }
            out[i].clear();
            out[i].extend_from_slice(p.value.data());
            i += 1;
        });
        out.truncate(i);
    }

    /// Copy all gradients out, one `Vec<f32>` per key.
    pub fn export_grads(&mut self) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        self.export_grads_into(&mut out);
        out
    }

    /// Copy gradients into `out`, reusing its per-key buffers across
    /// calls (the hot-loop variant of [`Sequential::export_grads`]).
    pub fn export_grads_into(&mut self, out: &mut Vec<Vec<f32>>) {
        let mut i = 0usize;
        self.visit_params(&mut |p| {
            if i == out.len() {
                out.push(Vec::new());
            }
            out[i].clear();
            out[i].extend_from_slice(p.grad.data());
            i += 1;
        });
        out.truncate(i);
    }

    /// Overwrite parameter values from per-key slices.
    ///
    /// # Panics
    /// Panics if the number of keys or any length mismatches.
    pub fn import_params(&mut self, values: &[Vec<f32>]) {
        self.import_params_from(values);
    }

    /// Overwrite parameter values from anything slice-like per key —
    /// `Vec<f32>`, `Arc<[f32]>` (zero-copy PS snapshots), `&[f32]`, …
    ///
    /// # Panics
    /// Panics if the number of keys or any length mismatches.
    pub fn import_params_from<S: AsRef<[f32]>>(&mut self, values: &[S]) {
        let mut i = 0usize;
        self.visit_params(&mut |p| {
            assert!(i < values.len(), "too few parameter vectors");
            let v = values[i].as_ref();
            assert_eq!(v.len(), p.len(), "param {i} length mismatch");
            p.value.data_mut().copy_from_slice(v);
            i += 1;
        });
        assert_eq!(i, values.len(), "too many parameter vectors");
    }

    /// Apply `value[key] += alpha * delta[key]` for all keys.
    pub fn axpy_params(&mut self, alpha: f32, deltas: &[Vec<f32>]) {
        let mut i = 0usize;
        self.visit_params(&mut |p| {
            assert_eq!(deltas[i].len(), p.len(), "param {i} length mismatch");
            for (v, &d) in p.value.data_mut().iter_mut().zip(&deltas[i]) {
                *v += alpha * d;
            }
            i += 1;
        });
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut cur = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use cdsgd_tensor::SmallRng64;

    fn tiny_model(rng: &mut SmallRng64) -> Sequential {
        Sequential::new()
            .push(Dense::new(3, 4, rng))
            .push(Relu::new())
            .push(Dense::new(4, 2, rng))
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = SmallRng64::new(0);
        let mut m = tiny_model(&mut rng);
        let x = Tensor::randn(&[5, 3], 1.0, &mut rng);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[5, 2]);
        let dx = m.backward(&Tensor::ones(&[5, 2]));
        assert_eq!(dx.shape(), &[5, 3]);
    }

    #[test]
    fn param_keys_are_stable_and_complete() {
        let mut rng = SmallRng64::new(1);
        let mut m = tiny_model(&mut rng);
        let sizes = m.param_sizes();
        // dense1 W (3*4) + b (4) + dense2 W (4*2) + b (2)
        assert_eq!(sizes, vec![12, 4, 8, 2]);
        assert_eq!(m.num_params(), 26);
        // Stability: second call yields the same layout.
        assert_eq!(m.param_sizes(), sizes);
    }

    #[test]
    fn export_import_round_trip() {
        let mut rng = SmallRng64::new(2);
        let mut m = tiny_model(&mut rng);
        let snapshot = m.export_params();
        // Perturb, then restore.
        let zeros: Vec<Vec<f32>> = snapshot.iter().map(|v| vec![0.0; v.len()]).collect();
        m.import_params(&zeros);
        assert!(m
            .export_params()
            .iter()
            .all(|v| v.iter().all(|&x| x == 0.0)));
        m.import_params(&snapshot);
        assert_eq!(m.export_params(), snapshot);
    }

    #[test]
    fn axpy_params_applies_update() {
        let mut rng = SmallRng64::new(3);
        let mut m = tiny_model(&mut rng);
        let before = m.export_params();
        let ones: Vec<Vec<f32>> = before.iter().map(|v| vec![1.0; v.len()]).collect();
        m.axpy_params(-0.5, &ones);
        let after = m.export_params();
        for (b, a) in before.iter().zip(&after) {
            for (x, y) in b.iter().zip(a) {
                assert!((x - 0.5 - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn identical_seeds_build_identical_models() {
        // Workers rely on this: same seed => same initial global weights.
        let mut r1 = SmallRng64::new(7);
        let mut r2 = SmallRng64::new(7);
        let mut m1 = tiny_model(&mut r1);
        let mut m2 = tiny_model(&mut r2);
        assert_eq!(m1.export_params(), m2.export_params());
    }

    #[test]
    fn export_into_reuses_buffers_and_matches_export() {
        let mut rng = SmallRng64::new(9);
        let mut m = tiny_model(&mut rng);
        let mut scratch: Vec<Vec<f32>> = vec![Vec::with_capacity(64); 7]; // extra slots shrink
        m.export_params_into(&mut scratch);
        assert_eq!(scratch, m.export_params());
        let ptrs: Vec<*const f32> = scratch.iter().map(|v| v.as_ptr()).collect();
        m.export_grads_into(&mut scratch);
        assert_eq!(scratch, m.export_grads());
        // Same allocations reused across calls (capacity was sufficient).
        assert_eq!(ptrs, scratch.iter().map(|v| v.as_ptr()).collect::<Vec<_>>());
    }

    #[test]
    fn import_from_accepts_shared_slices() {
        use std::sync::Arc;
        let mut rng = SmallRng64::new(10);
        let mut m = tiny_model(&mut rng);
        let snapshot: Vec<Arc<[f32]>> = m.export_params().into_iter().map(Arc::from).collect();
        let zeros: Vec<Vec<f32>> = snapshot.iter().map(|v| vec![0.0; v.len()]).collect();
        m.import_params(&zeros);
        m.import_params_from(&snapshot);
        let restored = m.export_params();
        for (r, s) in restored.iter().zip(&snapshot) {
            assert_eq!(r.as_slice(), s.as_ref());
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn import_bad_lengths_panics() {
        let mut rng = SmallRng64::new(4);
        let mut m = tiny_model(&mut rng);
        let mut p = m.export_params();
        p[0].pop();
        m.import_params(&p);
    }
}
