//! Batch normalization over NCHW feature maps.

use crate::layer::{Layer, Mode, Param};
use cdsgd_tensor::Tensor;

/// Per-channel batch normalization (Ioffe & Szegedy), the "bn" in the
/// paper's Inception-bn workload.
///
/// Training mode normalizes with batch statistics over `(N, H, W)` and
/// maintains exponential running averages; evaluation mode uses the
/// running averages. `gamma`/`beta` are learnable; running statistics are
/// worker-local state (as in real data-parallel training, where BN moments
/// are not synchronized through the parameter server).
#[derive(Debug)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    /// Cache: normalized input, batch std-dev per channel, input shape.
    cache: Option<(Tensor, Vec<f32>, Vec<usize>)>,
}

impl BatchNorm2d {
    /// Batch norm over `channels` feature maps with default eps/momentum.
    pub fn new(channels: usize) -> Self {
        Self {
            channels,
            eps: 1e-5,
            momentum: 0.9,
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// Per-channel reduction size for an input shape.
    fn plane(shape: &[usize]) -> usize {
        shape[0] * shape[2] * shape[3]
    }

    /// Iterate linear indices of channel `c` for shape `[n,ch,h,w]`.
    fn channel_indices(shape: &[usize], c: usize) -> impl Iterator<Item = usize> + '_ {
        let (n, ch, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        (0..n).flat_map(move |s| {
            let base = (s * ch + c) * h * w;
            base..base + h * w
        })
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.ndim(), 4, "BatchNorm2d expects [N,C,H,W]");
        assert_eq!(x.shape()[1], self.channels, "channel mismatch");
        let shape = x.shape().to_vec();
        let m = Self::plane(&shape) as f32;
        let mut out = Tensor::zeros(&shape);
        let mut xhat = Tensor::zeros(&shape);
        let mut stds = vec![0.0f32; self.channels];

        #[allow(clippy::needless_range_loop)]
        for c in 0..self.channels {
            let (mean, var) = match mode {
                Mode::Train => {
                    let mut sum = 0.0f32;
                    for i in Self::channel_indices(&shape, c) {
                        sum += x.data()[i];
                    }
                    let mean = sum / m;
                    let mut var = 0.0f32;
                    for i in Self::channel_indices(&shape, c) {
                        let d = x.data()[i] - mean;
                        var += d * d;
                    }
                    let var = var / m;
                    self.running_mean[c] =
                        self.momentum * self.running_mean[c] + (1.0 - self.momentum) * mean;
                    self.running_var[c] =
                        self.momentum * self.running_var[c] + (1.0 - self.momentum) * var;
                    (mean, var)
                }
                Mode::Eval => (self.running_mean[c], self.running_var[c]),
            };
            let std = (var + self.eps).sqrt();
            stds[c] = std;
            let g = self.gamma.value.data()[c];
            let b = self.beta.value.data()[c];
            for i in Self::channel_indices(&shape, c) {
                let xn = (x.data()[i] - mean) / std;
                xhat.data_mut()[i] = xn;
                out.data_mut()[i] = g * xn + b;
            }
        }
        if mode == Mode::Train {
            self.cache = Some((xhat, stds, shape));
        }
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (xhat, stds, shape) = self.cache.take().expect("backward without train forward");
        assert_eq!(dy.shape(), shape.as_slice());
        let m = Self::plane(&shape) as f32;
        let mut dx = Tensor::zeros(&shape);

        #[allow(clippy::needless_range_loop)]
        for c in 0..self.channels {
            // Standard BN backward:
            // dβ = Σ dy ; dγ = Σ dy·x̂
            // dx = γ/std · (dy − mean(dy) − x̂·mean(dy·x̂))
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for i in Self::channel_indices(&shape, c) {
                sum_dy += dy.data()[i];
                sum_dy_xhat += dy.data()[i] * xhat.data()[i];
            }
            self.beta.grad.data_mut()[c] = sum_dy;
            self.gamma.grad.data_mut()[c] = sum_dy_xhat;
            let g = self.gamma.value.data()[c];
            let scale = g / stds[c];
            let mean_dy = sum_dy / m;
            let mean_dy_xhat = sum_dy_xhat / m;
            for i in Self::channel_indices(&shape, c) {
                dx.data_mut()[i] = scale * (dy.data()[i] - mean_dy - xhat.data()[i] * mean_dy_xhat);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_tensor::SmallRng64;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = SmallRng64::new(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], 3.0, &mut rng).map(|v| v + 2.0);
        let y = bn.forward(&x, Mode::Train);
        // Each channel of y should have ~zero mean, ~unit variance.
        let shape = x.shape().to_vec();
        for c in 0..3 {
            let vals: Vec<f32> = BatchNorm2d::channel_indices(&shape, c)
                .map(|i| y.data()[i])
                .collect();
            let m = vals.iter().sum::<f32>() / vals.len() as f32;
            let v = vals.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / vals.len() as f32;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = SmallRng64::new(1);
        let mut bn = BatchNorm2d::new(2);
        // Train several batches so running stats adapt.
        for _ in 0..50 {
            let x = Tensor::randn(&[8, 2, 3, 3], 2.0, &mut rng).map(|v| v + 5.0);
            bn.forward(&x, Mode::Train);
        }
        // In eval mode the same distribution should map to ~N(0,1).
        let x = Tensor::randn(&[64, 2, 3, 3], 2.0, &mut rng).map(|v| v + 5.0);
        let y = bn.forward(&x, Mode::Eval);
        let m = y.mean();
        assert!(m.abs() < 0.2, "eval mean {m}");
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.value = Tensor::from_vec(vec![1], vec![2.0]);
        bn.beta.value = Tensor::from_vec(vec![1], vec![3.0]);
        let x = Tensor::from_vec(vec![2, 1, 1, 1], vec![-1.0, 1.0]);
        let y = bn.forward(&x, Mode::Train);
        // Normalized x is ±1, so y = ±2 + 3.
        assert!((y.data()[0] - 1.0).abs() < 1e-2);
        assert!((y.data()[1] - 5.0).abs() < 1e-2);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = SmallRng64::new(2);
        let x = Tensor::randn(&[3, 2, 2, 2], 1.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        // Non-trivial gamma to exercise the scale path.
        bn.gamma.value = Tensor::from_vec(vec![2], vec![1.5, 0.5]);

        // Loss = Σ y_i * w_i with fixed random weights (sum alone has zero
        // gradient through normalization).
        let w = Tensor::randn(&[3 * 2 * 2 * 2], 1.0, &mut rng);
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            bn.forward(x, Mode::Train)
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        loss(&mut bn, &x);
        let dy = Tensor::from_vec(x.shape().to_vec(), w.data().to_vec());
        bn.forward(&x, Mode::Train);
        let dx = bn.backward(&dy);
        let dgamma = bn.gamma.grad.clone();

        let eps = 1e-2f32;
        for i in (0..x.len()).step_by(3) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            // Use fresh BN copies so running stats do not drift the check.
            let mut b1 = BatchNorm2d::new(2);
            b1.gamma.value = bn.gamma.value.clone();
            let mut b2 = BatchNorm2d::new(2);
            b2.gamma.value = bn.gamma.value.clone();
            let numeric = (loss(&mut b1, &xp) - loss(&mut b2, &xm)) / (2.0 * eps);
            assert!(
                (dx.data()[i] - numeric).abs() < 0.05,
                "dx[{i}] {} vs {numeric}",
                dx.data()[i]
            );
        }
        for c in 0..2 {
            let orig = bn.gamma.value.data()[c];
            bn.gamma.value.data_mut()[c] = orig + eps;
            let fp = loss(&mut bn, &x);
            bn.gamma.value.data_mut()[c] = orig - eps;
            let fm = loss(&mut bn, &x);
            bn.gamma.value.data_mut()[c] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((dgamma.data()[c] - numeric).abs() < 0.05, "dgamma[{c}]");
        }
    }
}
