//! The model zoo: builders for the architectures the paper trains.
//!
//! Models match the papers' layer *structure* but are width-scaled so CPU
//! training converges in minutes (DESIGN.md §2). The `width` parameters
//! default to the paper-faithful values; the experiment harnesses pass
//! smaller widths.

use crate::activation::{Relu, Tanh};
use crate::batchnorm::BatchNorm2d;
use crate::blocks::{InceptionBlock, ResidualBlock};
use crate::conv2d::Conv2d;
use crate::dense::Dense;
use crate::flatten::Flatten;
use crate::pool::{GlobalAvgPool, MaxPool2d};
use crate::sequential::Sequential;
use cdsgd_tensor::SmallRng64;

/// A plain multi-layer perceptron with ReLU hidden activations.
/// `dims` is `[input, hidden..., output]`.
///
/// # Panics
/// Panics if fewer than two dims are given.
pub fn mlp(dims: &[usize], rng: &mut SmallRng64) -> Sequential {
    assert!(dims.len() >= 2, "mlp needs at least input and output dims");
    let mut m = Sequential::new();
    for i in 0..dims.len() - 1 {
        m = m.push(Dense::new(dims[i], dims[i + 1], rng));
        if i + 2 < dims.len() {
            m = m.push(Relu::new());
        }
    }
    m
}

/// LeNet-5 for 28×28 single-channel input (the paper's MNIST workload,
/// Fig. 6): conv5×5(6) → pool → conv5×5(16) → pool → 120 → 84 → classes,
/// with tanh activations as in the original.
pub fn lenet5(num_classes: usize, rng: &mut SmallRng64) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(1, 6, 5, 1, 2, rng)) // 28x28 -> 28x28
        .push(Tanh::new())
        .push(MaxPool2d::new(2, 2)) // -> 14x14
        .push(Conv2d::new(6, 16, 5, 1, 0, rng)) // -> 10x10
        .push(Tanh::new())
        .push(MaxPool2d::new(2, 2)) // -> 5x5
        .push(Flatten::new())
        .push(Dense::new(16 * 5 * 5, 120, rng))
        .push(Tanh::new())
        .push(Dense::new(120, 84, rng))
        .push(Tanh::new())
        .push(Dense::new(84, num_classes, rng))
}

/// ResNet-20-style network for 32×32 RGB input (the paper's CIFAR-10
/// k-step workload, Fig. 9 / Table 2): a conv stem then three stages of
/// `blocks_per_stage` residual blocks at widths `w, 2w, 4w`, global
/// average pooling and a linear classifier.
///
/// The real ResNet-20 is `width=16, blocks_per_stage=3`; the experiment
/// harnesses use `width=8, blocks_per_stage=1` ("ResNet-8") to fit the
/// CPU budget while keeping the exact topology family.
pub fn resnet_cifar(
    width: usize,
    blocks_per_stage: usize,
    num_classes: usize,
    rng: &mut SmallRng64,
) -> Sequential {
    assert!(width > 0 && blocks_per_stage > 0);
    let mut m = Sequential::new()
        .push(Conv2d::new(3, width, 3, 1, 1, rng))
        .push(BatchNorm2d::new(width))
        .push(Relu::new());
    let mut in_c = width;
    for (stage, &w) in [width, 2 * width, 4 * width].iter().enumerate() {
        for b in 0..blocks_per_stage {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            m = m.push(ResidualBlock::new(in_c, w, stride, rng));
            in_c = w;
        }
    }
    m.push(GlobalAvgPool::new())
        .push(Dense::new(in_c, num_classes, rng))
}

/// Inception-bn-style network for 32×32 RGB input (the paper's CIFAR-10
/// convergence workload, Fig. 7): conv stem, two inception blocks with a
/// spatial downsample between them, global average pooling, classifier.
///
/// `width` scales every branch; `width=8` is the CPU-budget setting.
pub fn inception_cifar(width: usize, num_classes: usize, rng: &mut SmallRng64) -> Sequential {
    assert!(width > 0);
    let w = width;
    let stem_c = 2 * w;
    let b1 = InceptionBlock::new(stem_c, w, 2 * w, w, w, rng);
    let b1_out = b1.out_channels();
    let b2 = InceptionBlock::new(b1_out, 2 * w, 3 * w, w, w, rng);
    let b2_out = b2.out_channels();
    Sequential::new()
        .push(Conv2d::new(3, stem_c, 3, 1, 1, rng)) // 32x32
        .push(BatchNorm2d::new(stem_c))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2)) // -> 16x16
        .push(b1)
        .push(MaxPool2d::new(2, 2)) // -> 8x8
        .push(b2)
        .push(GlobalAvgPool::new())
        .push(Dense::new(b2_out, num_classes, rng))
}

/// ResNet-50-style network scaled for 32x32 or 64×64 RGB input (the
/// paper's ImageNet workload, Fig. 8): deeper stem + four residual
/// stages. This is the topology family; true ResNet-50 bottlenecks are
/// approximated by basic blocks to keep the CPU budget sane.
pub fn resnet_imagenet(width: usize, num_classes: usize, rng: &mut SmallRng64) -> Sequential {
    assert!(width > 0);
    let w = width;
    let mut m = Sequential::new()
        .push(Conv2d::new(3, w, 3, 1, 1, rng))
        .push(BatchNorm2d::new(w))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2));
    let mut in_c = w;
    for (stage, &sw) in [w, 2 * w, 4 * w, 8 * w].iter().enumerate() {
        let stride = if stage > 0 { 2 } else { 1 };
        m = m.push(ResidualBlock::new(in_c, sw, stride, rng));
        in_c = sw;
    }
    m.push(GlobalAvgPool::new())
        .push(Dense::new(in_c, num_classes, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use crate::loss::SoftmaxCrossEntropy;
    use cdsgd_tensor::Tensor;

    #[test]
    fn mlp_shapes() {
        let mut rng = SmallRng64::new(0);
        let mut m = mlp(&[8, 16, 4], &mut rng);
        let y = m.forward(&Tensor::zeros(&[3, 8]), Mode::Train);
        assert_eq!(y.shape(), &[3, 4]);
        assert_eq!(m.num_params(), 8 * 16 + 16 + 16 * 4 + 4);
    }

    #[test]
    fn lenet5_shapes_and_param_count() {
        let mut rng = SmallRng64::new(1);
        let mut m = lenet5(10, &mut rng);
        let y = m.forward(&Tensor::zeros(&[2, 1, 28, 28]), Mode::Train);
        assert_eq!(y.shape(), &[2, 10]);
        // Classic LeNet-5 parameter count ≈ 61,706.
        assert_eq!(m.num_params(), 61_706);
        let dx = m.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), &[2, 1, 28, 28]);
    }

    #[test]
    fn resnet_cifar_shapes() {
        let mut rng = SmallRng64::new(2);
        let mut m = resnet_cifar(8, 1, 10, &mut rng);
        let y = m.forward(&Tensor::zeros(&[2, 3, 32, 32]), Mode::Train);
        assert_eq!(y.shape(), &[2, 10]);
        let dx = m.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), &[2, 3, 32, 32]);
    }

    #[test]
    fn resnet20_true_width_param_count_in_range() {
        // Real ResNet-20 has ~0.27M params; our basic-block version with
        // width 16 and 3 blocks/stage should land in the same ballpark.
        let mut rng = SmallRng64::new(3);
        let mut m = resnet_cifar(16, 3, 10, &mut rng);
        let n = m.num_params();
        assert!(n > 200_000 && n < 400_000, "param count {n}");
    }

    #[test]
    fn inception_cifar_shapes() {
        let mut rng = SmallRng64::new(4);
        let mut m = inception_cifar(4, 10, &mut rng);
        let y = m.forward(&Tensor::zeros(&[2, 3, 32, 32]), Mode::Train);
        assert_eq!(y.shape(), &[2, 10]);
        let dx = m.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), &[2, 3, 32, 32]);
    }

    #[test]
    fn resnet_imagenet_shapes() {
        let mut rng = SmallRng64::new(5);
        let mut m = resnet_imagenet(8, 100, &mut rng);
        let y = m.forward(&Tensor::zeros(&[1, 3, 64, 64]), Mode::Train);
        assert_eq!(y.shape(), &[1, 100]);
    }

    #[test]
    fn one_sgd_step_reduces_loss_on_fixed_batch() {
        // End-to-end sanity: a gradient step on a fixed batch lowers the
        // training loss for every model family.
        let mut rng = SmallRng64::new(6);
        let x = Tensor::randn(&[8, 3, 32, 32], 1.0, &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
        let loss_fn = SoftmaxCrossEntropy;
        for model in [
            resnet_cifar(4, 1, 10, &mut rng),
            inception_cifar(2, 10, &mut rng),
        ] {
            let mut m = model;
            let logits = m.forward(&x, Mode::Train);
            let (l0, grad) = loss_fn.loss_and_grad(&logits, &labels);
            m.backward(&grad);
            let g = m.export_grads();
            m.axpy_params(-0.5, &g);
            let logits = m.forward(&x, Mode::Train);
            let (l1, _) = loss_fn.loss_and_grad(&logits, &labels);
            assert!(l1 < l0, "loss did not drop: {l0} -> {l1}");
        }
    }
}
