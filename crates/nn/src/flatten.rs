//! Flatten NCHW feature maps to [N, C·H·W] matrices.

use crate::layer::{Layer, Mode};
use cdsgd_tensor::Tensor;

/// Flattens all but the leading (batch) dimension.
#[derive(Debug, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert!(x.ndim() >= 2, "Flatten needs a batch dimension");
        self.in_shape = x.shape().to_vec();
        let n = x.shape()[0];
        x.clone().reshape(vec![n, 0])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward without forward");
        dy.clone().reshape(self.in_shape.clone())
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(vec![2, 3, 2, 2], (0..24).map(|i| i as f32).collect());
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 12]);
        assert_eq!(y.data(), x.data());
        let dx = f.backward(&y);
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dx.data(), x.data());
    }
}
