//! Inverted dropout.

use crate::layer::{Layer, Mode};
use cdsgd_tensor::{SmallRng64, Tensor};

/// Inverted dropout: in training, zeroes each activation with probability
/// `p` and scales survivors by `1/(1-p)`; identity in evaluation mode.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: SmallRng64,
    mask: Vec<f32>,
    train_pass: bool,
}

impl Dropout {
    /// Dropout with drop probability `p` and a deterministic mask stream.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        Self {
            p,
            rng: SmallRng64::new(seed),
            mask: Vec::new(),
            train_pass: false,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        match mode {
            Mode::Eval => {
                self.train_pass = false;
                x.clone()
            }
            Mode::Train => {
                let keep = 1.0 - self.p;
                let inv = 1.0 / keep;
                self.mask = (0..x.len())
                    .map(|_| if self.rng.unit_f32() < keep { inv } else { 0.0 })
                    .collect();
                self.train_pass = true;
                let data = x
                    .data()
                    .iter()
                    .zip(&self.mask)
                    .map(|(&v, &m)| v * m)
                    .collect();
                Tensor::from_vec(x.shape().to_vec(), data)
            }
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        if !self.train_pass {
            return dy.clone();
        }
        assert_eq!(
            dy.len(),
            self.mask.len(),
            "backward without matching forward"
        );
        let data = dy
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| g * m)
            .collect();
        Tensor::from_vec(dy.shape().to_vec(), data)
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::ones(&[100]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn train_zeroes_about_p_fraction() {
        let mut d = Dropout::new(0.3, 1);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, Mode::Train);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!(
            (zeros as f32 / 10_000.0 - 0.3).abs() < 0.03,
            "{zeros} zeros"
        );
        // Survivors are scaled by 1/0.7 so the expectation is preserved.
        let m = y.mean();
        assert!((m - 1.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, Mode::Train);
        let dx = d.backward(&Tensor::ones(&[64]));
        // dx is nonzero exactly where y is nonzero.
        for (a, b) in y.data().iter().zip(dx.data()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn zero_p_is_identity_in_train() {
        let mut d = Dropout::new(0.0, 3);
        let x = Tensor::ones(&[32]);
        assert_eq!(d.forward(&x, Mode::Train), x);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn p_one_rejected() {
        Dropout::new(1.0, 0);
    }
}
