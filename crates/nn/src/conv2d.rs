//! 2-D convolution layer (im2col formulation).

use crate::layer::{Layer, Mode, Param};
use cdsgd_tensor::kernel;
use cdsgd_tensor::{col2im, he_std, im2col, Conv2dGeom, SmallRng64, Tensor};

/// 2-D convolution over NCHW input.
///
/// Weight layout is `[out_c, in_c * kh * kw]` (the im2col GEMM shape);
/// bias is `[out_c]`. The spatial geometry is fixed at construction only
/// in `(in_c, k, stride, pad)`; input H/W are discovered per forward.
#[derive(Debug)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    weight: Param,
    bias: Param,
    /// Cached per-forward state: geometry and the per-sample column
    /// matrices (needed for dW), plus the batch size.
    cache: Option<(Conv2dGeom, Vec<Tensor>)>,
}

impl Conv2d {
    /// He-initialized convolution. `k` is the (square) kernel size.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut SmallRng64,
    ) -> Self {
        let fan_in = in_c * k * k;
        Self {
            in_c,
            out_c,
            k,
            stride,
            pad,
            weight: Param::new(Tensor::randn(&[out_c, fan_in], he_std(fan_in), rng)),
            bias: Param::new(Tensor::zeros(&[out_c])),
            cache: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    fn geom(&self, h: usize, w: usize) -> Conv2dGeom {
        Conv2dGeom {
            c: self.in_c,
            h,
            w,
            kh: self.k,
            kw: self.k,
            stride: self.stride,
            pad: self.pad,
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.ndim(), 4, "Conv2d expects [N,C,H,W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.in_c, "input channel mismatch");
        let g = self.geom(h, w);
        let (oh, ow) = (g.out_h(), g.out_w());
        let img_len = c * h * w;
        let out_plane = oh * ow;

        let mut out = Tensor::zeros(&[n, self.out_c, oh, ow]);
        let mut cols = Vec::with_capacity(n);
        for s in 0..n {
            let col = im2col(&x.data()[s * img_len..(s + 1) * img_len], &g);
            let y = self.weight.value.matmul(&col); // [out_c, oh*ow]
            let dst =
                &mut out.data_mut()[s * self.out_c * out_plane..(s + 1) * self.out_c * out_plane];
            dst.copy_from_slice(y.data());
            // Add bias per output channel.
            for oc in 0..self.out_c {
                let b = self.bias.value.data()[oc];
                kernel::add_scalar(&mut dst[oc * out_plane..(oc + 1) * out_plane], b);
            }
            cols.push(col);
        }
        self.cache = Some((g, cols));
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (g, cols) = self.cache.take().expect("backward without forward");
        let n = dy.shape()[0];
        assert_eq!(dy.shape()[1], self.out_c);
        let out_plane = g.out_h() * g.out_w();
        let img_len = g.c * g.h * g.w;

        self.weight.grad.fill_zero();
        self.bias.grad.fill_zero();
        let mut dx = Tensor::zeros(&[n, g.c, g.h, g.w]);
        for (s, col) in cols.iter().enumerate() {
            let dy_s = Tensor::from_vec(
                vec![self.out_c, out_plane],
                dy.data()[s * self.out_c * out_plane..(s + 1) * self.out_c * out_plane].to_vec(),
            );
            // dW += dy_s · colᵀ
            self.weight.grad.add_assign(&dy_s.matmul_nt(col));
            // db += Σ_spatial dy (sequential, order-pinned)
            for oc in 0..self.out_c {
                self.bias.grad.data_mut()[oc] +=
                    kernel::reduce_sum(&dy_s.data()[oc * out_plane..(oc + 1) * out_plane]);
            }
            // dcol = Wᵀ · dy_s, scattered back through col2im.
            let dcol = self.weight.value.matmul_tn(&dy_s);
            col2im(
                &dcol,
                &g,
                &mut dx.data_mut()[s * img_len..(s + 1) * img_len],
            );
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_and_param_count() {
        let mut rng = SmallRng64::new(0);
        let mut c = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        assert_eq!(c.num_params(), 8 * 27 + 8);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
        let dx = c.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn stride_halves_spatial_dims() {
        let mut rng = SmallRng64::new(1);
        let mut c = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 1, 8, 8], 1.0, &mut rng);
        assert_eq!(c.forward(&x, Mode::Train).shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn bias_shifts_all_outputs() {
        let mut rng = SmallRng64::new(2);
        let mut c = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        c.weight.value = Tensor::from_vec(vec![1, 1], vec![1.0]);
        c.bias.value = Tensor::from_vec(vec![1], vec![5.0]);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[6., 7., 8., 9.]);
    }

    #[test]
    fn numerical_gradient_check_weights_and_input() {
        let mut rng = SmallRng64::new(3);
        let mut c = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = c.forward(&x, Mode::Train);
        let dx = c.backward(&Tensor::ones(y.shape()));
        let dw = c.weight.grad.clone();
        let db = c.bias.grad.clone();

        let eps = 1e-2f32;
        // Spot-check a sample of weight coordinates.
        for i in (0..dw.len()).step_by(7) {
            let orig = c.weight.value.data()[i];
            c.weight.value.data_mut()[i] = orig + eps;
            let fp = c.forward(&x, Mode::Train).sum();
            c.weight.value.data_mut()[i] = orig - eps;
            let fm = c.forward(&x, Mode::Train).sum();
            c.weight.value.data_mut()[i] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (dw.data()[i] - numeric).abs() < 0.05,
                "dW[{i}] {} vs {numeric}",
                dw.data()[i]
            );
        }
        // All bias coordinates.
        for i in 0..db.len() {
            let orig = c.bias.value.data()[i];
            c.bias.value.data_mut()[i] = orig + eps;
            let fp = c.forward(&x, Mode::Train).sum();
            c.bias.value.data_mut()[i] = orig - eps;
            let fm = c.forward(&x, Mode::Train).sum();
            c.bias.value.data_mut()[i] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((db.data()[i] - numeric).abs() < 0.05, "db[{i}]");
        }
        // Sampled input coordinates.
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = c.forward(&xp, Mode::Train).sum();
            let fm = c.forward(&xm, Mode::Train).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((dx.data()[i] - numeric).abs() < 0.05, "dx[{i}]");
        }
    }
}
