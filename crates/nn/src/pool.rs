//! Spatial pooling layers: max, average, and global average pooling.

use crate::layer::{Layer, Mode};
use cdsgd_tensor::Tensor;

/// Non-overlapping (or strided) max pooling over NCHW input.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    stride: usize,
    /// For each output element, the linear input index that won the max.
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Max pooling with square window `k` and stride `stride`.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k > 0 && stride > 0);
        Self {
            k,
            stride,
            argmax: Vec::new(),
            in_shape: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.ndim(), 4, "MaxPool2d expects [N,C,H,W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert!(h >= self.k && w >= self.k, "window larger than input");
        let oh = (h - self.k) / self.stride + 1;
        let ow = (w - self.k) / self.stride + 1;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        self.argmax = vec![0; n * c * oh * ow];
        self.in_shape = x.shape().to_vec();
        let data = x.data();
        let od = out.data_mut();
        let mut oi = 0usize;
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for py in 0..oh {
                    for px in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..self.k {
                            for dx in 0..self.k {
                                let idx =
                                    base + (py * self.stride + dy) * w + px * self.stride + dx;
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        od[oi] = best;
                        self.argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert_eq!(
            dy.len(),
            self.argmax.len(),
            "backward without matching forward"
        );
        let mut dx = Tensor::zeros(&self.in_shape);
        let dd = dx.data_mut();
        for (&g, &idx) in dy.data().iter().zip(&self.argmax) {
            dd[idx] += g;
        }
        dx
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Strided average pooling over NCHW input.
#[derive(Debug)]
pub struct AvgPool2d {
    k: usize,
    stride: usize,
    in_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Average pooling with square window `k` and stride `stride`.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k > 0 && stride > 0);
        Self {
            k,
            stride,
            in_shape: Vec::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.ndim(), 4, "AvgPool2d expects [N,C,H,W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert!(h >= self.k && w >= self.k, "window larger than input");
        let oh = (h - self.k) / self.stride + 1;
        let ow = (w - self.k) / self.stride + 1;
        self.in_shape = x.shape().to_vec();
        let inv = 1.0 / (self.k * self.k) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let data = x.data();
        let od = out.data_mut();
        let mut oi = 0usize;
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for py in 0..oh {
                    for px in 0..ow {
                        let mut acc = 0.0f32;
                        for dy in 0..self.k {
                            for dx in 0..self.k {
                                acc += data
                                    [base + (py * self.stride + dy) * w + px * self.stride + dx];
                            }
                        }
                        od[oi] = acc * inv;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward without forward");
        let (n, c, h, w) = (
            self.in_shape[0],
            self.in_shape[1],
            self.in_shape[2],
            self.in_shape[3],
        );
        let oh = (h - self.k) / self.stride + 1;
        let ow = (w - self.k) / self.stride + 1;
        assert_eq!(dy.shape(), &[n, c, oh, ow]);
        let inv = 1.0 / (self.k * self.k) as f32;
        let mut dx = Tensor::zeros(&self.in_shape);
        let dd = dx.data_mut();
        let gd = dy.data();
        let mut oi = 0usize;
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for py in 0..oh {
                    for px in 0..ow {
                        let g = gd[oi] * inv;
                        oi += 1;
                        for dyy in 0..self.k {
                            for dxx in 0..self.k {
                                dd[base + (py * self.stride + dyy) * w + px * self.stride + dxx] +=
                                    g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn name(&self) -> &'static str {
        "avgpool2d"
    }
}

/// Global average pooling: `[N,C,H,W] -> [N,C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// New global average pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.ndim(), 4, "GlobalAvgPool expects [N,C,H,W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        self.in_shape = x.shape().to_vec();
        let inv = 1.0 / (h * w) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        for s in 0..n {
            for ch in 0..c {
                let plane = &x.data()[(s * c + ch) * h * w..(s * c + ch + 1) * h * w];
                out.data_mut()[s * c + ch] = plane.iter().sum::<f32>() * inv;
            }
        }
        out
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward without forward");
        let (n, c, h, w) = (
            self.in_shape[0],
            self.in_shape[1],
            self.in_shape[2],
            self.in_shape[3],
        );
        assert_eq!(dy.shape(), &[n, c]);
        let inv = 1.0 / (h * w) as f32;
        let mut dx = Tensor::zeros(&self.in_shape);
        for s in 0..n {
            for ch in 0..c {
                let g = dy.data()[s * c + ch] * inv;
                for v in &mut dx.data_mut()[(s * c + ch) * h * w..(s * c + ch + 1) * h * w] {
                    *v = g;
                }
            }
        }
        dx
    }

    fn name(&self) -> &'static str {
        "globalavgpool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_tensor::SmallRng64;

    #[test]
    fn maxpool_known_values() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1, 1, 2, 4], vec![1., 2., 5., 6., 3., 4., 7., 8.]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[4., 8.]);
        let dx = p.backward(&Tensor::from_vec(vec![1, 1, 1, 2], vec![10., 20.]));
        assert_eq!(dx.data(), &[0., 0., 0., 0., 0., 10., 0., 20.]);
    }

    #[test]
    fn avgpool_known_values() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[2.5]);
        let dx = p.backward(&Tensor::from_vec(vec![1, 1, 1, 1], vec![4.0]));
        assert_eq!(dx.data(), &[1., 1., 1., 1.]);
    }

    #[test]
    fn global_avg_pool_round_trip() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1., 3., 10., 20.]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.0, 15.0]);
        let dx = p.backward(&Tensor::from_vec(vec![1, 2], vec![2.0, 4.0]));
        assert_eq!(dx.data(), &[1., 1., 2., 2.]);
    }

    #[test]
    fn pooling_backward_conserves_gradient_mass() {
        // Sum of dx equals sum of dy for avg/global pools; for max pooling
        // every dy element lands on exactly one dx slot.
        let mut rng = SmallRng64::new(4);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);

        let mut mp = MaxPool2d::new(2, 2);
        let y = mp.forward(&x, Mode::Train);
        let dy = Tensor::randn(y.shape(), 1.0, &mut rng);
        let dx = mp.backward(&dy);
        assert!((dx.sum() - dy.sum()).abs() < 1e-4);

        let mut ap = AvgPool2d::new(2, 2);
        let y = ap.forward(&x, Mode::Train);
        let dy = Tensor::randn(y.shape(), 1.0, &mut rng);
        let dx = ap.backward(&dy);
        assert!((dx.sum() - dy.sum()).abs() < 1e-4);

        let mut gp = GlobalAvgPool::new();
        let y = gp.forward(&x, Mode::Train);
        let dy = Tensor::randn(y.shape(), 1.0, &mut rng);
        let dx = gp.backward(&dy);
        assert!((dx.sum() - dy.sum()).abs() < 1e-4);
    }

    #[test]
    fn maxpool_numerical_gradient() {
        let mut rng = SmallRng64::new(5);
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let mut p = MaxPool2d::new(2, 2);
        let y = p.forward(&x, Mode::Train);
        let dx = p.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = MaxPool2d::new(2, 2).forward(&xp, Mode::Train).sum();
            let fm = MaxPool2d::new(2, 2).forward(&xm, Mode::Train).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((dx.data()[i] - numeric).abs() < 1e-2, "dx[{i}]");
        }
    }
}
