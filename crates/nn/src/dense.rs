//! Fully-connected layer.

use crate::layer::{Layer, Mode, Param};
use cdsgd_tensor::{xavier_std, SmallRng64, Tensor};

/// Fully-connected layer: `y = x·W + b`, `x: [N, in]`, `W: [in, out]`.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_x: Option<Tensor>,
}

impl Dense {
    /// Xavier-initialized dense layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SmallRng64) -> Self {
        let std = xavier_std(in_features, out_features);
        Self {
            weight: Param::new(Tensor::randn(&[in_features, out_features], std, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_x: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.ndim(), 2, "Dense expects [N, in] input");
        assert_eq!(x.shape()[1], self.in_features(), "feature count mismatch");
        let mut y = x.matmul(&self.weight.value);
        y.add_row_bias(&self.bias.value);
        self.cached_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cached_x.take().expect("backward without forward");
        // dW = xᵀ·dy ; db = Σ_rows dy ; dx = dy·Wᵀ
        self.weight.grad = x.matmul_tn(dy);
        self.bias.grad = dy.sum_rows();
        dy.matmul_nt(&self.weight.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut rng = SmallRng64::new(0);
        let mut d = Dense::new(2, 2, &mut rng);
        d.weight.value = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        d.bias.value = Tensor::from_vec(vec![2], vec![10., 20.]);
        let y = d.forward(&Tensor::from_vec(vec![1, 2], vec![1., 1.]), Mode::Train);
        assert_eq!(y.data(), &[14., 26.]);
    }

    #[test]
    fn backward_shapes_and_param_count() {
        let mut rng = SmallRng64::new(1);
        let mut d = Dense::new(3, 5, &mut rng);
        assert_eq!(d.num_params(), 3 * 5 + 5);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let y = d.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[4, 5]);
        let dx = d.backward(&Tensor::ones(&[4, 5]));
        assert_eq!(dx.shape(), &[4, 3]);
        assert_eq!(d.weight.grad.shape(), &[3, 5]);
        assert_eq!(d.bias.grad.shape(), &[5]);
        // db = sum of dy rows = 4 for each output.
        assert_eq!(d.bias.grad.data(), &[4.0; 5]);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = SmallRng64::new(2);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        // Scalar loss = sum(y). Then dL/dy = ones.
        let y = d.forward(&x, Mode::Train);
        let dx = d.backward(&Tensor::ones(y.shape()));

        let eps = 1e-2f32;
        // Check dL/dx numerically.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = d.forward(&xp, Mode::Train).sum();
            let fm = d.forward(&xm, Mode::Train).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((dx.data()[i] - numeric).abs() < 1e-2, "dx[{i}]");
        }
        // Check dL/dW numerically.
        d.forward(&x, Mode::Train);
        let dw = {
            d.backward(&Tensor::ones(&[2, 2]));
            d.weight.grad.clone()
        };
        for i in 0..dw.len() {
            let orig = d.weight.value.data()[i];
            d.weight.value.data_mut()[i] = orig + eps;
            let fp = d.forward(&x, Mode::Train).sum();
            d.weight.value.data_mut()[i] = orig - eps;
            let fm = d.forward(&x, Mode::Train).sum();
            d.weight.value.data_mut()[i] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((dw.data()[i] - numeric).abs() < 1e-2, "dW[{i}]");
        }
    }

    #[test]
    #[should_panic(expected = "backward without forward")]
    fn double_backward_panics() {
        let mut rng = SmallRng64::new(3);
        let mut d = Dense::new(2, 2, &mut rng);
        d.forward(&Tensor::zeros(&[1, 2]), Mode::Train);
        d.backward(&Tensor::zeros(&[1, 2]));
        d.backward(&Tensor::zeros(&[1, 2]));
    }
}
