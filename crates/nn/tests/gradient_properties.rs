//! Property-based gradient checks: for random shapes and inputs, every
//! layer's analytic backward pass must match central-difference numerics,
//! and structural invariants (shape preservation, parameter stability)
//! must hold.

use cdsgd_nn::{
    models, AvgPool2d, BatchNorm2d, Conv2d, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2d, Mode,
    Relu, Sequential, Sigmoid, SoftmaxCrossEntropy, Tanh,
};
use cdsgd_tensor::{SmallRng64, Tensor};
use proptest::prelude::*;

/// Weighted-sum loss (sum alone has zero gradient through normalizers).
fn loss_of(y: &Tensor, w: &[f32]) -> f32 {
    y.data().iter().zip(w).map(|(a, b)| a * b).sum()
}

/// Central-difference check of dL/dx against the layer's backward.
fn check_input_gradient(
    mk: &dyn Fn() -> Box<dyn Layer>,
    x: &Tensor,
    tol: f32,
    stride: usize,
) -> Result<(), String> {
    let mut rng = SmallRng64::new(99);
    let mut layer = mk();
    let y = layer.forward(x, Mode::Train);
    let w: Vec<f32> = (0..y.len()).map(|_| rng.gauss()).collect();
    let dy = Tensor::from_vec(y.shape().to_vec(), w.clone());
    let dx = layer.backward(&dy);

    let eps = 1e-2f32;
    for i in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fp = loss_of(&mk().forward(&xp, Mode::Train), &w);
        let fm = loss_of(&mk().forward(&xm, Mode::Train), &w);
        let numeric = (fp - fm) / (2.0 * eps);
        let analytic = dx.data()[i];
        if (analytic - numeric).abs() > tol * (1.0 + numeric.abs()) {
            return Err(format!("dx[{i}]: analytic {analytic} vs numeric {numeric}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dense_gradient_any_shape(inf in 1usize..6, outf in 1usize..6, batch in 1usize..4, seed in 0u64..500) {
        let mut rng = SmallRng64::new(seed);
        let x = Tensor::randn(&[batch, inf], 1.0, &mut rng);
        let mk = move || -> Box<dyn Layer> {
            let mut r = SmallRng64::new(seed ^ 1);
            Box::new(Dense::new(inf, outf, &mut r))
        };
        prop_assert!(check_input_gradient(&mk, &x, 0.05, 1).is_ok());
    }

    #[test]
    fn conv_gradient_any_geometry(
        inc in 1usize..3,
        outc in 1usize..3,
        hw in 3usize..6,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..200,
    ) {
        let k = 3usize;
        prop_assume!(hw + 2 * pad >= k);
        let mut rng = SmallRng64::new(seed);
        let x = Tensor::randn(&[1, inc, hw, hw], 1.0, &mut rng);
        let mk = move || -> Box<dyn Layer> {
            let mut r = SmallRng64::new(seed ^ 2);
            Box::new(Conv2d::new(inc, outc, k, stride, pad, &mut r))
        };
        prop_assert!(check_input_gradient(&mk, &x, 0.08, 3).is_ok());
    }

    #[test]
    fn pooling_gradients(hw in 4usize..8, seed in 0u64..200) {
        let mut rng = SmallRng64::new(seed);
        let x = Tensor::randn(&[1, 2, hw, hw], 1.0, &mut rng);
        let mk_avg = || -> Box<dyn Layer> { Box::new(AvgPool2d::new(2, 2)) };
        prop_assert!(check_input_gradient(&mk_avg, &x, 0.05, 2).is_ok());
        let mk_gap = || -> Box<dyn Layer> { Box::new(GlobalAvgPool::new()) };
        prop_assert!(check_input_gradient(&mk_gap, &x, 0.05, 2).is_ok());
        // Max pooling is piecewise linear with kinks at ties; build an
        // input whose values are all ≥0.1 apart (a scaled random
        // permutation of ranks) so the central difference never crosses
        // an argmax change.
        let n = x.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng2 = SmallRng64::new(seed ^ 0xABCD);
        rng2.shuffle(&mut order);
        let mut sep = vec![0.0f32; n];
        for (rank, &i) in order.iter().enumerate() {
            sep[i] = rank as f32 * 0.1;
        }
        let x2 = Tensor::from_vec(x.shape().to_vec(), sep);
        let mk_max = || -> Box<dyn Layer> { Box::new(MaxPool2d::new(2, 2)) };
        prop_assert!(check_input_gradient(&mk_max, &x2, 0.1, 2).is_ok());
    }

    #[test]
    fn activation_gradients(n in 1usize..32, seed in 0u64..500) {
        let mut rng = SmallRng64::new(seed);
        // Keep away from ReLU's kink at 0.
        let x = Tensor::randn(&[1, n], 1.0, &mut rng).map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        for mk in [
            (|| -> Box<dyn Layer> { Box::new(Relu::new()) }) as fn() -> Box<dyn Layer>,
            || Box::new(Sigmoid::new()),
            || Box::new(Tanh::new()),
            || Box::new(Flatten::new()),
        ] {
            prop_assert!(check_input_gradient(&mk, &x, 0.05, 1).is_ok());
        }
    }

    #[test]
    fn batchnorm_gradient(c in 1usize..3, hw in 2usize..4, seed in 0u64..200) {
        let mut rng = SmallRng64::new(seed);
        let x = Tensor::randn(&[3, c, hw, hw], 1.0, &mut rng);
        let mk = move || -> Box<dyn Layer> { Box::new(BatchNorm2d::new(c)) };
        prop_assert!(check_input_gradient(&mk, &x, 0.1, 2).is_ok());
    }

    #[test]
    fn softmax_ce_gradient(n in 1usize..5, c in 2usize..6, seed in 0u64..500) {
        let mut rng = SmallRng64::new(seed);
        let logits = Tensor::randn(&[n, c], 1.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        let loss_fn = SoftmaxCrossEntropy;
        let (_, grad) = loss_fn.loss_and_grad(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = loss_fn.loss_and_grad(&lp, &labels);
            let (fm, _) = loss_fn.loss_and_grad(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            prop_assert!((grad.data()[i] - numeric).abs() < 1e-2);
        }
    }

    #[test]
    fn sequential_forward_is_pure(seed in 0u64..500) {
        // Two forwards of the same input give the same output (no hidden
        // state mutation in eval mode), and params are untouched.
        let mut rng = SmallRng64::new(seed);
        let mut m = models::mlp(&[4, 8, 3], &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let before = m.export_params();
        let y1 = m.forward(&x, Mode::Eval);
        let y2 = m.forward(&x, Mode::Eval);
        prop_assert_eq!(y1, y2);
        prop_assert_eq!(m.export_params(), before);
    }

    #[test]
    fn full_model_backward_produces_grads_for_every_param(seed in 0u64..100) {
        let mut rng = SmallRng64::new(seed);
        let mut m = Sequential::new();
        let mut r2 = SmallRng64::new(seed ^ 3);
        m = m
            .push(Conv2d::new(1, 2, 3, 1, 1, &mut r2))
            .push(BatchNorm2d::new(2))
            .push(Relu::new())
            .push(MaxPool2d::new(2, 2))
            .push(Flatten::new())
            .push(Dense::new(2 * 4 * 4, 3, &mut r2));
        let x = Tensor::randn(&[2, 1, 8, 8], 1.0, &mut rng);
        let y = m.forward(&x, Mode::Train);
        let loss_fn = SoftmaxCrossEntropy;
        let (_, grad) = loss_fn.loss_and_grad(&y, &[0, 1]);
        m.backward(&grad);
        // Every parameter received a (mostly) nonzero gradient.
        let grads = m.export_grads();
        let nonzero = grads.iter().flatten().filter(|&&g| g != 0.0).count();
        let total: usize = grads.iter().map(|g| g.len()).sum();
        prop_assert!(nonzero * 2 > total, "only {nonzero}/{total} grads nonzero");
    }
}
