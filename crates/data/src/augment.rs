//! Training-time augmentation: random crop with zero padding and random
//! horizontal flips (the standard CIFAR-10 recipe; Fig. 9 trains
//! "ResNet-20 (CIFAR-10, with data augmentation)").

use crate::dataset::Batch;
use cdsgd_tensor::{SmallRng64, Tensor};

/// Randomly crop each image in an NCHW batch after padding `pad` zeros on
/// every side (output size equals input size).
pub fn random_crop(batch: &Tensor, pad: usize, rng: &mut SmallRng64) -> Tensor {
    assert_eq!(batch.ndim(), 4, "random_crop expects [N,C,H,W]");
    if pad == 0 {
        return batch.clone();
    }
    let (n, c, h, w) = (
        batch.shape()[0],
        batch.shape()[1],
        batch.shape()[2],
        batch.shape()[3],
    );
    let mut out = Tensor::zeros(batch.shape());
    for s in 0..n {
        // One offset per image, shared by its channels.
        let dy = rng.below(2 * pad + 1) as isize - pad as isize;
        let dx = rng.below(2 * pad + 1) as isize - pad as isize;
        for ch in 0..c {
            let src = &batch.data()[(s * c + ch) * h * w..(s * c + ch + 1) * h * w];
            let dst = &mut out.data_mut()[(s * c + ch) * h * w..(s * c + ch + 1) * h * w];
            for i in 0..h {
                let si = i as isize + dy;
                if si < 0 || si >= h as isize {
                    continue; // rows shifted in from the pad are zero
                }
                for j in 0..w {
                    let sj = j as isize + dx;
                    if sj >= 0 && sj < w as isize {
                        dst[i * w + j] = src[si as usize * w + sj as usize];
                    }
                }
            }
        }
    }
    out
}

/// Flip each image horizontally with probability 0.5.
pub fn random_hflip(batch: &Tensor, rng: &mut SmallRng64) -> Tensor {
    assert_eq!(batch.ndim(), 4, "random_hflip expects [N,C,H,W]");
    let (n, c, h, w) = (
        batch.shape()[0],
        batch.shape()[1],
        batch.shape()[2],
        batch.shape()[3],
    );
    let mut out = batch.clone();
    for s in 0..n {
        if rng.unit_f32() < 0.5 {
            for ch in 0..c {
                let plane = &mut out.data_mut()[(s * c + ch) * h * w..(s * c + ch + 1) * h * w];
                for row in plane.chunks_exact_mut(w) {
                    row.reverse();
                }
            }
        }
    }
    out
}

/// The standard recipe: random crop (pad 4) then random horizontal flip.
pub fn standard_augment(batch: &Batch, rng: &mut SmallRng64) -> Batch {
    let x = random_hflip(&random_crop(&batch.x, 4, rng), rng);
    Batch {
        x,
        y: batch.y.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crop_zero_pad_is_identity() {
        let mut rng = SmallRng64::new(0);
        let x = Tensor::randn(&[2, 1, 4, 4], 1.0, &mut rng);
        assert_eq!(random_crop(&x, 0, &mut rng), x);
    }

    #[test]
    fn crop_preserves_shape_and_mass_mostly() {
        let mut rng = SmallRng64::new(1);
        let x = Tensor::ones(&[4, 3, 8, 8]);
        let y = random_crop(&x, 2, &mut rng);
        assert_eq!(y.shape(), x.shape());
        // Shifted zeros reduce the sum but never increase it.
        assert!(y.sum() <= x.sum());
        assert!(y.sum() > 0.5 * x.sum());
    }

    #[test]
    fn hflip_preserves_multiset_of_pixels() {
        let mut rng = SmallRng64::new(2);
        let x = Tensor::randn(&[8, 1, 3, 3], 1.0, &mut rng);
        let y = random_hflip(&x, &mut rng);
        let mut a = x.data().to_vec();
        let mut b = y.data().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn hflip_flips_about_half_the_images() {
        let mut rng = SmallRng64::new(3);
        // Asymmetric image so flips are detectable.
        let mut x = Tensor::zeros(&[100, 1, 1, 2]);
        for s in 0..100 {
            x.data_mut()[s * 2] = 1.0;
        }
        let y = random_hflip(&x, &mut rng);
        let flipped = (0..100).filter(|&s| y.data()[s * 2] == 0.0).count();
        assert!((20..80).contains(&flipped), "{flipped} flipped");
    }

    #[test]
    fn standard_augment_keeps_labels() {
        let mut rng = SmallRng64::new(4);
        let b = Batch {
            x: Tensor::ones(&[2, 3, 8, 8]),
            y: vec![1, 2],
        };
        let a = standard_augment(&b, &mut rng);
        assert_eq!(a.y, b.y);
        assert_eq!(a.x.shape(), b.x.shape());
    }
}
