//! Reader for the IDX binary format used by the real MNIST distribution
//! (`train-images-idx3-ubyte` etc.), so the synthetic stand-ins can be
//! swapped for the genuine datasets when they are available. Supports the
//! unsigned-byte element type that MNIST uses.
//!
//! Format (big-endian): magic `[0, 0, dtype, ndims]`, then `ndims` u32
//! dimension sizes, then the elements.

use crate::dataset::Dataset;
use cdsgd_tensor::Tensor;
use std::io::Read;
use std::path::Path;

/// Errors from IDX parsing.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed header or unsupported dtype.
    Format(String),
}

impl std::fmt::Display for IdxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "idx io error: {e}"),
            IdxError::Format(m) => write!(f, "idx format error: {m}"),
        }
    }
}

impl std::error::Error for IdxError {}

impl From<std::io::Error> for IdxError {
    fn from(e: std::io::Error) -> Self {
        IdxError::Io(e)
    }
}

/// A parsed IDX array of unsigned bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct IdxArray {
    /// Dimension sizes, outermost first.
    pub shape: Vec<usize>,
    /// Row-major elements.
    pub data: Vec<u8>,
}

/// Parse an IDX byte stream (u8 element type only — MNIST's).
pub fn parse_idx(mut reader: impl Read) -> Result<IdxArray, IdxError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic[0] != 0 || magic[1] != 0 {
        return Err(IdxError::Format("bad magic prefix".into()));
    }
    if magic[2] != 0x08 {
        return Err(IdxError::Format(format!(
            "unsupported dtype 0x{:02x} (only u8/0x08 supported)",
            magic[2]
        )));
    }
    let ndims = magic[3] as usize;
    if ndims == 0 || ndims > 4 {
        return Err(IdxError::Format(format!("unsupported rank {ndims}")));
    }
    let mut shape = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let mut b = [0u8; 4];
        reader.read_exact(&mut b)?;
        shape.push(u32::from_be_bytes(b) as usize);
    }
    let total: usize = shape.iter().product();
    let mut data = vec![0u8; total];
    reader.read_exact(&mut data)?;
    Ok(IdxArray { shape, data })
}

/// Serialize an [`IdxArray`] back to IDX bytes (round-trip/testing and
/// writing fixtures).
pub fn write_idx(arr: &IdxArray) -> Result<Vec<u8>, IdxError> {
    if arr.shape.is_empty() || arr.shape.len() > 4 {
        return Err(IdxError::Format(format!(
            "unsupported rank {}",
            arr.shape.len()
        )));
    }
    let total: usize = arr.shape.iter().product();
    if total != arr.data.len() {
        return Err(IdxError::Format("shape/data length mismatch".into()));
    }
    let mut out = vec![0u8, 0, 0x08, arr.shape.len() as u8];
    for &d in &arr.shape {
        out.extend_from_slice(&(d as u32).to_be_bytes());
    }
    out.extend_from_slice(&arr.data);
    Ok(out)
}

/// Load an MNIST-style dataset from an images file (`[N, H, W]` u8) and a
/// labels file (`[N]` u8). Pixels are scaled to `[0, 1]` and the images
/// get a channel dimension: `[N, 1, H, W]`.
pub fn load_mnist(
    images_path: impl AsRef<Path>,
    labels_path: impl AsRef<Path>,
    num_classes: usize,
) -> Result<Dataset, IdxError> {
    let images = parse_idx(std::fs::File::open(images_path)?)?;
    let labels = parse_idx(std::fs::File::open(labels_path)?)?;
    dataset_from_idx(&images, &labels, num_classes)
}

/// Build a [`Dataset`] from parsed IDX arrays.
pub fn dataset_from_idx(
    images: &IdxArray,
    labels: &IdxArray,
    num_classes: usize,
) -> Result<Dataset, IdxError> {
    if images.shape.len() != 3 {
        return Err(IdxError::Format(format!(
            "images must be [N,H,W], got rank {}",
            images.shape.len()
        )));
    }
    if labels.shape.len() != 1 {
        return Err(IdxError::Format("labels must be rank 1".into()));
    }
    let (n, h, w) = (images.shape[0], images.shape[1], images.shape[2]);
    if labels.shape[0] != n {
        return Err(IdxError::Format(format!(
            "image count {n} != label count {}",
            labels.shape[0]
        )));
    }
    let data: Vec<f32> = images.data.iter().map(|&b| b as f32 / 255.0).collect();
    let y: Vec<usize> = labels.data.iter().map(|&b| b as usize).collect();
    if let Some(&bad) = labels.data.iter().find(|&&b| b as usize >= num_classes) {
        return Err(IdxError::Format(format!(
            "label {bad} >= num_classes {num_classes}"
        )));
    }
    Ok(Dataset::new(
        Tensor::from_vec(vec![n, 1, h, w], data),
        y,
        num_classes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (IdxArray, IdxArray) {
        // 3 tiny 2x2 "images" with labels 0,1,2.
        let images = IdxArray {
            shape: vec![3, 2, 2],
            data: vec![0, 51, 102, 153, 204, 255, 0, 128, 10, 20, 30, 40],
        };
        let labels = IdxArray {
            shape: vec![3],
            data: vec![0, 1, 2],
        };
        (images, labels)
    }

    #[test]
    fn round_trip_bytes() {
        let (images, _) = fixture();
        let bytes = write_idx(&images).unwrap();
        let parsed = parse_idx(bytes.as_slice()).unwrap();
        assert_eq!(parsed, images);
    }

    #[test]
    fn header_layout_is_big_endian() {
        let arr = IdxArray {
            shape: vec![1, 2],
            data: vec![7, 8],
        };
        let bytes = write_idx(&arr).unwrap();
        assert_eq!(&bytes[..4], &[0, 0, 0x08, 2]);
        assert_eq!(&bytes[4..8], &[0, 0, 0, 1]);
        assert_eq!(&bytes[8..12], &[0, 0, 0, 2]);
        assert_eq!(&bytes[12..], &[7, 8]);
    }

    #[test]
    fn dataset_conversion_scales_pixels() {
        let (images, labels) = fixture();
        let ds = dataset_from_idx(&images, &labels, 10).unwrap();
        assert_eq!(ds.x.shape(), &[3, 1, 2, 2]);
        assert_eq!(ds.y, vec![0, 1, 2]);
        assert!((ds.x.data()[1] - 0.2).abs() < 1e-6); // 51/255
        assert!((ds.x.data()[5] - 1.0).abs() < 1e-6); // 255/255
    }

    #[test]
    fn loads_from_files() {
        let (images, labels) = fixture();
        let dir = std::env::temp_dir().join(format!("cdsgd_idx_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ip = dir.join("imgs.idx");
        let lp = dir.join("labels.idx");
        std::fs::write(&ip, write_idx(&images).unwrap()).unwrap();
        std::fs::write(&lp, write_idx(&labels).unwrap()).unwrap();
        let ds = load_mnist(&ip, &lp, 10).unwrap();
        assert_eq!(ds.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic_and_dtype() {
        assert!(parse_idx([1u8, 0, 8, 1, 0, 0, 0, 0].as_slice()).is_err());
        assert!(parse_idx([0u8, 0, 0x0D, 1, 0, 0, 0, 0].as_slice()).is_err());
    }

    #[test]
    fn rejects_mismatched_counts() {
        let (images, _) = fixture();
        let labels = IdxArray {
            shape: vec![2],
            data: vec![0, 1],
        };
        assert!(dataset_from_idx(&images, &labels, 10).is_err());
    }

    #[test]
    fn rejects_out_of_range_labels() {
        let (images, _) = fixture();
        let labels = IdxArray {
            shape: vec![3],
            data: vec![0, 1, 9],
        };
        assert!(dataset_from_idx(&images, &labels, 3).is_err());
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let (images, _) = fixture();
        let mut bytes = write_idx(&images).unwrap();
        bytes.truncate(bytes.len() - 2);
        assert!(matches!(parse_idx(bytes.as_slice()), Err(IdxError::Io(_))));
    }
}
