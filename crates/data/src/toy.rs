//! Low-dimensional toy tasks for fast tests and the convergence-rate
//! experiment (Theorem 2).

use crate::dataset::Dataset;
use cdsgd_tensor::{SmallRng64, Tensor};

/// Gaussian blobs: `num_classes` isotropic clusters in `dim` dimensions,
/// cluster centers on a scaled simplex-ish random layout.
pub fn gaussian_blobs(n: usize, dim: usize, num_classes: usize, spread: f32, seed: u64) -> Dataset {
    assert!(dim > 0 && num_classes > 0);
    let mut rng = SmallRng64::new(seed);
    // Well-separated random centers.
    let centers: Vec<Vec<f32>> = (0..num_classes)
        .map(|_| {
            (0..dim)
                .map(|_| 4.0 * (rng.unit_f32() - 0.5) * 2.0)
                .collect()
        })
        .collect();
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % num_classes;
        for &cd in &centers[c] {
            data.push(cd + spread * rng.gauss());
        }
        labels.push(c);
    }
    let mut ds = Dataset::new(Tensor::from_vec(vec![n, dim], data), labels, num_classes);
    ds.shuffle(&mut rng);
    ds
}

/// The classic two-moons binary task in 2-D.
pub fn two_moons(n: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = SmallRng64::new(seed);
    let mut data = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let t = rng.unit_f32() * std::f32::consts::PI;
        let (x, y, c) = if i % 2 == 0 {
            (t.cos(), t.sin(), 0usize)
        } else {
            (1.0 - t.cos(), 0.5 - t.sin(), 1usize)
        };
        data.push(x + noise * rng.gauss());
        data.push(y + noise * rng.gauss());
        labels.push(c);
    }
    let mut ds = Dataset::new(Tensor::from_vec(vec![n, 2], data), labels, 2);
    ds.shuffle(&mut rng);
    ds
}

/// A synthetic linear-classification task: labels from a random ground
/// truth linear map plus label noise. Good for convergence-rate plots
/// because the optimum is well-conditioned.
pub fn linear_task(n: usize, dim: usize, num_classes: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng64::new(seed);
    let w = Tensor::randn(&[dim, num_classes], 1.0, &mut rng);
    let x = Tensor::randn(&[n, dim], 1.0, &mut rng);
    let scores = x.matmul(&w);
    let labels = scores.argmax_rows();
    Dataset::new(x, labels, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_separable_by_centroid_distance() {
        let d = gaussian_blobs(300, 4, 3, 0.3, 0);
        // Nearest-centroid classification should be near-perfect at low
        // spread: compute class centroids then re-classify.
        let dim = 4;
        let mut centroids = vec![vec![0.0f32; dim]; 3];
        let mut counts = vec![0usize; 3];
        for i in 0..d.len() {
            let c = d.y[i];
            counts[c] += 1;
            for k in 0..dim {
                centroids[c][k] += d.x.data()[i * dim + k];
            }
        }
        for (c, cnt) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *cnt as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..d.len() {
            let xi = &d.x.data()[i * dim..(i + 1) * dim];
            let best = (0..3)
                .min_by(|&a, &b| {
                    let da: f32 = xi
                        .iter()
                        .zip(&centroids[a])
                        .map(|(x, c)| (x - c).powi(2))
                        .sum();
                    let db: f32 = xi
                        .iter()
                        .zip(&centroids[b])
                        .map(|(x, c)| (x - c).powi(2))
                        .sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if best == d.y[i] {
                correct += 1;
            }
        }
        assert!(correct as f32 / d.len() as f32 > 0.95);
    }

    #[test]
    fn two_moons_is_binary_and_bounded() {
        let d = two_moons(100, 0.05, 1);
        assert_eq!(d.num_classes, 2);
        assert!(d.x.data().iter().all(|&v| v.abs() < 3.0));
        let h = d.class_histogram();
        assert_eq!(h[0] + h[1], 100);
        assert!((h[0] as i64 - h[1] as i64).abs() <= 2);
    }

    #[test]
    fn linear_task_labels_match_ground_truth_map() {
        let d = linear_task(50, 6, 4, 2);
        assert_eq!(d.len(), 50);
        assert!(d.y.iter().all(|&l| l < 4));
        // Deterministic given seed.
        let d2 = linear_task(50, 6, 4, 2);
        assert_eq!(d.y, d2.y);
    }
}
