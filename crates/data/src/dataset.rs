//! The [`Dataset`] container: samples + labels with sharding, shuffling,
//! splitting and mini-batch iteration.

use cdsgd_tensor::{SmallRng64, Tensor};

/// One mini-batch: a tensor of samples and their labels.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Samples, `[B, ...sample dims]`.
    pub x: Tensor,
    /// Labels, length `B`.
    pub y: Vec<usize>,
}

/// A labelled dataset. `x` is `[N, ...sample dims]` (e.g. `[N,C,H,W]` for
/// images or `[N,D]` for features); `y[i]` is the class of sample `i`.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// All samples.
    pub x: Tensor,
    /// All labels.
    pub y: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Build a dataset, checking the sample/label counts agree.
    ///
    /// # Panics
    /// Panics on count mismatch or out-of-range labels.
    pub fn new(x: Tensor, y: Vec<usize>, num_classes: usize) -> Self {
        assert!(!x.shape().is_empty(), "samples need a batch dimension");
        assert_eq!(x.shape()[0], y.len(), "sample/label count mismatch");
        assert!(y.iter().all(|&l| l < num_classes), "label out of range");
        Self { x, y, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Flat length of one sample.
    pub fn sample_len(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.x.len() / self.len()
        }
    }

    /// Shape of one sample (without the batch dim).
    pub fn sample_shape(&self) -> Vec<usize> {
        self.x.shape()[1..].to_vec()
    }

    /// Copy the samples at `indices` into a new dataset (in that order).
    pub fn take(&self, indices: &[usize]) -> Dataset {
        let sl = self.sample_len();
        let mut data = Vec::with_capacity(indices.len() * sl);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of range");
            data.extend_from_slice(&self.x.data()[i * sl..(i + 1) * sl]);
            labels.push(self.y[i]);
        }
        let mut shape = self.x.shape().to_vec();
        shape[0] = indices.len();
        Dataset::new(Tensor::from_vec(shape, data), labels, self.num_classes)
    }

    /// In-place random permutation of the samples.
    pub fn shuffle(&mut self, rng: &mut SmallRng64) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        *self = self.take(&order);
    }

    /// Split into `(first, second)` with `frac` of samples in the first.
    ///
    /// # Panics
    /// Panics unless `0 <= frac <= 1`.
    pub fn split(&self, frac: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1]");
        let cut = (self.len() as f64 * frac).round() as usize;
        let first: Vec<usize> = (0..cut).collect();
        let second: Vec<usize> = (cut..self.len()).collect();
        (self.take(&first), self.take(&second))
    }

    /// The strided shard for `worker` out of `num_workers` (data-parallel
    /// partitioning: worker w sees samples w, w+W, w+2W, …).
    ///
    /// # Panics
    /// Panics if `worker >= num_workers` or `num_workers == 0`.
    pub fn shard(&self, worker: usize, num_workers: usize) -> Dataset {
        assert!(num_workers > 0 && worker < num_workers, "bad shard spec");
        let idx: Vec<usize> = (worker..self.len()).step_by(num_workers).collect();
        self.take(&idx)
    }

    /// Iterate mini-batches of `batch_size` in order; the final partial
    /// batch is included.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = Batch> + '_ {
        assert!(batch_size > 0, "batch size must be positive");
        let n = self.len();
        let sl = self.sample_len();
        let shape_tail = self.sample_shape();
        (0..n).step_by(batch_size).map(move |start| {
            let end = (start + batch_size).min(n);
            let mut shape = vec![end - start];
            shape.extend_from_slice(&shape_tail);
            Batch {
                x: Tensor::from_vec(shape, self.x.data()[start * sl..end * sl].to_vec()),
                y: self.y[start..end].to_vec(),
            }
        })
    }

    /// Per-class sample counts (diagnostics / balance checks).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.y {
            h[l] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let x = Tensor::from_vec(vec![n, 2], (0..2 * n).map(|i| i as f32).collect());
        let y = (0..n).map(|i| i % 3).collect();
        Dataset::new(x, y, 3)
    }

    #[test]
    fn construction_and_len() {
        let d = toy(7);
        assert_eq!(d.len(), 7);
        assert_eq!(d.sample_len(), 2);
        assert_eq!(d.sample_shape(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_labels_panic() {
        Dataset::new(Tensor::zeros(&[3, 2]), vec![0, 1], 2);
    }

    #[test]
    fn take_copies_selected_rows() {
        let d = toy(5);
        let t = d.take(&[4, 0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.x.data(), &[8., 9., 0., 1.]);
        assert_eq!(t.y, vec![1, 0]);
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy(10);
        let (a, b) = d.split(0.8);
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 2);
        assert_eq!(b.x.data(), &[16., 17., 18., 19.]);
    }

    #[test]
    fn shards_are_disjoint_and_cover() {
        let d = toy(11);
        let shards: Vec<Dataset> = (0..3).map(|w| d.shard(w, 3)).collect();
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 11);
        // First feature value identifies a sample; all must be distinct.
        let mut firsts: Vec<f32> = shards
            .iter()
            .flat_map(|s| s.x.data().iter().step_by(2).copied().collect::<Vec<_>>())
            .collect();
        firsts.sort_by(f32::total_cmp);
        firsts.dedup();
        assert_eq!(firsts.len(), 11);
    }

    #[test]
    fn batches_cover_all_samples_with_partial_tail() {
        let d = toy(10);
        let batches: Vec<Batch> = d.batches(4).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].y.len(), 4);
        assert_eq!(batches[2].y.len(), 2);
        let total: usize = batches.iter().map(|b| b.y.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(batches[1].x.shape(), &[4, 2]);
    }

    #[test]
    fn shuffle_preserves_pairing() {
        let mut d = toy(30);
        let mut rng = SmallRng64::new(0);
        d.shuffle(&mut rng);
        // After shuffling, each row's features must still match its label:
        // in `toy`, sample i has features (2i, 2i+1) and label i % 3.
        for i in 0..d.len() {
            let f0 = d.x.data()[2 * i];
            let orig = (f0 / 2.0) as usize;
            assert_eq!(d.y[i], orig % 3, "pairing broken at row {i}");
        }
        assert_eq!(d.class_histogram(), vec![10, 10, 10]);
    }
}
