//! # cdsgd-data
//!
//! Seeded synthetic datasets standing in for MNIST, CIFAR-10 and ImageNet
//! (DESIGN.md §2): the convergence behaviour the paper compares across
//! S-SGD / OD-SGD / BIT-SGD / CD-SGD depends on gradient statistics and
//! quantization error, not on image provenance, so deterministic synthetic
//! sets preserve the experiments while keeping the repo self-contained.
//!
//! * [`Dataset`] — images/labels container with sharding and batching.
//! * [`synth`] — MNIST-like / CIFAR-like / ImageNet-like generators built
//!   from class-specific low-frequency templates plus noise and jitter.
//! * [`toy`] — low-dimensional tasks (Gaussian blobs, two moons) for fast
//!   tests and the convergence-rate experiment.
//! * [`augment`] — random crop + horizontal flip (Fig. 9 uses CIFAR-10
//!   "with data augmentation").
//!
//! ```
//! use cdsgd_data::synth;
//!
//! let ds = synth::mnist_like(128, 42);
//! assert_eq!(ds.x.shape(), &[128, 1, 28, 28]);
//! let (train, test) = ds.split(0.8);
//! assert_eq!(train.len() + test.len(), 128);
//! ```

pub mod augment;
mod dataset;
pub mod idx;
pub mod synth;
pub mod toy;

pub use dataset::{Batch, Dataset};
