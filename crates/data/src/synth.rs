//! Synthetic image-classification generators.
//!
//! Each class `c` gets a deterministic low-frequency template built from a
//! few random 2-D sinusoids and Gaussian bumps; a sample is its class
//! template plus spatial jitter and pixel noise. The resulting tasks are
//! learnable but not trivial (a linear model does not saturate them), so
//! the relative convergence behaviour of the four algorithms is
//! qualitatively preserved.

use crate::dataset::Dataset;
use cdsgd_tensor::{SmallRng64, Tensor};

/// Parameters of a synthetic image task.
#[derive(Clone, Copy, Debug)]
pub struct SynthSpec {
    /// Image channels.
    pub channels: usize,
    /// Image height and width (square).
    pub size: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Pixel noise standard deviation.
    pub noise: f32,
    /// Maximum absolute spatial jitter (pixels).
    pub jitter: usize,
    /// Sinusoid components per template channel.
    pub components: usize,
    /// Fraction of template structure shared between all classes, in
    /// [0, 1). High values make classes nearly identical apart from small
    /// details, which is what keeps test accuracy off the ceiling (real
    /// image classes overlap; fully distinct templates are trivially
    /// separable for a CNN).
    pub shared: f32,
}

impl SynthSpec {
    /// MNIST-like: 28×28×1, 10 classes.
    pub fn mnist() -> Self {
        Self {
            channels: 1,
            size: 28,
            num_classes: 10,
            noise: 0.5,
            jitter: 1,
            components: 3,
            shared: 0.95,
        }
    }

    /// CIFAR-like: 32×32×3, 10 classes.
    pub fn cifar() -> Self {
        Self {
            channels: 3,
            size: 32,
            num_classes: 10,
            noise: 0.6,
            jitter: 2,
            components: 4,
            shared: 0.95,
        }
    }

    /// ImageNet-like (scaled): 32×32×3, 100 classes, noisier.
    pub fn imagenet() -> Self {
        Self {
            channels: 3,
            size: 32,
            num_classes: 100,
            noise: 0.7,
            jitter: 2,
            components: 5,
            shared: 0.9,
        }
    }
}

/// A bank of class templates plus the spec that built them. Generating the
/// templates once and sampling many times keeps dataset creation O(n).
pub struct TemplateBank {
    spec: SynthSpec,
    /// `[num_classes][channels * size * size]`
    templates: Vec<Vec<f32>>,
}

impl TemplateBank {
    /// Deterministically build the class templates for a spec.
    pub fn new(spec: SynthSpec, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&spec.shared),
            "shared must be in [0, 1)"
        );
        let mut rng = SmallRng64::new(seed ^ 0x7E3A_11C0);
        let s = spec.size;
        // One raw template per class plus one shared background; the
        // final class template is a blend dominated by the background.
        let mut raw: Vec<Vec<f32>> = (0..spec.num_classes + 1)
            .map(|_| {
                let mut t = vec![0.0f32; spec.channels * s * s];
                for ch in 0..spec.channels {
                    // Sum of random low-frequency sinusoids.
                    for _ in 0..spec.components {
                        let fx = 0.4 + 1.1 * rng.unit_f32();
                        let fy = 0.4 + 1.1 * rng.unit_f32();
                        let px = rng.unit_f32() * std::f32::consts::TAU;
                        let py = rng.unit_f32() * std::f32::consts::TAU;
                        let amp = 0.4 + 0.6 * rng.unit_f32();
                        for i in 0..s {
                            for j in 0..s {
                                let u = i as f32 / s as f32 * std::f32::consts::TAU;
                                let v = j as f32 / s as f32 * std::f32::consts::TAU;
                                t[ch * s * s + i * s + j] +=
                                    amp * (fx * u + px).sin() * (fy * v + py).cos();
                            }
                        }
                    }
                    // One Gaussian bump to break symmetry.
                    let cx = s as f32 * (0.25 + 0.5 * rng.unit_f32());
                    let cy = s as f32 * (0.25 + 0.5 * rng.unit_f32());
                    let sigma = s as f32 * 0.15;
                    for i in 0..s {
                        for j in 0..s {
                            let d2 = (i as f32 - cx).powi(2) + (j as f32 - cy).powi(2);
                            t[ch * s * s + i * s + j] += 1.2 * (-d2 / (2.0 * sigma * sigma)).exp();
                        }
                    }
                }
                // Normalize template to zero mean, unit RMS so the
                // signal-to-noise ratio is controlled by `spec.noise`.
                let mean = t.iter().sum::<f32>() / t.len() as f32;
                for v in &mut t {
                    *v -= mean;
                }
                let rms = (t.iter().map(|v| v * v).sum::<f32>() / t.len() as f32).sqrt();
                if rms > 0.0 {
                    for v in &mut t {
                        *v /= rms;
                    }
                }
                t
            })
            .collect();
        let shared = raw.pop().expect("background template");
        let rho = spec.shared;
        let uniq = (1.0 - rho * rho).sqrt();
        let templates = raw
            .into_iter()
            .map(|t| {
                let mut blended: Vec<f32> = t
                    .iter()
                    .zip(&shared)
                    .map(|(&u, &b)| rho * b + uniq * u)
                    .collect();
                // Re-normalize to unit RMS (the parts are near-orthogonal
                // but not exactly).
                let rms =
                    (blended.iter().map(|v| v * v).sum::<f32>() / blended.len() as f32).sqrt();
                if rms > 0.0 {
                    for v in &mut blended {
                        *v /= rms;
                    }
                }
                blended
            })
            .collect();
        Self { spec, templates }
    }

    /// The spec this bank was built from.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// Draw one sample of class `class` into `out` (length `C·S·S`):
    /// jittered template plus pixel noise.
    pub fn sample_into(&self, class: usize, rng: &mut SmallRng64, out: &mut [f32]) {
        let s = self.spec.size;
        let c = self.spec.channels;
        assert_eq!(out.len(), c * s * s);
        let t = &self.templates[class];
        let j = self.spec.jitter as isize;
        let dx = if j > 0 {
            (rng.below((2 * j + 1) as usize)) as isize - j
        } else {
            0
        };
        let dy = if j > 0 {
            (rng.below((2 * j + 1) as usize)) as isize - j
        } else {
            0
        };
        for ch in 0..c {
            for i in 0..s {
                for jj in 0..s {
                    let si = i as isize + dy;
                    let sj = jj as isize + dx;
                    let base = if si >= 0 && si < s as isize && sj >= 0 && sj < s as isize {
                        t[ch * s * s + si as usize * s + sj as usize]
                    } else {
                        0.0
                    };
                    out[ch * s * s + i * s + jj] = base + self.spec.noise * rng.gauss();
                }
            }
        }
    }

    /// Generate a balanced dataset of `n` samples (class `i % classes`).
    pub fn dataset(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng64::new(seed);
        let s = self.spec.size;
        let c = self.spec.channels;
        let sl = c * s * s;
        let mut data = vec![0.0f32; n * sl];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.spec.num_classes;
            self.sample_into(class, &mut rng, &mut data[i * sl..(i + 1) * sl]);
            labels.push(class);
        }
        let mut ds = Dataset::new(
            Tensor::from_vec(vec![n, c, s, s], data),
            labels,
            self.spec.num_classes,
        );
        ds.shuffle(&mut rng);
        ds
    }
}

/// An MNIST-like dataset: `[n, 1, 28, 28]`, 10 classes.
pub fn mnist_like(n: usize, seed: u64) -> Dataset {
    TemplateBank::new(SynthSpec::mnist(), seed).dataset(n, seed.wrapping_add(1))
}

/// A CIFAR-10-like dataset: `[n, 3, 32, 32]`, 10 classes.
pub fn cifar_like(n: usize, seed: u64) -> Dataset {
    TemplateBank::new(SynthSpec::cifar(), seed).dataset(n, seed.wrapping_add(1))
}

/// An ImageNet-like dataset (scaled): `[n, 3, 32, 32]`, 100 classes.
pub fn imagenet_like(n: usize, seed: u64) -> Dataset {
    TemplateBank::new(SynthSpec::imagenet(), seed).dataset(n, seed.wrapping_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_classes() {
        let d = mnist_like(50, 0);
        assert_eq!(d.x.shape(), &[50, 1, 28, 28]);
        assert_eq!(d.num_classes, 10);
        let d = cifar_like(20, 0);
        assert_eq!(d.x.shape(), &[20, 3, 32, 32]);
        let d = imagenet_like(10, 0);
        assert_eq!(d.num_classes, 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = mnist_like(16, 7);
        let b = mnist_like(16, 7);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        let c = mnist_like(16, 8);
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn roughly_balanced_classes() {
        let d = mnist_like(200, 1);
        let h = d.class_histogram();
        assert!(h.iter().all(|&c| c == 20), "{h:?}");
    }

    #[test]
    fn same_class_samples_are_correlated_different_classes_less_so() {
        let bank = TemplateBank::new(SynthSpec::mnist(), 3);
        let mut rng = SmallRng64::new(4);
        let sl = 28 * 28;
        let mut a0 = vec![0.0; sl];
        let mut a1 = vec![0.0; sl];
        let mut b0 = vec![0.0; sl];
        bank.sample_into(0, &mut rng, &mut a0);
        bank.sample_into(0, &mut rng, &mut a1);
        bank.sample_into(5, &mut rng, &mut b0);
        let corr = |x: &[f32], y: &[f32]| {
            let dot: f32 = x.iter().zip(y).map(|(a, b)| a * b).sum();
            let nx: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt();
            let ny: f32 = y.iter().map(|v| v * v).sum::<f32>().sqrt();
            dot / (nx * ny)
        };
        let same = corr(&a0, &a1);
        let diff = corr(&a0, &b0);
        // Classes share most structure by design (spec.shared), so the
        // margin is small but must be reliably positive.
        assert!(same > diff + 0.03, "same {same} vs diff {diff}");
    }

    #[test]
    fn templates_are_normalized() {
        let bank = TemplateBank::new(SynthSpec::cifar(), 5);
        for t in &bank.templates {
            let rms = (t.iter().map(|v| v * v).sum::<f32>() / t.len() as f32).sqrt();
            assert!((rms - 1.0).abs() < 1e-4, "rms {rms}");
            let mean: f32 = t.iter().sum::<f32>() / t.len() as f32;
            assert!(mean.abs() < 0.05, "mean {mean}");
        }
    }
}
