//! Property tests for the wire codec: `decode(encode(c)) == c` for every
//! [`Compressed`] variant (including empty and 1-element payloads), and
//! `encode(c).len() == c.wire_bytes()` so the traffic counters account
//! exactly the bytes that cross a transport.

use cdsgd_compress::{pack_1bit, pack_2bit, Compressed};
use cdsgd_net::wire::{
    decode_compressed, decode_msg, encode_compressed_into, encode_msg_into, pull_reply_frame_bytes,
    push_frame_bytes, WireMsg, FRAME_PREFIX_BYTES,
};
use proptest::prelude::*;

/// Encode, check the size invariant, decode, check equality.
fn assert_round_trip(c: &Compressed) {
    let mut buf = Vec::new();
    encode_compressed_into(c, &mut buf);
    assert_eq!(
        buf.len(),
        c.wire_bytes(),
        "encoded length must equal wire_bytes for {c:?}"
    );
    assert_eq!(&decode_compressed(&buf).unwrap(), c, "round trip of {c:?}");
}

proptest! {
    #[test]
    fn raw_round_trips(v in prop::collection::vec(-10.0f32..10.0, 0..48)) {
        assert_round_trip(&Compressed::Raw(v));
    }

    #[test]
    fn two_bit_round_trips(syms in prop::collection::vec(0u8..3, 0..130), thr in 0.01f32..4.0) {
        let c = Compressed::TwoBit {
            threshold: thr,
            packed: pack_2bit(&syms),
            len: syms.len(),
        };
        assert_round_trip(&c);
    }

    #[test]
    fn one_bit_round_trips(bits in prop::collection::vec(any::<bool>(), 0..130), scale in 0.01f32..4.0) {
        let c = Compressed::OneBit {
            scale,
            signs: pack_1bit(&bits),
            len: bits.len(),
        };
        assert_round_trip(&c);
    }

    #[test]
    fn tern_round_trips(syms in prop::collection::vec(0u8..3, 0..130), scale in 0.01f32..4.0) {
        let c = Compressed::Tern {
            scale,
            packed: pack_2bit(&syms),
            len: syms.len(),
        };
        assert_round_trip(&c);
    }

    #[test]
    fn qsgd_round_trips(raw in prop::collection::vec(any::<u8>(), 0..90), levels in 1u8..120, norm in 0.01f32..8.0) {
        // Derive codes in [-levels, levels] from arbitrary bytes.
        let span = 2 * levels as i32 + 1;
        let codes: Vec<i8> = raw
            .iter()
            .map(|&b| (b as i32 % span - levels as i32) as i8)
            .collect();
        let c = Compressed::Qsgd {
            norm,
            levels,
            codes,
            len: raw.len(),
        };
        assert_round_trip(&c);
    }

    #[test]
    fn qsgd_wide_levels_round_trip(raw in prop::collection::vec(any::<i8>(), 0..64), levels in 128u8..=255) {
        // For levels >= 128 every i8 is a legal code; symbols need 9 bits
        // and straddle byte boundaries.
        let c = Compressed::Qsgd {
            norm: 1.0,
            levels,
            codes: raw.clone(),
            len: raw.len(),
        };
        assert_round_trip(&c);
    }

    #[test]
    fn topk_round_trips(values in prop::collection::vec(-4.0f32..4.0, 0..40), idx_raw in prop::collection::vec(any::<u32>(), 0..40), extra in 1usize..16) {
        let k = values.len().min(idx_raw.len());
        let len = k + extra;
        let indices: Vec<u32> = idx_raw[..k].iter().map(|&r| r % len as u32).collect();
        let c = Compressed::TopK {
            indices,
            values: values[..k].to_vec(),
            len,
        };
        assert_round_trip(&c);
    }

    #[test]
    fn push_frames_round_trip_with_exact_sizes(v in prop::collection::vec(-2.0f32..2.0, 0..32), worker in 0u32..64, key in 0u32..64) {
        let payload = Compressed::Raw(v);
        let msg = WireMsg::Push { worker, key, payload: payload.clone() };
        let mut buf = Vec::new();
        encode_msg_into(&msg, &mut buf);
        prop_assert_eq!(
            buf.len() + FRAME_PREFIX_BYTES,
            push_frame_bytes(payload.wire_bytes())
        );
        prop_assert_eq!(decode_msg(&buf).unwrap(), msg);
    }

    #[test]
    fn pull_reply_frames_round_trip_with_exact_sizes(w in prop::collection::vec(-2.0f32..2.0, 0..32), key in 0u32..64, version in 0u64..1000) {
        let msg = WireMsg::PullReply { key, min_version: version, weights: w.clone() };
        let mut buf = Vec::new();
        encode_msg_into(&msg, &mut buf);
        prop_assert_eq!(buf.len() + FRAME_PREFIX_BYTES, pull_reply_frame_bytes(w.len()));
        prop_assert_eq!(decode_msg(&buf).unwrap(), msg);
    }
}

#[test]
fn one_element_payloads_round_trip() {
    assert_round_trip(&Compressed::Raw(vec![3.25]));
    assert_round_trip(&Compressed::TwoBit {
        threshold: 0.5,
        packed: pack_2bit(&[2]),
        len: 1,
    });
    assert_round_trip(&Compressed::OneBit {
        scale: 1.0,
        signs: pack_1bit(&[true]),
        len: 1,
    });
    assert_round_trip(&Compressed::Tern {
        scale: 1.0,
        packed: pack_2bit(&[1]),
        len: 1,
    });
    assert_round_trip(&Compressed::Qsgd {
        norm: 1.0,
        levels: 4,
        codes: vec![-4],
        len: 1,
    });
    assert_round_trip(&Compressed::TopK {
        indices: vec![0],
        values: vec![-1.5],
        len: 1,
    });
}
