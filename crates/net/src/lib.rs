//! `cdsgd-net`: the wire protocol and pluggable transports that let the
//! CD-SGD parameter server move gradients over real byte streams.
//!
//! The crate has two layers:
//!
//! - [`wire`] — byte-exact codecs for [`cdsgd_compress::Compressed`]
//!   payloads (invariant: `encode(c).len() == c.wire_bytes()`) and the
//!   framed [`wire::WireMsg`] messages built from them.
//! - [`transport`] — the [`transport::Transport`] trait with a TCP
//!   backend ([`transport::TcpTransport`], length-prefixed frames,
//!   `TCP_NODELAY`, bounded retry with exponential backoff) and an
//!   in-memory loopback backend ([`transport::loopback_pair`]) that moves
//!   the *same* frames through condvar-guarded queues.
//!
//! The parameter-server glue (server acceptor loop, remote client) lives
//! in `cdsgd-ps::net`, keeping this crate dependent only on
//! `cdsgd-compress` so anything can speak the protocol.

pub mod error;
pub mod fault;
pub mod transport;
pub mod wire;

pub use error::NetError;
pub use fault::{FaultPlan, FaultyTransport};
pub use transport::{
    loopback_pair, LoopbackTransport, NetConfig, ReconnectConfig, TcpAcceptor, TcpTransport,
    Transport, RECONNECT_BACKOFF_CAP,
};
pub use wire::{
    decode_compressed, decode_msg, encode_compressed_into, encode_msg_into, pull_reply_frame_bytes,
    push_frame_bytes, WireMsg, FRAME_PREFIX_BYTES, MAX_FRAME_BYTES,
};

pub use wire::{
    encode_heartbeat_into, encode_leave_into, encode_register_ack_into, encode_register_into,
};

pub use wire::{
    collective_frame_bytes, decode_collective, encode_collective_bytes_into,
    encode_collective_into, CollectiveFrame, COLLECTIVE_EXCHANGE, COLLECTIVE_GATHER,
    COLLECTIVE_HEADER_BYTES, COLLECTIVE_HELLO, COLLECTIVE_SCATTER, COLLECTIVE_TREE_DOWN,
    COLLECTIVE_TREE_UP, TAG_COLLECTIVE_FRAME,
};
