//! The typed error surface for everything that crosses a transport.

use std::fmt;

/// Errors produced by the wire codec, the transports, and the networked
/// parameter-server client/server built on top of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// An underlying I/O failure (socket write/read error other than the
    /// cases mapped to the more specific variants below).
    Io(String),
    /// A receive deadline elapsed with no complete frame available. The
    /// partial state (if any) is preserved; the same call may be retried.
    Timeout,
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// Bytes arrived but did not parse as a valid frame or payload.
    Decode(String),
    /// Connecting failed after the configured retries.
    Connect {
        addr: String,
        attempts: u32,
        last: String,
    },
    /// The parameter server is no longer reachable (its thread exited or
    /// the connection to it is gone). The in-process client maps dropped
    /// channel endpoints here, so a dead server surfaces as a recoverable
    /// error instead of a worker-thread panic.
    ServerGone,
    /// A worker replica died (exited with an error, panicked, or went
    /// silent past a deadline) and the synchronous round it owed can never
    /// complete. Produced by the trainer's supervisor when a worker thread
    /// is lost, and by the server's round deadline when a push never
    /// arrives; `round` is the first aggregate round the failure left
    /// unfinishable.
    WorkerLost {
        /// Id of the lost worker.
        id: usize,
        /// First round that can no longer complete.
        round: u64,
    },
    /// A cross-shard membership operation did not complete cleanly on
    /// every shard. For a two-phase `register`, the join was already
    /// rolled back on the shards that had admitted the worker before
    /// this error returned; for a best-effort `leave`, every shard was
    /// still attempted.
    Membership {
        /// The operation that failed: `"register"` or `"leave"`.
        op: &'static str,
        /// Shard indices that failed, in shard order.
        shards: Vec<usize>,
        /// The last underlying per-shard failure.
        last: Box<NetError>,
    },
    /// A `Register` was issued on a connection that already has one
    /// outstanding: the single reply slot would silently drop the first
    /// caller's ack, so the second request is rejected instead.
    RegisterPending,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport I/O error: {e}"),
            NetError::Timeout => write!(f, "transport deadline elapsed"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Decode(e) => write!(f, "wire decode error: {e}"),
            NetError::Connect {
                addr,
                attempts,
                last,
            } => write!(
                f,
                "failed to connect to {addr} after {attempts} attempts: {last}"
            ),
            NetError::ServerGone => write!(f, "parameter server is gone"),
            NetError::WorkerLost { id, round } => {
                write!(f, "worker {id} lost; round {round} cannot complete")
            }
            NetError::Membership { op, shards, last } => {
                write!(f, "membership {op} failed on shard(s) {shards:?}: {last}")
            }
            NetError::RegisterPending => {
                write!(
                    f,
                    "a registration is already outstanding on this connection"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout,
            ErrorKind::UnexpectedEof => NetError::Closed,
            _ => NetError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_kinds_map_to_variants() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            NetError::from(Error::new(ErrorKind::TimedOut, "t")),
            NetError::Timeout
        );
        assert_eq!(
            NetError::from(Error::new(ErrorKind::WouldBlock, "w")),
            NetError::Timeout
        );
        assert_eq!(
            NetError::from(Error::new(ErrorKind::UnexpectedEof, "e")),
            NetError::Closed
        );
        assert!(matches!(
            NetError::from(Error::new(ErrorKind::BrokenPipe, "b")),
            NetError::Io(_)
        ));
    }

    #[test]
    fn worker_lost_display_names_the_worker_and_round() {
        let e = NetError::WorkerLost { id: 3, round: 17 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("17"), "{s}");
    }

    #[test]
    fn membership_display_names_op_shards_and_cause() {
        let e = NetError::Membership {
            op: "register",
            shards: vec![1, 3],
            last: Box::new(NetError::Closed),
        };
        let s = e.to_string();
        assert!(
            s.contains("register") && s.contains('1') && s.contains('3') && s.contains("closed"),
            "{s}"
        );
        assert!(NetError::RegisterPending
            .to_string()
            .contains("outstanding"));
    }

    #[test]
    fn display_is_informative() {
        let e = NetError::Connect {
            addr: "127.0.0.1:9".into(),
            attempts: 3,
            last: "refused".into(),
        };
        let s = e.to_string();
        assert!(s.contains("127.0.0.1:9") && s.contains("3") && s.contains("refused"));
    }
}
