//! The wire codec: byte-exact encodings for [`Compressed`] payloads and
//! the framed parameter-server messages built from them.
//!
//! # Payload encoding
//!
//! Every [`Compressed`] variant already pays a uniform 4-byte element-count
//! header in [`Compressed::wire_bytes`]; the codec realises that header as
//! a little-endian `u32` whose top 3 bits carry the variant tag and whose
//! low 29 bits carry the element count (2-bit-quantized ResNet-50 is ~25M
//! elements per model, so 2^29 − 1 elements per *key* is far beyond any
//! real tensor). The encoding is therefore self-describing **and** exactly
//! `wire_bytes()` long — the invariant `encode(c).len() == c.wire_bytes()`
//! is pinned by tests and keeps the traffic counters honest now that bytes
//! really exist.
//!
//! # Message framing
//!
//! Messages ([`WireMsg`]) are one opcode byte plus fixed-width fields plus
//! an optional payload, and travel as length-prefixed frames: a `u32`
//! little-endian body length followed by the body. The frame prefix is
//! accounted by [`FRAME_PREFIX_BYTES`]; [`push_frame_bytes`] /
//! [`pull_reply_frame_bytes`] report the exact on-the-wire size of the two
//! hot-path messages so the server's `TrafficStats`-style accounting can
//! use real frame sizes instead of estimates.

use crate::error::NetError;
use cdsgd_compress::Compressed;

/// Variant tags carried in the top 3 bits of the payload header.
const TAG_RAW: u32 = 0;
const TAG_TWO_BIT: u32 = 1;
const TAG_ONE_BIT: u32 = 2;
const TAG_TERN: u32 = 3;
const TAG_QSGD: u32 = 4;
const TAG_TOPK: u32 = 5;

/// Low 29 bits of the payload header hold the element count.
const LEN_BITS: u32 = 29;
const LEN_MASK: u32 = (1 << LEN_BITS) - 1;

/// Maximum element count a payload header can carry.
pub const MAX_PAYLOAD_ELEMS: usize = LEN_MASK as usize;

/// Bytes of the `u32` length prefix each frame carries on the wire.
pub const FRAME_PREFIX_BYTES: usize = 4;

/// Largest frame body a transport will accept (1 GiB): large enough for a
/// raw f32 push of any real model key, small enough to reject a corrupted
/// length prefix before allocating.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Message opcodes (first body byte of every frame).
const OP_PUSH: u8 = 0;
const OP_PULL: u8 = 1;
const OP_PULL_REPLY: u8 = 2;
const OP_SET_LR: u8 = 3;
const OP_SNAPSHOT: u8 = 4;
const OP_SNAPSHOT_REPLY: u8 = 5;
const OP_SHUTDOWN: u8 = 6;
const OP_REGISTER: u8 = 7;
const OP_REGISTER_ACK: u8 = 8;
const OP_HEARTBEAT: u8 = 9;
const OP_LEAVE: u8 = 10;
const OP_CHECKPOINT: u8 = 11;
const OP_CHECKPOINT_ACK: u8 = 12;
const OP_CANCEL_JOIN: u8 = 13;

/// A decoded parameter-server message.
///
/// `worker`/`key` are `u32` on the wire (4 billion workers or keys per
/// shard is beyond any deployment this repo targets); versions are `u64`.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Worker → server: one gradient payload for `key`.
    Push {
        worker: u32,
        key: u32,
        payload: Compressed,
    },
    /// Worker → server: request `key`'s weights at exactly `min_version`.
    Pull { key: u32, min_version: u64 },
    /// Server → worker: the weights answering a [`WireMsg::Pull`]; echoes
    /// the *requested* version so the client can match outstanding pulls
    /// even when the server raced one aggregate ahead.
    PullReply {
        key: u32,
        min_version: u64,
        weights: Vec<f32>,
    },
    /// Control → server: change the global learning rate.
    SetLr { lr: f32 },
    /// Control → server: request all weights and per-key versions.
    Snapshot,
    /// Server → control: answer to [`WireMsg::Snapshot`].
    SnapshotReply {
        weights: Vec<Vec<f32>>,
        versions: Vec<u64>,
    },
    /// Control → server: stop serving (the deployment-level kill switch
    /// for the `psd` process; distinct from a client disconnecting).
    Shutdown,
    /// Worker → server: join the membership as `worker`. The server
    /// admits the worker into the quorum and answers with
    /// [`WireMsg::RegisterAck`]; until the ack arrives the worker must
    /// not push (its rounds are not yet counted).
    Register { worker: u32 },
    /// Server → worker: admission granted. Carries the per-key versions
    /// at the instant of admission — the joiner's first pull targets
    /// exactly these, so it can never trip the server's one-round lag
    /// limit.
    RegisterAck { versions: Vec<u64> },
    /// Worker → server: liveness signal for `worker`, for membership
    /// timeout supervision between pushes (pushes also count).
    Heartbeat { worker: u32 },
    /// Worker → server: graceful departure of `worker`. The server
    /// drains any queued pushes from it and shrinks the quorum instead
    /// of declaring the worker lost.
    Leave { worker: u32 },
    /// Worker → server: roll back this connection's own tentative
    /// registration of `worker` — a two-phase cross-shard join revoking
    /// the shards it admitted after a later shard failed. Unlike
    /// [`WireMsg::Leave`], the server honours it only when this exact
    /// connection's registration *promoted* the worker into the active
    /// set, so a rollback trailing a reconnect's re-registration cannot
    /// demote an established member.
    CancelJoin { worker: u32 },
    /// Control → server: write a durable checkpoint of the current shard
    /// state now (requires the server to have been started with a
    /// checkpoint directory). Answered by [`WireMsg::CheckpointAck`].
    Checkpoint,
    /// Server → control: answer to [`WireMsg::Checkpoint`]. `round` is
    /// the uniform key version the snapshot captured, or `None` if the
    /// server could not write one (no checkpoint directory, skewed key
    /// versions, or an I/O failure — details go to the server's stderr).
    CheckpointAck { round: Option<u64> },
}

/// Exact wire size of a push frame carrying a payload of
/// `payload_wire_bytes` (= [`Compressed::wire_bytes`]): length prefix +
/// opcode + worker + key + payload.
pub fn push_frame_bytes(payload_wire_bytes: usize) -> usize {
    FRAME_PREFIX_BYTES + 1 + 4 + 4 + payload_wire_bytes
}

/// Exact wire size of a pull-reply frame carrying `n` f32 weights:
/// length prefix + opcode + key + version + payload. This is what the
/// server's traffic accounting charges per served pull — header included,
/// unlike the bare `4 * n` estimate it replaces.
pub fn pull_reply_frame_bytes(n: usize) -> usize {
    FRAME_PREFIX_BYTES + 1 + 4 + 8 + 4 * n
}

// ---------------------------------------------------------------------------
// Collective chunk frames
// ---------------------------------------------------------------------------
//
// Collective links (ring / tree all-reduce, decentralized neighbor
// exchange — see `cdsgd_ps::collective`) carry their own frame family,
// deliberately disjoint from the parameter-server opcodes above: a
// peer-to-peer link accidentally wired into a PS port fails decoding
// immediately instead of mis-parsing. The body is
// `[tag][phase][index u32][count u32][payload]` where `index` is a
// chunk index, a source rank, or a hello rank depending on `phase`,
// and `count` is the f32 element count for chunk phases (payload is
// `4·count` little-endian f32s) or the raw byte length for
// [`COLLECTIVE_EXCHANGE`] payloads.

/// Leading tag byte of every collective frame. Chosen outside the
/// PS opcode range so cross-wired connections fail fast.
pub const TAG_COLLECTIVE_FRAME: u8 = 0xC5;

/// Handshake: `index` carries the sender's rank, no payload. The first
/// frame on every collective link, so accepters can label inbound
/// connections by peer rank regardless of accept order.
pub const COLLECTIVE_HELLO: u8 = 0;
/// Ring scatter-reduce step: `index` is the chunk index, payload f32s.
pub const COLLECTIVE_SCATTER: u8 = 1;
/// Ring all-gather step: `index` is the chunk index, payload f32s.
pub const COLLECTIVE_GATHER: u8 = 2;
/// Decentralized neighbor exchange: payload is an opaque byte blob
/// (typically an encoded [`Compressed`] stream), `count` its length.
pub const COLLECTIVE_EXCHANGE: u8 = 3;
/// Tree reduce, leaf/inner → root direction: `index` is the *source
/// rank* of the forwarded vector, payload f32s.
pub const COLLECTIVE_TREE_UP: u8 = 4;
/// Tree broadcast, root → leaves direction: `index` is the chunk index
/// (or 0 for a full-vector broadcast), payload f32s.
pub const COLLECTIVE_TREE_DOWN: u8 = 5;

/// Fixed header bytes of a collective frame body (tag + phase + index +
/// count), before the payload.
pub const COLLECTIVE_HEADER_BYTES: usize = 10;

/// Exact on-the-wire size of a collective chunk frame carrying `n` f32
/// elements: length prefix + header + payload.
pub fn collective_frame_bytes(n: usize) -> usize {
    FRAME_PREFIX_BYTES + COLLECTIVE_HEADER_BYTES + 4 * n
}

/// Append a collective f32-chunk frame body (`phase` one of the chunk
/// phases) to `buf` (not cleared).
pub fn encode_collective_into(phase: u8, index: u32, values: &[f32], buf: &mut Vec<u8>) {
    buf.push(TAG_COLLECTIVE_FRAME);
    buf.push(phase);
    put_u32(buf, index);
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_f32(buf, v);
    }
}

/// Append a [`COLLECTIVE_EXCHANGE`] (or [`COLLECTIVE_HELLO`]) frame body
/// carrying an opaque byte payload to `buf` (not cleared).
pub fn encode_collective_bytes_into(phase: u8, index: u32, payload: &[u8], buf: &mut Vec<u8>) {
    buf.push(TAG_COLLECTIVE_FRAME);
    buf.push(phase);
    put_u32(buf, index);
    put_u32(buf, payload.len() as u32);
    buf.extend_from_slice(payload);
}

/// A decoded view over one collective frame body. The payload stays
/// borrowed so chunk receives can fold straight into the caller's
/// buffers without an intermediate allocation.
pub struct CollectiveFrame<'a> {
    pub phase: u8,
    pub index: u32,
    payload: &'a [u8],
    /// Element count for chunk phases, byte count for exchange/hello.
    count: usize,
}

impl<'a> CollectiveFrame<'a> {
    /// Number of f32 elements in a chunk-phase payload.
    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw payload bytes (exchange phases).
    pub fn bytes(&self) -> &'a [u8] {
        self.payload
    }

    /// Decode the f32 payload into `out`, overwriting it. Errors if the
    /// frame is not a chunk phase of exactly `out.len()` elements.
    pub fn read_f32_into(&self, out: &mut [f32]) -> Result<(), NetError> {
        if self.payload.len() != 4 * self.count {
            return Err(NetError::Decode(format!(
                "collective chunk of {} elems carries {} payload bytes",
                self.count,
                self.payload.len()
            )));
        }
        if out.len() != self.count {
            return Err(NetError::Decode(format!(
                "collective chunk of {} elems, expected {}",
                self.count,
                out.len()
            )));
        }
        for (o, raw) in out.iter_mut().zip(self.payload.chunks_exact(4)) {
            *o = f32::from_le_bytes(raw.try_into().unwrap());
        }
        Ok(())
    }

    /// Decode the f32 payload appended onto `out`.
    pub fn read_f32_append(&self, out: &mut Vec<f32>) -> Result<(), NetError> {
        let start = out.len();
        out.resize(start + self.count, 0.0);
        self.read_f32_into(&mut out[start..])
    }
}

/// Decode one collective frame body. Exchange/hello payloads are
/// validated against their byte count; chunk payloads against their
/// element count.
pub fn decode_collective(bytes: &[u8]) -> Result<CollectiveFrame<'_>, NetError> {
    let mut cur = Cursor::new(bytes);
    let tag = cur.u8()?;
    if tag != TAG_COLLECTIVE_FRAME {
        return Err(NetError::Decode(format!(
            "not a collective frame (tag {tag:#04x}, want {TAG_COLLECTIVE_FRAME:#04x})"
        )));
    }
    let phase = cur.u8()?;
    if phase > COLLECTIVE_TREE_DOWN {
        return Err(NetError::Decode(format!(
            "unknown collective phase {phase}"
        )));
    }
    let index = cur.u32()?;
    let count = cur.u32()? as usize;
    let payload = cur.take(cur.remaining())?;
    let expect = match phase {
        COLLECTIVE_HELLO | COLLECTIVE_EXCHANGE => count,
        _ => 4 * count,
    };
    if payload.len() != expect {
        return Err(NetError::Decode(format!(
            "collective phase {phase} count {count} expects {expect} payload bytes, have {}",
            payload.len()
        )));
    }
    Ok(CollectiveFrame {
        phase,
        index,
        payload,
        count,
    })
}

// ---------------------------------------------------------------------------
// little-endian primitives
// ---------------------------------------------------------------------------
//
// Public: the durable-checkpoint codecs in `cdsgd-ps` and `cd-sgd` reuse
// these so checkpoint files and wire frames share one byte convention.

/// Append a little-endian `u32` to `buf`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64` to `buf`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `f32` to `buf`.
pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over a byte slice. Every read
/// returns [`NetError::Decode`] on underrun instead of panicking, so
/// corrupted frames (and corrupted checkpoint files) surface as errors.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Decode(format!(
                "truncated: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f32(&mut self) -> Result<f32, NetError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn f32s(&mut self, n: usize) -> Result<Vec<f32>, NetError> {
        let raw = self.take(4 * n)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Compressed payload codec
// ---------------------------------------------------------------------------

/// Bits per QSGD code symbol for a given level count — mirrors the
/// fixed-width accounting in [`Compressed::wire_bytes`].
fn qsgd_bits(levels: u8) -> usize {
    (2 * levels as usize + 1)
        .next_power_of_two()
        .trailing_zeros() as usize
}

fn header(tag: u32, len: usize) -> u32 {
    assert!(
        len <= MAX_PAYLOAD_ELEMS,
        "payload of {len} elements exceeds the 29-bit wire header"
    );
    (tag << LEN_BITS) | len as u32
}

/// Append the exact wire encoding of `c` to `buf` (which is *not*
/// cleared). Appends precisely [`Compressed::wire_bytes`] bytes.
///
/// # Panics
/// Panics if the payload violates its own construction invariants
/// (element count over 2^29 − 1, QSGD code outside `[-levels, levels]`,
/// or a Top-k index/value length mismatch) — these cannot come from the
/// codecs in `cdsgd-compress`, only from hand-built payloads.
pub fn encode_compressed_into(c: &Compressed, buf: &mut Vec<u8>) {
    match c {
        Compressed::Raw(v) => {
            put_u32(buf, header(TAG_RAW, v.len()));
            for &x in v {
                put_f32(buf, x);
            }
        }
        Compressed::TwoBit {
            threshold,
            packed,
            len,
        } => {
            put_u32(buf, header(TAG_TWO_BIT, *len));
            put_f32(buf, *threshold);
            buf.extend_from_slice(packed);
        }
        Compressed::OneBit { scale, signs, len } => {
            put_u32(buf, header(TAG_ONE_BIT, *len));
            put_f32(buf, *scale);
            buf.extend_from_slice(signs);
        }
        Compressed::Tern { scale, packed, len } => {
            put_u32(buf, header(TAG_TERN, *len));
            put_f32(buf, *scale);
            buf.extend_from_slice(packed);
        }
        Compressed::Qsgd {
            norm,
            levels,
            codes,
            len,
        } => {
            assert_eq!(codes.len(), *len, "QSGD code count must equal len");
            put_u32(buf, header(TAG_QSGD, *len));
            put_f32(buf, *norm);
            buf.push(*levels);
            let bits = qsgd_bits(*levels);
            // LSB-first bit packing of the biased symbols code + levels,
            // each in [0, 2·levels] and hence within `bits` bits.
            let mut acc: u64 = 0;
            let mut nbits: usize = 0;
            for &code in codes {
                let sym = code as i32 + *levels as i32;
                assert!(
                    (0..=2 * *levels as i32).contains(&sym),
                    "QSGD code {code} outside [-levels, levels] for levels {levels}"
                );
                acc |= (sym as u64) << nbits;
                nbits += bits;
                while nbits >= 8 {
                    buf.push(acc as u8);
                    acc >>= 8;
                    nbits -= 8;
                }
            }
            if nbits > 0 {
                buf.push(acc as u8);
            }
        }
        Compressed::TopK {
            indices,
            values,
            len,
        } => {
            assert_eq!(
                indices.len(),
                values.len(),
                "Top-k index/value length mismatch"
            );
            put_u32(buf, header(TAG_TOPK, *len));
            for (&i, &v) in indices.iter().zip(values) {
                put_u32(buf, i);
                put_f32(buf, v);
            }
        }
    }
}

/// Decode a payload from `bytes`, consuming the entire slice.
///
/// The encoding is self-delimiting *given* the slice length (the frame
/// layer always hands the payload as the tail of a frame), so any surplus
/// or deficit of bytes is a [`NetError::Decode`]. Every structural
/// invariant the in-memory decoders rely on (enough packed bytes for the
/// element count, Top-k indices in range) is validated here so a hostile
/// or corrupted frame cannot panic the server.
pub fn decode_compressed(bytes: &[u8]) -> Result<Compressed, NetError> {
    let mut cur = Cursor::new(bytes);
    let head = cur.u32()?;
    let tag = head >> LEN_BITS;
    let len = (head & LEN_MASK) as usize;
    match tag {
        TAG_RAW => {
            if cur.remaining() != 4 * len {
                return Err(NetError::Decode(format!(
                    "raw payload of {len} elems needs {} bytes, have {}",
                    4 * len,
                    cur.remaining()
                )));
            }
            Ok(Compressed::Raw(cur.f32s(len)?))
        }
        TAG_TWO_BIT | TAG_TERN => {
            let scalar = cur.f32()?;
            let packed = cur.take(cur.remaining())?.to_vec();
            if packed.len() * 4 < len {
                return Err(NetError::Decode(format!(
                    "{} packed bytes cannot hold {len} 2-bit symbols",
                    packed.len()
                )));
            }
            Ok(if tag == TAG_TWO_BIT {
                Compressed::TwoBit {
                    threshold: scalar,
                    packed,
                    len,
                }
            } else {
                Compressed::Tern {
                    scale: scalar,
                    packed,
                    len,
                }
            })
        }
        TAG_ONE_BIT => {
            let scale = cur.f32()?;
            let signs = cur.take(cur.remaining())?.to_vec();
            if signs.len() * 8 < len {
                return Err(NetError::Decode(format!(
                    "{} sign bytes cannot hold {len} 1-bit symbols",
                    signs.len()
                )));
            }
            Ok(Compressed::OneBit { scale, signs, len })
        }
        TAG_QSGD => {
            let norm = cur.f32()?;
            let levels = cur.u8()?;
            let bits = qsgd_bits(levels);
            let expect = (len * bits).div_ceil(8);
            if cur.remaining() != expect {
                return Err(NetError::Decode(format!(
                    "QSGD payload of {len} codes at {bits} bits needs {expect} bytes, have {}",
                    cur.remaining()
                )));
            }
            let packed = cur.take(expect)?;
            let mut codes = Vec::with_capacity(len);
            let mut acc: u64 = 0;
            let mut nbits: usize = 0;
            let mut next = 0usize;
            let mask: u64 = if bits == 0 { 0 } else { (1 << bits) - 1 };
            for _ in 0..len {
                while nbits < bits {
                    acc |= (packed[next] as u64) << nbits;
                    next += 1;
                    nbits += 8;
                }
                let sym = (acc & mask) as i32;
                acc >>= bits;
                nbits -= bits;
                let code = sym - levels as i32;
                if !(i8::MIN as i32..=i8::MAX as i32).contains(&code) {
                    return Err(NetError::Decode(format!(
                        "QSGD symbol {sym} out of i8 code range for levels {levels}"
                    )));
                }
                codes.push(code as i8);
            }
            Ok(Compressed::Qsgd {
                norm,
                levels,
                codes,
                len,
            })
        }
        TAG_TOPK => {
            if !cur.remaining().is_multiple_of(8) {
                return Err(NetError::Decode(format!(
                    "Top-k payload of {} bytes is not a whole number of (u32, f32) pairs",
                    cur.remaining()
                )));
            }
            let k = cur.remaining() / 8;
            let mut indices = Vec::with_capacity(k);
            let mut values = Vec::with_capacity(k);
            for _ in 0..k {
                let i = cur.u32()?;
                if i as usize >= len {
                    return Err(NetError::Decode(format!(
                        "Top-k index {i} out of range for {len} elements"
                    )));
                }
                indices.push(i);
                values.push(cur.f32()?);
            }
            Ok(Compressed::TopK {
                indices,
                values,
                len,
            })
        }
        t => Err(NetError::Decode(format!("unknown payload tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// message codec
// ---------------------------------------------------------------------------

/// Encode a push message body into `buf` (cleared first). Zero-copy over
/// the payload reference — this is the worker hot path.
pub fn encode_push_into(worker: u32, key: u32, payload: &Compressed, buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_PUSH);
    put_u32(buf, worker);
    put_u32(buf, key);
    encode_compressed_into(payload, buf);
}

/// Encode a pull request body into `buf` (cleared first).
pub fn encode_pull_into(key: u32, min_version: u64, buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_PULL);
    put_u32(buf, key);
    put_u64(buf, min_version);
}

/// Encode a pull-reply body into `buf` (cleared first). Takes the weight
/// slice by reference so the server can frame an `Arc<[f32]>` snapshot
/// without materialising a `Vec`.
pub fn encode_pull_reply_into(key: u32, min_version: u64, weights: &[f32], buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_PULL_REPLY);
    put_u32(buf, key);
    put_u64(buf, min_version);
    for &w in weights {
        put_f32(buf, w);
    }
}

/// Encode a set-lr body into `buf` (cleared first).
pub fn encode_set_lr_into(lr: f32, buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_SET_LR);
    put_f32(buf, lr);
}

/// Encode a snapshot request body into `buf` (cleared first).
pub fn encode_snapshot_into(buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_SNAPSHOT);
}

/// Encode a snapshot reply body into `buf` (cleared first). Layout: key
/// count, then per key its version, length, and raw f32 weights.
pub fn encode_snapshot_reply_into(weights: &[Vec<f32>], versions: &[u64], buf: &mut Vec<u8>) {
    assert_eq!(weights.len(), versions.len(), "snapshot key count mismatch");
    buf.clear();
    buf.push(OP_SNAPSHOT_REPLY);
    put_u32(buf, weights.len() as u32);
    for (w, &v) in weights.iter().zip(versions) {
        put_u64(buf, v);
        put_u32(buf, w.len() as u32);
        for &x in w {
            put_f32(buf, x);
        }
    }
}

/// Encode a shutdown body into `buf` (cleared first).
pub fn encode_shutdown_into(buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_SHUTDOWN);
}

/// Encode a register body into `buf` (cleared first).
pub fn encode_register_into(worker: u32, buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_REGISTER);
    put_u32(buf, worker);
}

/// Encode a register-ack body into `buf` (cleared first). Layout: key
/// count, then one `u64` version per key.
pub fn encode_register_ack_into(versions: &[u64], buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_REGISTER_ACK);
    put_u32(buf, versions.len() as u32);
    for &v in versions {
        put_u64(buf, v);
    }
}

/// Encode a heartbeat body into `buf` (cleared first).
pub fn encode_heartbeat_into(worker: u32, buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_HEARTBEAT);
    put_u32(buf, worker);
}

/// Encode a leave body into `buf` (cleared first).
pub fn encode_leave_into(worker: u32, buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_LEAVE);
    put_u32(buf, worker);
}

/// Encode a cancel-join body into `buf` (cleared first).
pub fn encode_cancel_join_into(worker: u32, buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_CANCEL_JOIN);
    put_u32(buf, worker);
}

/// Encode a checkpoint request body into `buf` (cleared first).
pub fn encode_checkpoint_into(buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_CHECKPOINT);
}

/// Encode a checkpoint-ack body into `buf` (cleared first). Layout: a
/// success byte, then the captured round (present only on success).
pub fn encode_checkpoint_ack_into(round: Option<u64>, buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(OP_CHECKPOINT_ACK);
    match round {
        Some(r) => {
            buf.push(1);
            put_u64(buf, r);
        }
        None => buf.push(0),
    }
}

/// Encode any [`WireMsg`] into `buf` (cleared first). The per-message
/// `encode_*_into` helpers are the zero-copy hot paths; this exists for
/// symmetry with [`decode_msg`] and for tests.
pub fn encode_msg_into(msg: &WireMsg, buf: &mut Vec<u8>) {
    match msg {
        WireMsg::Push {
            worker,
            key,
            payload,
        } => encode_push_into(*worker, *key, payload, buf),
        WireMsg::Pull { key, min_version } => encode_pull_into(*key, *min_version, buf),
        WireMsg::PullReply {
            key,
            min_version,
            weights,
        } => encode_pull_reply_into(*key, *min_version, weights, buf),
        WireMsg::SetLr { lr } => encode_set_lr_into(*lr, buf),
        WireMsg::Snapshot => encode_snapshot_into(buf),
        WireMsg::SnapshotReply { weights, versions } => {
            encode_snapshot_reply_into(weights, versions, buf)
        }
        WireMsg::Shutdown => encode_shutdown_into(buf),
        WireMsg::Register { worker } => encode_register_into(*worker, buf),
        WireMsg::RegisterAck { versions } => encode_register_ack_into(versions, buf),
        WireMsg::Heartbeat { worker } => encode_heartbeat_into(*worker, buf),
        WireMsg::Leave { worker } => encode_leave_into(*worker, buf),
        WireMsg::CancelJoin { worker } => encode_cancel_join_into(*worker, buf),
        WireMsg::Checkpoint => encode_checkpoint_into(buf),
        WireMsg::CheckpointAck { round } => encode_checkpoint_ack_into(*round, buf),
    }
}

/// Decode one frame body into a [`WireMsg`], consuming the entire slice.
pub fn decode_msg(bytes: &[u8]) -> Result<WireMsg, NetError> {
    let mut cur = Cursor::new(bytes);
    let op = cur.u8()?;
    let msg = match op {
        OP_PUSH => {
            let worker = cur.u32()?;
            let key = cur.u32()?;
            let payload = decode_compressed(cur.take(cur.remaining())?)?;
            WireMsg::Push {
                worker,
                key,
                payload,
            }
        }
        OP_PULL => WireMsg::Pull {
            key: cur.u32()?,
            min_version: cur.u64()?,
        },
        OP_PULL_REPLY => {
            let key = cur.u32()?;
            let min_version = cur.u64()?;
            if !cur.remaining().is_multiple_of(4) {
                return Err(NetError::Decode(format!(
                    "pull reply body of {} bytes is not whole f32s",
                    cur.remaining()
                )));
            }
            let n = cur.remaining() / 4;
            WireMsg::PullReply {
                key,
                min_version,
                weights: cur.f32s(n)?,
            }
        }
        OP_SET_LR => WireMsg::SetLr { lr: cur.f32()? },
        OP_SNAPSHOT => WireMsg::Snapshot,
        OP_SNAPSHOT_REPLY => {
            let keys = cur.u32()? as usize;
            let mut weights = Vec::with_capacity(keys);
            let mut versions = Vec::with_capacity(keys);
            for _ in 0..keys {
                versions.push(cur.u64()?);
                let n = cur.u32()? as usize;
                weights.push(cur.f32s(n)?);
            }
            WireMsg::SnapshotReply { weights, versions }
        }
        OP_SHUTDOWN => WireMsg::Shutdown,
        OP_REGISTER => WireMsg::Register { worker: cur.u32()? },
        OP_REGISTER_ACK => {
            let keys = cur.u32()? as usize;
            let mut versions = Vec::with_capacity(keys);
            for _ in 0..keys {
                versions.push(cur.u64()?);
            }
            WireMsg::RegisterAck { versions }
        }
        OP_HEARTBEAT => WireMsg::Heartbeat { worker: cur.u32()? },
        OP_LEAVE => WireMsg::Leave { worker: cur.u32()? },
        OP_CANCEL_JOIN => WireMsg::CancelJoin { worker: cur.u32()? },
        OP_CHECKPOINT => WireMsg::Checkpoint,
        OP_CHECKPOINT_ACK => {
            let ok = cur.u8()?;
            let round = match ok {
                0 => None,
                1 => Some(cur.u64()?),
                b => {
                    return Err(NetError::Decode(format!(
                        "checkpoint ack success byte must be 0 or 1, got {b}"
                    )))
                }
            };
            WireMsg::CheckpointAck { round }
        }
        o => return Err(NetError::Decode(format!("unknown opcode {o}"))),
    };
    if cur.remaining() != 0 {
        return Err(NetError::Decode(format!(
            "{} trailing bytes after message",
            cur.remaining()
        )));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(c: &Compressed) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_compressed_into(c, &mut buf);
        buf
    }

    #[test]
    fn every_variant_round_trips_and_matches_wire_bytes() {
        let variants = vec![
            Compressed::Raw(vec![1.0, -2.5, 0.0]),
            Compressed::Raw(vec![]),
            Compressed::TwoBit {
                threshold: 0.5,
                packed: vec![0b0110_0001, 0b10],
                len: 5,
            },
            Compressed::OneBit {
                scale: 1.25,
                signs: vec![0b1010_1010],
                len: 8,
            },
            Compressed::Tern {
                scale: 0.75,
                packed: vec![0b01],
                len: 1,
            },
            Compressed::Qsgd {
                norm: 3.0,
                levels: 4,
                codes: vec![-4, -1, 0, 2, 4],
                len: 5,
            },
            Compressed::TopK {
                indices: vec![0, 7],
                values: vec![1.5, -0.25],
                len: 9,
            },
            Compressed::TopK {
                indices: vec![],
                values: vec![],
                len: 0,
            },
        ];
        for c in variants {
            let bytes = encode(&c);
            assert_eq!(bytes.len(), c.wire_bytes(), "wire size invariant: {c:?}");
            assert_eq!(decode_compressed(&bytes).unwrap(), c, "round trip: {c:?}");
        }
    }

    #[test]
    fn qsgd_nine_bit_symbols_round_trip() {
        // levels = 255 forces 9-bit symbols spanning byte boundaries.
        let c = Compressed::Qsgd {
            norm: 1.0,
            levels: 255,
            codes: vec![-128, 127, 0, -1, 55],
            len: 5,
        };
        let bytes = encode(&c);
        assert_eq!(bytes.len(), c.wire_bytes());
        assert_eq!(decode_compressed(&bytes).unwrap(), c);
    }

    #[test]
    fn corrupted_payloads_error_instead_of_panicking() {
        // Truncated raw payload.
        let mut bytes = encode(&Compressed::Raw(vec![1.0, 2.0]));
        bytes.pop();
        assert!(matches!(
            decode_compressed(&bytes),
            Err(NetError::Decode(_))
        ));
        // Unknown tag.
        let bogus = ((7u32 << LEN_BITS) | 1).to_le_bytes().to_vec();
        assert!(matches!(
            decode_compressed(&bogus),
            Err(NetError::Decode(_))
        ));
        // Top-k index out of range.
        let evil = encode(&Compressed::TopK {
            indices: vec![2],
            values: vec![1.0],
            len: 8,
        });
        let mut evil_oob = evil.clone();
        evil_oob[4..8].copy_from_slice(&100u32.to_le_bytes());
        assert!(matches!(
            decode_compressed(&evil_oob),
            Err(NetError::Decode(_))
        ));
        // 2-bit payload with too few packed bytes for its element count.
        let mut short = encode(&Compressed::TwoBit {
            threshold: 0.5,
            packed: vec![0; 4],
            len: 16,
        });
        short.truncate(short.len() - 2);
        assert!(matches!(
            decode_compressed(&short),
            Err(NetError::Decode(_))
        ));
    }

    #[test]
    fn messages_round_trip() {
        let msgs = vec![
            WireMsg::Push {
                worker: 3,
                key: 11,
                payload: Compressed::Raw(vec![0.5, -0.5]),
            },
            WireMsg::Pull {
                key: 2,
                min_version: 40,
            },
            WireMsg::PullReply {
                key: 2,
                min_version: 40,
                weights: vec![1.0, 2.0, 3.0],
            },
            WireMsg::SetLr { lr: 0.05 },
            WireMsg::Snapshot,
            WireMsg::SnapshotReply {
                weights: vec![vec![1.0], vec![], vec![2.0, 3.0]],
                versions: vec![4, 0, 9],
            },
            WireMsg::Shutdown,
            WireMsg::Register { worker: 5 },
            WireMsg::RegisterAck {
                versions: vec![0, 7, 12],
            },
            WireMsg::RegisterAck { versions: vec![] },
            WireMsg::Heartbeat { worker: 5 },
            WireMsg::Leave { worker: 2 },
            WireMsg::CancelJoin { worker: 9 },
            WireMsg::Checkpoint,
            WireMsg::CheckpointAck { round: Some(24) },
            WireMsg::CheckpointAck { round: None },
        ];
        let mut buf = Vec::new();
        for m in msgs {
            encode_msg_into(&m, &mut buf);
            assert_eq!(decode_msg(&buf).unwrap(), m, "round trip: {m:?}");
        }
    }

    #[test]
    fn frame_size_helpers_match_actual_encodings() {
        let payload = Compressed::TwoBit {
            threshold: 0.5,
            packed: vec![0; 16],
            len: 64,
        };
        let mut buf = Vec::new();
        encode_push_into(1, 2, &payload, &mut buf);
        assert_eq!(
            buf.len() + FRAME_PREFIX_BYTES,
            push_frame_bytes(payload.wire_bytes())
        );

        let weights = vec![0.0f32; 33];
        encode_pull_reply_into(7, 12, &weights, &mut buf);
        assert_eq!(
            buf.len() + FRAME_PREFIX_BYTES,
            pull_reply_frame_bytes(weights.len())
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_pull_into(1, 2, &mut buf);
        buf.push(0);
        assert!(matches!(decode_msg(&buf), Err(NetError::Decode(_))));
    }

    #[test]
    fn collective_chunk_round_trips_exactly() {
        let values = [1.5f32, -0.25, f32::MIN_POSITIVE, 3.0e8];
        let mut buf = Vec::new();
        encode_collective_into(COLLECTIVE_SCATTER, 7, &values, &mut buf);
        assert_eq!(
            buf.len() + FRAME_PREFIX_BYTES,
            collective_frame_bytes(values.len())
        );
        let frame = decode_collective(&buf).unwrap();
        assert_eq!(frame.phase, COLLECTIVE_SCATTER);
        assert_eq!(frame.index, 7);
        assert_eq!(frame.len(), 4);
        let mut out = [0.0f32; 4];
        frame.read_f32_into(&mut out).unwrap();
        // Bit-exact round trip: the wire must never perturb f32 chunks,
        // or cross-backend bit-identity (DESIGN.md §16) breaks.
        for (a, b) in out.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn collective_exchange_carries_opaque_bytes() {
        let payload = [9u8, 8, 7, 6, 5];
        let mut buf = Vec::new();
        encode_collective_bytes_into(COLLECTIVE_EXCHANGE, 2, &payload, &mut buf);
        let frame = decode_collective(&buf).unwrap();
        assert_eq!(frame.phase, COLLECTIVE_EXCHANGE);
        assert_eq!(frame.index, 2);
        assert_eq!(frame.bytes(), &payload);
    }

    #[test]
    fn collective_decode_rejects_corruption() {
        // Wrong leading tag: a PS frame body must not parse.
        let mut buf = Vec::new();
        encode_pull_into(1, 2, &mut buf);
        assert!(decode_collective(&buf).is_err());
        // Truncated payload.
        let mut buf = Vec::new();
        encode_collective_into(COLLECTIVE_GATHER, 0, &[1.0, 2.0], &mut buf);
        buf.pop();
        assert!(decode_collective(&buf).is_err());
        // Unknown phase.
        let mut buf = Vec::new();
        encode_collective_bytes_into(99, 0, &[], &mut buf);
        assert!(decode_collective(&buf).is_err());
        // Chunk length mismatch at read time.
        let mut buf = Vec::new();
        encode_collective_into(COLLECTIVE_SCATTER, 0, &[1.0, 2.0], &mut buf);
        let frame = decode_collective(&buf).unwrap();
        let mut out = [0.0f32; 3];
        assert!(frame.read_f32_into(&mut out).is_err());
    }
}
