//! Deterministic fault injection at the transport layer.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and executes a scripted
//! [`FaultPlan`]: drop the connection after a fixed number of frames,
//! or delay every frame by a fixed amount. The script is counted in
//! frames, which are deterministic for a given training configuration
//! (a worker sends exactly `num_keys` push frames plus `num_keys` pull
//! requests per round), so every failure path is reproducible in tests —
//! no sleeps, races, or real packet loss required.
//!
//! Cloned handles ([`Transport::try_clone`]) share the same fault state:
//! once the scripted kill fires, every handle of the connection reports
//! [`NetError::Closed`], exactly like a real socket torn down under a
//! reader/writer split. A kill is *silent* on purpose — the peer is not
//! notified, which is the failure mode a server-side round deadline
//! exists to catch.

use crate::error::NetError;
use crate::transport::Transport;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A scripted sequence of transport faults. The default plan injects
/// nothing; builder methods arm individual faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    kill_after_sends: Option<u64>,
    kill_after_recvs: Option<u64>,
    send_delay: Option<Duration>,
    recv_delay: Option<Duration>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Let `n` frames be sent, then fail the connection: send `n + 1`
    /// (and everything after, on every handle) returns
    /// [`NetError::Closed`].
    pub fn kill_after_sends(mut self, n: u64) -> Self {
        self.kill_after_sends = Some(n);
        self
    }

    /// Let `n` frames be received, then fail the connection.
    pub fn kill_after_recvs(mut self, n: u64) -> Self {
        self.kill_after_recvs = Some(n);
        self
    }

    /// Sleep `d` before every sent frame (an injected slow link).
    pub fn delay_sends(mut self, d: Duration) -> Self {
        self.send_delay = Some(d);
        self
    }

    /// Sleep `d` before every received frame.
    pub fn delay_recvs(mut self, d: Duration) -> Self {
        self.recv_delay = Some(d);
        self
    }
}

/// Counters shared by every handle of one faulty connection.
#[derive(Default)]
struct FaultState {
    sends: AtomicU64,
    recvs: AtomicU64,
    dead: AtomicBool,
}

/// A [`Transport`] that executes a [`FaultPlan`] on top of an inner
/// transport.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: FaultPlan,
    state: Arc<FaultState>,
}

impl FaultyTransport {
    /// Wrap `inner` with the scripted `plan`.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            state: Arc::new(FaultState::default()),
        }
    }

    fn check_dead(&self) -> Result<(), NetError> {
        if self.state.dead.load(Ordering::SeqCst) {
            Err(NetError::Closed)
        } else {
            Ok(())
        }
    }

    /// Count one frame in `counter`; trip the kill switch when the plan's
    /// `limit` is reached.
    fn count(&self, counter: &AtomicU64, limit: Option<u64>) -> Result<(), NetError> {
        let n = counter.fetch_add(1, Ordering::SeqCst);
        if let Some(limit) = limit {
            if n >= limit {
                self.state.dead.store(true, Ordering::SeqCst);
                return Err(NetError::Closed);
            }
        }
        Ok(())
    }
}

impl Transport for FaultyTransport {
    fn send_frame(&mut self, body: &[u8]) -> Result<(), NetError> {
        self.check_dead()?;
        if let Some(d) = self.plan.send_delay {
            std::thread::sleep(d);
        }
        self.count(&self.state.sends, self.plan.kill_after_sends)?;
        self.inner.send_frame(body)
    }

    fn recv_frame(&mut self, out: &mut Vec<u8>) -> Result<(), NetError> {
        self.check_dead()?;
        if let Some(d) = self.plan.recv_delay {
            std::thread::sleep(d);
        }
        self.count(&self.state.recvs, self.plan.kill_after_recvs)?;
        self.inner.recv_frame(out)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.inner.set_recv_timeout(timeout)
    }

    fn try_clone(&self) -> Result<Box<dyn Transport>, NetError> {
        Ok(Box::new(Self {
            inner: self.inner.try_clone()?,
            plan: self.plan.clone(),
            state: Arc::clone(&self.state),
        }))
    }

    fn conn_id(&self) -> u64 {
        self.inner.conn_id()
    }

    fn peer(&self) -> String {
        format!("faulty({})", self.inner.peer())
    }

    fn set_nonblocking(&mut self, nonblocking: bool) -> Result<(), NetError> {
        self.inner.set_nonblocking(nonblocking)
    }

    fn poll_recv_frame(&mut self, out: &mut Vec<u8>) -> Result<bool, NetError> {
        self.check_dead()?;
        // Only a frame that actually arrives counts against the plan —
        // empty polls are free, matching the blocking API where every
        // call returns one frame.
        if !self.inner.poll_recv_frame(out)? {
            return Ok(false);
        }
        if let Some(d) = self.plan.recv_delay {
            std::thread::sleep(d);
        }
        self.count(&self.state.recvs, self.plan.kill_after_recvs)?;
        Ok(true)
    }

    fn poll_send_frame(&mut self, body: &[u8]) -> Result<(), NetError> {
        self.check_dead()?;
        if let Some(d) = self.plan.send_delay {
            std::thread::sleep(d);
        }
        self.count(&self.state.sends, self.plan.kill_after_sends)?;
        self.inner.poll_send_frame(body)
    }

    fn poll_flush(&mut self) -> Result<bool, NetError> {
        self.check_dead()?;
        self.inner.poll_flush()
    }

    fn pending_out_bytes(&self) -> usize {
        self.inner.pending_out_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;

    #[test]
    fn no_plan_is_transparent() {
        let (a, mut b) = loopback_pair();
        let mut a = FaultyTransport::new(Box::new(a), FaultPlan::new());
        a.send_frame(b"hello").unwrap();
        let mut buf = Vec::new();
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"hello");
    }

    #[test]
    fn kill_after_sends_fails_the_scripted_frame_and_after() {
        let (a, mut b) = loopback_pair();
        let mut a = FaultyTransport::new(Box::new(a), FaultPlan::new().kill_after_sends(2));
        a.send_frame(b"one").unwrap();
        a.send_frame(b"two").unwrap();
        assert_eq!(a.send_frame(b"three"), Err(NetError::Closed));
        assert_eq!(a.send_frame(b"four"), Err(NetError::Closed));
        // The kill is silent: the peer got exactly the frames before it.
        let mut buf = Vec::new();
        b.recv_frame(&mut buf).unwrap();
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"two");
    }

    #[test]
    fn clones_share_the_kill_switch() {
        let (a, _b) = loopback_pair();
        let mut a = FaultyTransport::new(Box::new(a), FaultPlan::new().kill_after_sends(0));
        let mut a2 = a.try_clone().unwrap();
        assert_eq!(a.send_frame(b"x"), Err(NetError::Closed));
        // The clone observes the same dead connection without sending.
        assert_eq!(a2.send_frame(b"y"), Err(NetError::Closed));
        let mut buf = Vec::new();
        assert_eq!(a2.recv_frame(&mut buf), Err(NetError::Closed));
    }

    #[test]
    fn kill_after_recvs_counts_received_frames() {
        let (mut a, b) = loopback_pair();
        let mut b = FaultyTransport::new(Box::new(b), FaultPlan::new().kill_after_recvs(1));
        a.send_frame(b"one").unwrap();
        a.send_frame(b"two").unwrap();
        let mut buf = Vec::new();
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"one");
        assert_eq!(b.recv_frame(&mut buf), Err(NetError::Closed));
    }

    #[test]
    fn delay_sends_slows_each_frame() {
        let (a, mut b) = loopback_pair();
        let mut a = FaultyTransport::new(
            Box::new(a),
            FaultPlan::new().delay_sends(Duration::from_millis(20)),
        );
        let t = std::time::Instant::now();
        a.send_frame(b"slow").unwrap();
        assert!(t.elapsed() >= Duration::from_millis(20));
        let mut buf = Vec::new();
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"slow");
    }
}
