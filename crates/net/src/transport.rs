//! Pluggable byte transports: a TCP backend and an in-memory loopback
//! backend behind one [`Transport`] trait.
//!
//! Both backends move *length-prefixed frames* (a `u32` little-endian body
//! length followed by the body — see [`crate::wire`]), so the parameter
//! server glue is written once against `Box<dyn Transport>` and runs
//! bit-identically over a socket or a pair of in-process queues.
//!
//! The TCP receive path keeps an internal buffer that preserves
//! partial-frame state across [`NetError::Timeout`] returns: a poll loop
//! with a short receive deadline can never desynchronise the framing,
//! because bytes consumed from the socket stay owned by the transport
//! until a whole frame is available.

use crate::error::NetError;
use crate::wire::{FRAME_PREFIX_BYTES, MAX_FRAME_BYTES};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Process-wide [`Transport::conn_id`] allocator: each connection
/// endpoint constructed in this process gets a distinct id; clones of an
/// endpoint share it.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

fn next_conn_id() -> u64 {
    NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Connection and I/O policy for the TCP backend.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Maximum connect attempts before giving up with
    /// [`NetError::Connect`].
    pub connect_attempts: u32,
    /// Sleep before the second connect attempt; doubles per attempt
    /// (bounded exponential backoff). Lets workers start before the
    /// server finishes binding in multi-process deployments.
    pub backoff_base: Duration,
    /// Default receive deadline installed on new connections; `None`
    /// blocks forever. Senders always block until the frame is written.
    pub io_timeout: Option<Duration>,
    /// Set `TCP_NODELAY` (on by default: push/pull frames are
    /// latency-sensitive and already batched at the message layer, so
    /// Nagle coalescing only adds round-trip delay).
    pub nodelay: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            connect_attempts: 10,
            backoff_base: Duration::from_millis(20),
            io_timeout: Some(Duration::from_secs(30)),
            nodelay: true,
        }
    }
}

/// Ceiling on any single reconnect backoff sleep, mirroring the connect
/// backoff cap.
pub const RECONNECT_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Client-side auto-reconnect policy: how a worker survives a transient
/// link drop to a parameter-server shard (redial every shard, re-register,
/// replay unaggregated pushes — see `cdsgd-ps`). Never armed by default;
/// a config with `retries == 0` disables reconnection entirely and the
/// fault-free code paths are untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconnectConfig {
    /// Redial attempts per link drop before the failure becomes fatal.
    pub retries: u32,
    /// Base of the exponential redial backoff: attempt `i` (0-based)
    /// sleeps `backoff << i`, capped at [`RECONNECT_BACKOFF_CAP`].
    pub backoff: Duration,
}

impl Default for ReconnectConfig {
    fn default() -> Self {
        Self {
            retries: 5,
            backoff: Duration::from_millis(50),
        }
    }
}

impl ReconnectConfig {
    /// The bounded-exponential sleep before redial attempt `attempt`
    /// (0-based): `backoff · 2^attempt`, capped at
    /// [`RECONNECT_BACKOFF_CAP`].
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let exp = self
            .backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        exp.min(RECONNECT_BACKOFF_CAP)
    }
}

/// A bidirectional, connection-oriented frame transport.
///
/// Implementations are `Send` so one endpoint can be driven from a
/// dedicated thread; [`Transport::try_clone`] produces an independent
/// handle to the *same* connection so reads and writes can run on
/// separate threads (the standard reader-thread / writer-thread split).
/// Receive buffers are per-handle: exactly one handle should receive.
pub trait Transport: Send {
    /// A process-unique identifier for the underlying connection, stable
    /// across [`Transport::try_clone`] — so telemetry can attribute
    /// frame traffic per connection even under a reader/writer split.
    fn conn_id(&self) -> u64;

    /// Send one frame (`body` must be at most [`MAX_FRAME_BYTES`]).
    /// Blocks until the frame is fully written.
    fn send_frame(&mut self, body: &[u8]) -> Result<(), NetError>;

    /// Receive one frame body into `out` (cleared first). Returns
    /// [`NetError::Timeout`] if the receive deadline elapses — partial
    /// progress is preserved and the call may simply be retried — and
    /// [`NetError::Closed`] on clean EOF at a frame boundary.
    fn recv_frame(&mut self, out: &mut Vec<u8>) -> Result<(), NetError>;

    /// Replace the receive deadline (`None` blocks forever).
    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError>;

    /// An independent handle to the same connection, for splitting
    /// send and receive across threads.
    fn try_clone(&self) -> Result<Box<dyn Transport>, NetError>;

    /// Human-readable peer description for error messages.
    fn peer(&self) -> String;

    // --- readiness-polling extension ------------------------------------
    //
    // The methods below let one thread multiplex many connections: none
    // of them ever parks the caller. A transport that supports them is
    // driven by an event loop as a pair of state machines — a read side
    // (`poll_recv_frame`) accumulating bytes until a frame completes,
    // and a write side (`poll_send_frame`/`poll_flush`) draining a
    // bounded internal queue as the peer accepts bytes.

    /// Switch the connection into (or out of) non-blocking mode. In
    /// non-blocking mode only the `poll_*` methods below may be used;
    /// the blocking [`Transport::send_frame`]/[`Transport::recv_frame`]
    /// calls would spuriously fail with [`NetError::Timeout`].
    ///
    /// The default is a no-op: queue-backed transports (loopback) never
    /// block on the poll path anyway.
    fn set_nonblocking(&mut self, nonblocking: bool) -> Result<(), NetError> {
        let _ = nonblocking;
        Ok(())
    }

    /// Non-blocking receive: if a complete frame is available it is
    /// copied into `out` (cleared first) and `Ok(true)` returned;
    /// `Ok(false)` means no complete frame yet — partial progress is
    /// buffered internally, exactly like a [`NetError::Timeout`] from
    /// [`Transport::recv_frame`]. Clean EOF at a frame boundary is
    /// [`NetError::Closed`].
    fn poll_recv_frame(&mut self, out: &mut Vec<u8>) -> Result<bool, NetError> {
        let _ = out;
        Err(NetError::Io(
            "transport does not support non-blocking receive".into(),
        ))
    }

    /// Non-blocking send: queue `body` as one frame and opportunistically
    /// push queued bytes to the peer. Never blocks; bytes the peer cannot
    /// yet accept stay in the internal write buffer (visible through
    /// [`Transport::pending_out_bytes`] for backpressure decisions) until
    /// a later [`Transport::poll_flush`] drains them.
    ///
    /// The default delegates to the blocking [`Transport::send_frame`],
    /// which is correct for transports whose sends never block.
    fn poll_send_frame(&mut self, body: &[u8]) -> Result<(), NetError> {
        self.send_frame(body)
    }

    /// Drive previously queued output toward the peer without blocking.
    /// `Ok(true)` when the write buffer is fully drained.
    fn poll_flush(&mut self) -> Result<bool, NetError> {
        Ok(true)
    }

    /// Bytes accepted by [`Transport::poll_send_frame`] but not yet on
    /// the wire. Event loops use this as the per-connection backpressure
    /// signal.
    fn pending_out_bytes(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------------

/// A TCP connection carrying length-prefixed frames.
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
    timeout: Option<Duration>,
    conn: u64,
    /// Bytes read off the socket but not yet returned as a frame.
    /// Survives timeouts so polling cannot desync the frame stream.
    rbuf: Vec<u8>,
    /// Bytes queued by `poll_send_frame` but not yet written; `wpos` is
    /// the drained prefix (compacted once the buffer empties, so the
    /// frame stream never re-sends).
    wbuf: Vec<u8>,
    wpos: usize,
}

impl TcpTransport {
    /// Connect to `addr` with bounded retry and exponential backoff.
    pub fn connect<A: ToSocketAddrs + std::fmt::Display>(
        addr: A,
        cfg: &NetConfig,
    ) -> Result<Self, NetError> {
        let addr_s = addr.to_string();
        let sock_addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| NetError::Connect {
                addr: addr_s.clone(),
                attempts: 0,
                last: e.to_string(),
            })?
            .collect();
        let mut last = "no socket addresses resolved".to_string();
        let mut backoff = cfg.backoff_base;
        for attempt in 0..cfg.connect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(2));
            }
            for sa in &sock_addrs {
                match TcpStream::connect_timeout(sa, cfg.connect_timeout) {
                    Ok(stream) => return Self::from_stream(stream, cfg),
                    Err(e) => last = e.to_string(),
                }
            }
        }
        Err(NetError::Connect {
            addr: addr_s,
            attempts: cfg.connect_attempts.max(1),
            last,
        })
    }

    /// Wrap an accepted or connected stream, applying `cfg`'s socket
    /// options and default receive deadline.
    pub fn from_stream(stream: TcpStream, cfg: &NetConfig) -> Result<Self, NetError> {
        stream.set_nodelay(cfg.nodelay)?;
        stream.set_read_timeout(cfg.io_timeout)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        Ok(Self {
            stream,
            peer,
            timeout: cfg.io_timeout,
            conn: next_conn_id(),
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
        })
    }

    /// If `rbuf` holds a complete frame, pop it into `out`.
    fn take_buffered_frame(&mut self, out: &mut Vec<u8>) -> Result<bool, NetError> {
        if self.rbuf.len() < FRAME_PREFIX_BYTES {
            return Ok(false);
        }
        let len = u32::from_le_bytes(self.rbuf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::Decode(format!(
                "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
            )));
        }
        if self.rbuf.len() < FRAME_PREFIX_BYTES + len {
            return Ok(false);
        }
        out.clear();
        out.extend_from_slice(&self.rbuf[FRAME_PREFIX_BYTES..FRAME_PREFIX_BYTES + len]);
        self.rbuf.drain(..FRAME_PREFIX_BYTES + len);
        Ok(true)
    }
}

impl Transport for TcpTransport {
    fn send_frame(&mut self, body: &[u8]) -> Result<(), NetError> {
        if body.len() > MAX_FRAME_BYTES {
            return Err(NetError::Io(format!(
                "refusing to send {}-byte frame over the {MAX_FRAME_BYTES}-byte limit",
                body.len()
            )));
        }
        self.stream.write_all(&(body.len() as u32).to_le_bytes())?;
        self.stream.write_all(body)?;
        Ok(())
    }

    fn recv_frame(&mut self, out: &mut Vec<u8>) -> Result<(), NetError> {
        let deadline = self.timeout.map(|t| Instant::now() + t);
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if self.take_buffered_frame(out)? {
                return Ok(());
            }
            if let Some(d) = deadline {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(NetError::Timeout);
                }
                // set_read_timeout(Some(ZERO)) is an error on all
                // platforms; remaining is non-zero here.
                self.stream.set_read_timeout(Some(remaining))?;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.rbuf.is_empty() {
                        Err(NetError::Closed)
                    } else {
                        Err(NetError::Io(format!(
                            "peer {} closed mid-frame with {} bytes pending",
                            self.peer,
                            self.rbuf.len()
                        )))
                    };
                }
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.timeout = timeout;
        // Install it eagerly too, so a blocking recv with no deadline
        // clears any short timeout left by a previous call.
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn try_clone(&self) -> Result<Box<dyn Transport>, NetError> {
        // Like the receive buffer, the poll write queue is per-handle:
        // exactly one handle should poll-send on a connection.
        Ok(Box::new(Self {
            stream: self.stream.try_clone()?,
            peer: self.peer.clone(),
            timeout: self.timeout,
            conn: self.conn,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
        }))
    }

    fn conn_id(&self) -> u64 {
        self.conn
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn set_nonblocking(&mut self, nonblocking: bool) -> Result<(), NetError> {
        self.stream.set_nonblocking(nonblocking)?;
        Ok(())
    }

    fn poll_recv_frame(&mut self, out: &mut Vec<u8>) -> Result<bool, NetError> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if self.take_buffered_frame(out)? {
                return Ok(true);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.rbuf.is_empty() {
                        Err(NetError::Closed)
                    } else {
                        Err(NetError::Io(format!(
                            "peer {} closed mid-frame with {} bytes pending",
                            self.peer,
                            self.rbuf.len()
                        )))
                    };
                }
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn poll_send_frame(&mut self, body: &[u8]) -> Result<(), NetError> {
        if body.len() > MAX_FRAME_BYTES {
            return Err(NetError::Io(format!(
                "refusing to send {}-byte frame over the {MAX_FRAME_BYTES}-byte limit",
                body.len()
            )));
        }
        self.wbuf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(body);
        self.poll_flush().map(|_| ())
    }

    fn poll_flush(&mut self) -> Result<bool, NetError> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(NetError::Io(format!(
                        "peer {} accepted zero bytes on write",
                        self.peer
                    )))
                }
                Ok(n) => self.wpos += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }

    fn pending_out_bytes(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// A listener producing [`TcpTransport`] connections.
pub struct TcpAcceptor {
    listener: TcpListener,
    cfg: NetConfig,
}

impl TcpAcceptor {
    /// Bind `addr` (use port 0 for an OS-assigned port) and return the
    /// acceptor plus the actual bound address.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: NetConfig) -> Result<(Self, SocketAddr), NetError> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking so `accept` can poll against a caller deadline
        // instead of parking forever when a peer never arrives.
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok((Self { listener, cfg }, local))
    }

    /// Accept one connection, polling until `timeout` elapses.
    pub fn accept(&self, timeout: Duration) -> Result<TcpTransport, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // The accepted stream inherits nonblocking from the
                    // listener on some platforms; force blocking mode.
                    stream.set_nonblocking(false)?;
                    return TcpTransport::from_stream(stream, &self.cfg);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// in-memory loopback backend
// ---------------------------------------------------------------------------

/// One direction of a loopback connection: a condvar-guarded frame queue.
///
/// Built by hand (rather than on channels) because the transport needs
/// `recv_timeout` and multi-handle close semantics, and keeping it local
/// means the loopback path exercises the exact framing contract TCP does.
struct FrameQueue {
    inner: Mutex<FrameQueueInner>,
    ready: Condvar,
}

struct FrameQueueInner {
    frames: VecDeque<Vec<u8>>,
    /// True once every sender handle for this direction has dropped.
    closed: bool,
}

impl FrameQueue {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(FrameQueueInner {
                frames: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    fn push(&self, frame: Vec<u8>) -> Result<(), NetError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            // The receiving endpoint dropped: mirror a TCP write against
            // a closed socket.
            return Err(NetError::Closed);
        }
        inner.frames.push_back(frame);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self, timeout: Option<Duration>) -> Result<Vec<u8>, NetError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(f) = inner.frames.pop_front() {
                return Ok(f);
            }
            if inner.closed {
                return Err(NetError::Closed);
            }
            match deadline {
                None => inner = self.ready.wait(inner).unwrap(),
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(NetError::Timeout);
                    }
                    let (guard, _) = self.ready.wait_timeout(inner, remaining).unwrap();
                    inner = guard;
                }
            }
        }
    }

    /// Non-blocking pop: `Ok(Some)` if a frame was waiting, `Ok(None)`
    /// if the queue is empty but open, `Err(Closed)` once drained *and*
    /// closed.
    fn try_pop(&self) -> Result<Option<Vec<u8>>, NetError> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(f) = inner.frames.pop_front() {
            return Ok(Some(f));
        }
        if inner.closed {
            return Err(NetError::Closed);
        }
        Ok(None)
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// Closes a queue when the last handle of the owning endpoint drops, so
/// clone-split endpoints only signal EOF once *all* their handles are
/// gone (matching `TcpStream::try_clone` semantics).
struct CloseOnDrop {
    /// The queue this endpoint *sends* on — closing it is what the peer
    /// observes as EOF.
    send: Arc<FrameQueue>,
    /// The queue this endpoint receives on; closing it too unblocks any
    /// send the peer attempts afterwards.
    recv: Arc<FrameQueue>,
}

impl Drop for CloseOnDrop {
    fn drop(&mut self) {
        self.send.close();
        self.recv.close();
    }
}

/// One endpoint of an in-memory loopback connection.
pub struct LoopbackTransport {
    send: Arc<FrameQueue>,
    recv: Arc<FrameQueue>,
    timeout: Option<Duration>,
    conn: u64,
    _close: Arc<CloseOnDrop>,
    peer: &'static str,
}

/// Create a connected pair of loopback endpoints. Frames sent on one
/// side arrive on the other in order; dropping all handles of one side
/// surfaces as [`NetError::Closed`] on the other.
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let a_to_b = FrameQueue::new();
    let b_to_a = FrameQueue::new();
    let a = LoopbackTransport {
        send: Arc::clone(&a_to_b),
        recv: Arc::clone(&b_to_a),
        timeout: None,
        conn: next_conn_id(),
        _close: Arc::new(CloseOnDrop {
            send: Arc::clone(&a_to_b),
            recv: Arc::clone(&b_to_a),
        }),
        peer: "loopback:b",
    };
    let b = LoopbackTransport {
        send: Arc::clone(&b_to_a),
        recv: Arc::clone(&a_to_b),
        timeout: None,
        conn: next_conn_id(),
        _close: Arc::new(CloseOnDrop {
            send: b_to_a,
            recv: a_to_b,
        }),
        peer: "loopback:a",
    };
    (a, b)
}

impl Transport for LoopbackTransport {
    fn send_frame(&mut self, body: &[u8]) -> Result<(), NetError> {
        if body.len() > MAX_FRAME_BYTES {
            return Err(NetError::Io(format!(
                "refusing to send {}-byte frame over the {MAX_FRAME_BYTES}-byte limit",
                body.len()
            )));
        }
        self.send.push(body.to_vec())
    }

    fn recv_frame(&mut self, out: &mut Vec<u8>) -> Result<(), NetError> {
        let frame = self.recv.pop(self.timeout)?;
        out.clear();
        out.extend_from_slice(&frame);
        Ok(())
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.timeout = timeout;
        Ok(())
    }

    fn try_clone(&self) -> Result<Box<dyn Transport>, NetError> {
        Ok(Box::new(Self {
            send: Arc::clone(&self.send),
            recv: Arc::clone(&self.recv),
            timeout: self.timeout,
            conn: self.conn,
            _close: Arc::clone(&self._close),
            peer: self.peer,
        }))
    }

    fn conn_id(&self) -> u64 {
        self.conn
    }

    fn peer(&self) -> String {
        self.peer.to_string()
    }

    // Queue pushes never block, so the default `poll_send_frame`
    // (delegating to `send_frame`) and `poll_flush` (always drained) are
    // already correct; only the receive side needs a true poll.
    fn poll_recv_frame(&mut self, out: &mut Vec<u8>) -> Result<bool, NetError> {
        match self.recv.try_pop()? {
            Some(frame) => {
                out.clear();
                out.extend_from_slice(&frame);
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_millis(500),
            connect_attempts: 3,
            backoff_base: Duration::from_millis(5),
            io_timeout: Some(Duration::from_millis(500)),
            nodelay: true,
        }
    }

    #[test]
    fn reconnect_backoff_doubles_and_caps() {
        let rc = ReconnectConfig {
            retries: 8,
            backoff: Duration::from_millis(50),
        };
        assert_eq!(rc.backoff_for(0), Duration::from_millis(50));
        assert_eq!(rc.backoff_for(1), Duration::from_millis(100));
        assert_eq!(rc.backoff_for(3), Duration::from_millis(400));
        assert_eq!(rc.backoff_for(6), RECONNECT_BACKOFF_CAP);
        // Shift overflow saturates instead of wrapping.
        assert_eq!(rc.backoff_for(40), RECONNECT_BACKOFF_CAP);
    }

    #[test]
    fn conn_ids_are_distinct_per_endpoint_and_stable_across_clone() {
        let (a, b) = loopback_pair();
        assert_ne!(a.conn_id(), b.conn_id());
        assert_eq!(a.conn_id(), a.try_clone().unwrap().conn_id());

        let cfg = fast_cfg();
        let (acceptor, addr) = TcpAcceptor::bind("127.0.0.1:0", cfg.clone()).unwrap();
        let handle = std::thread::spawn(move || acceptor.accept(Duration::from_secs(5)).unwrap());
        let client = TcpTransport::connect(addr, &cfg).unwrap();
        let server = handle.join().unwrap();
        assert_ne!(client.conn_id(), server.conn_id());
        assert_eq!(client.conn_id(), client.try_clone().unwrap().conn_id());
    }

    #[test]
    fn loopback_frames_round_trip_in_order() {
        let (mut a, mut b) = loopback_pair();
        a.send_frame(b"first").unwrap();
        a.send_frame(b"").unwrap();
        a.send_frame(b"third").unwrap();
        let mut buf = Vec::new();
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"first");
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"");
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"third");
    }

    #[test]
    fn loopback_timeout_and_close() {
        let (a, mut b) = loopback_pair();
        b.set_recv_timeout(Some(Duration::from_millis(10))).unwrap();
        let mut buf = Vec::new();
        assert_eq!(b.recv_frame(&mut buf), Err(NetError::Timeout));
        drop(a);
        assert_eq!(b.recv_frame(&mut buf), Err(NetError::Closed));
    }

    #[test]
    fn loopback_clone_keeps_connection_open_until_all_handles_drop() {
        let (a, mut b) = loopback_pair();
        let mut a2 = a.try_clone().unwrap();
        drop(a);
        a2.send_frame(b"still alive").unwrap();
        let mut buf = Vec::new();
        b.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"still alive");
        drop(a2);
        assert_eq!(b.recv_frame(&mut buf), Err(NetError::Closed));
    }

    #[test]
    fn tcp_round_trip_and_clean_eof() {
        let cfg = fast_cfg();
        let (acceptor, addr) = TcpAcceptor::bind("127.0.0.1:0", cfg.clone()).unwrap();
        let handle = std::thread::spawn(move || {
            let mut server = acceptor.accept(Duration::from_secs(5)).unwrap();
            let mut buf = Vec::new();
            server.recv_frame(&mut buf).unwrap();
            server.send_frame(&buf).unwrap();
            // Drop closes the socket: the client sees clean EOF.
        });
        let mut client = TcpTransport::connect(addr, &cfg).unwrap();
        client.send_frame(b"ping").unwrap();
        let mut buf = Vec::new();
        client.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"ping");
        handle.join().unwrap();
        assert_eq!(client.recv_frame(&mut buf), Err(NetError::Closed));
    }

    #[test]
    fn tcp_recv_timeout_preserves_partial_frame_state() {
        let cfg = fast_cfg();
        let (acceptor, addr) = TcpAcceptor::bind("127.0.0.1:0", cfg.clone()).unwrap();
        let handle = std::thread::spawn(move || {
            let server = acceptor.accept(Duration::from_secs(5)).unwrap();
            // Write the prefix + half the body, pause past the client's
            // receive deadline, then finish the frame.
            let mut raw = server.stream.try_clone().unwrap();
            let body = b"split-frame-body";
            raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
            raw.write_all(&body[..7]).unwrap();
            raw.flush().unwrap();
            std::thread::sleep(Duration::from_millis(120));
            raw.write_all(&body[7..]).unwrap();
            raw.flush().unwrap();
            server
        });
        let mut client = TcpTransport::connect(addr, &cfg).unwrap();
        client
            .set_recv_timeout(Some(Duration::from_millis(40)))
            .unwrap();
        let mut buf = Vec::new();
        // First call times out mid-frame; the retry must still decode the
        // frame correctly from preserved state.
        assert_eq!(client.recv_frame(&mut buf), Err(NetError::Timeout));
        client
            .set_recv_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"split-frame-body");
        drop(handle.join().unwrap());
    }

    #[test]
    fn loopback_poll_recv_returns_false_when_empty_then_the_frame() {
        let (mut a, mut b) = loopback_pair();
        let mut buf = Vec::new();
        assert!(!b.poll_recv_frame(&mut buf).unwrap());
        a.poll_send_frame(b"polled").unwrap();
        assert_eq!(a.pending_out_bytes(), 0, "loopback sends never queue");
        assert!(b.poll_recv_frame(&mut buf).unwrap());
        assert_eq!(buf, b"polled");
        assert!(!b.poll_recv_frame(&mut buf).unwrap());
        drop(a);
        assert_eq!(b.poll_recv_frame(&mut buf), Err(NetError::Closed));
    }

    #[test]
    fn tcp_poll_round_trip_without_blocking() {
        let cfg = fast_cfg();
        let (acceptor, addr) = TcpAcceptor::bind("127.0.0.1:0", cfg.clone()).unwrap();
        let handle = std::thread::spawn(move || acceptor.accept(Duration::from_secs(5)).unwrap());
        let mut client = TcpTransport::connect(addr, &cfg).unwrap();
        let mut server = handle.join().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut buf = Vec::new();
        assert!(
            !server.poll_recv_frame(&mut buf).unwrap(),
            "nothing sent yet"
        );
        client.send_frame(b"ping").unwrap();
        // Poll until the kernel delivers the bytes (bounded spin).
        let deadline = Instant::now() + Duration::from_secs(5);
        while !server.poll_recv_frame(&mut buf).unwrap() {
            assert!(Instant::now() < deadline, "frame never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(buf, b"ping");

        server.poll_send_frame(b"pong").unwrap();
        while !server.poll_flush().unwrap() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(server.pending_out_bytes(), 0);
        client.recv_frame(&mut buf).unwrap();
        assert_eq!(buf, b"pong");
    }

    #[test]
    fn tcp_poll_send_buffers_under_backpressure_without_losing_bytes() {
        // A peer that never reads: the kernel socket buffer fills and
        // poll_send_frame must queue (not block, not error) until the
        // peer drains. Frames must arrive intact and in order.
        let cfg = fast_cfg();
        let (acceptor, addr) = TcpAcceptor::bind("127.0.0.1:0", cfg.clone()).unwrap();
        let handle = std::thread::spawn(move || acceptor.accept(Duration::from_secs(5)).unwrap());
        let mut client = TcpTransport::connect(addr, &cfg).unwrap();
        let mut server = handle.join().unwrap();
        server.set_nonblocking(true).unwrap();

        // Big enough to overwhelm loopback socket buffers.
        let frame = vec![0xabu8; 256 * 1024];
        let frames = 16;
        for _ in 0..frames {
            server.poll_send_frame(&frame).unwrap();
        }
        assert!(
            server.pending_out_bytes() > 0,
            "expected some bytes to queue under backpressure"
        );

        let reader = std::thread::spawn(move || {
            let mut buf = Vec::new();
            for _ in 0..frames {
                client.recv_frame(&mut buf).unwrap();
                assert_eq!(buf.len(), 256 * 1024);
                assert!(buf.iter().all(|&b| b == 0xab));
            }
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while !server.poll_flush().unwrap() {
            assert!(Instant::now() < deadline, "flush never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(server.pending_out_bytes(), 0);
        reader.join().unwrap();
    }

    #[test]
    fn tcp_poll_recv_sees_clean_eof_as_closed() {
        let cfg = fast_cfg();
        let (acceptor, addr) = TcpAcceptor::bind("127.0.0.1:0", cfg.clone()).unwrap();
        let handle = std::thread::spawn(move || acceptor.accept(Duration::from_secs(5)).unwrap());
        let client = TcpTransport::connect(addr, &cfg).unwrap();
        let mut server = handle.join().unwrap();
        server.set_nonblocking(true).unwrap();
        drop(client);
        let mut buf = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match server.poll_recv_frame(&mut buf) {
                Ok(false) => {
                    assert!(Instant::now() < deadline, "EOF never surfaced");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(NetError::Closed) => break,
                other => panic!("expected Closed, got {other:?}"),
            }
        }
    }

    #[test]
    fn tcp_connect_to_dead_port_reports_attempts() {
        // Bind then immediately drop to get a port nothing listens on.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = NetConfig {
            connect_timeout: Duration::from_millis(200),
            connect_attempts: 2,
            backoff_base: Duration::from_millis(1),
            ..fast_cfg()
        };
        match TcpTransport::connect(format!("127.0.0.1:{port}"), &cfg) {
            Err(NetError::Connect { attempts, .. }) => assert_eq!(attempts, 2),
            Err(other) => panic!("expected Connect error, got {other:?}"),
            Ok(_) => panic!("expected Connect error, got a connection"),
        }
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocating() {
        let cfg = fast_cfg();
        let (acceptor, addr) = TcpAcceptor::bind("127.0.0.1:0", cfg.clone()).unwrap();
        let handle = std::thread::spawn(move || {
            let server = acceptor.accept(Duration::from_secs(5)).unwrap();
            let mut raw = server.stream.try_clone().unwrap();
            raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
            raw.flush().unwrap();
            server
        });
        let mut client = TcpTransport::connect(addr, &cfg).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            client.recv_frame(&mut buf),
            Err(NetError::Decode(_))
        ));
        drop(handle.join().unwrap());
    }
}
