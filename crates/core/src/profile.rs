//! Real-execution profiling: wall-clock op intervals recorded inside the
//! worker loop — the in-process counterpart of the paper's MXNet-profiler
//! methodology (Fig. 5), applied to *this* implementation rather than the
//! timing simulator.
//!
//! Enable with [`crate::TrainConfig::with_profiling`]; events land in
//! [`crate::TrainingHistory::profile`].

use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// The op categories the worker loop distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum OpKind {
    /// Forward pass of one batch.
    Forward,
    /// Backward pass of one batch.
    Backward,
    /// Gradient compression (encode) of all keys.
    Compress,
    /// Local weight update (delayed algorithms).
    LocalUpdate,
    /// Time spent blocked waiting on pulls from the server.
    PullWait,
}

impl OpKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Forward => "FP",
            OpKind::Backward => "BP",
            OpKind::Compress => "quant",
            OpKind::LocalUpdate => "local_update",
            OpKind::PullWait => "pull_wait",
        }
    }
}

/// One recorded interval.
#[derive(Clone, Debug, Serialize)]
pub struct OpEvent {
    /// Worker id.
    pub worker: usize,
    /// Op category.
    pub op: OpKind,
    /// Training round the op belongs to.
    pub round: u64,
    /// Seconds since training start.
    pub start_s: f64,
    /// Seconds since training start.
    pub end_s: f64,
}

impl OpEvent {
    /// Interval length in seconds.
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Thread-safe event sink shared by all workers.
#[derive(Clone)]
pub struct Profiler {
    t0: Instant,
    events: Arc<Mutex<Vec<OpEvent>>>,
}

impl Profiler {
    /// Start the clock.
    pub fn new() -> Self {
        Self {
            t0: Instant::now(),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Current time on the profiler clock.
    pub fn now(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Record an interval.
    pub fn record(&self, worker: usize, op: OpKind, round: u64, start_s: f64) {
        let end_s = self.now();
        self.events.lock().push(OpEvent {
            worker,
            op,
            round,
            start_s,
            end_s,
        });
    }

    /// Drain all events (sorted by start time).
    pub fn take(&self) -> Vec<OpEvent> {
        let mut ev = std::mem::take(&mut *self.events.lock());
        ev.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        ev
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary statistics over a profile.
#[derive(Clone, Debug, Serialize)]
pub struct ProfileSummary {
    /// Total seconds per op kind, summed across workers.
    pub totals: Vec<(String, f64)>,
    /// Fraction of total worker-time spent blocked on pulls.
    pub pull_wait_fraction: f64,
}

/// Summarize a profile: per-op totals and the blocked fraction.
pub fn summarize(events: &[OpEvent]) -> ProfileSummary {
    use OpKind::*;
    let mut totals = vec![
        (Forward, 0.0f64),
        (Backward, 0.0),
        (Compress, 0.0),
        (LocalUpdate, 0.0),
        (PullWait, 0.0),
    ];
    for e in events {
        for t in totals.iter_mut() {
            if t.0 == e.op {
                t.1 += e.duration();
            }
        }
    }
    let all: f64 = totals.iter().map(|t| t.1).sum();
    let wait = totals.iter().find(|t| t.0 == PullWait).map_or(0.0, |t| t.1);
    ProfileSummary {
        totals: totals
            .into_iter()
            .map(|(k, v)| (k.name().to_string(), v))
            .collect(),
        pull_wait_fraction: if all > 0.0 { wait / all } else { 0.0 },
    }
}

/// Export events as Chrome `trace_event` JSON (one tid per worker).
pub fn to_chrome_json(events: &[OpEvent], process_name: &str) -> String {
    let mut out: Vec<serde_json::Value> = vec![serde_json::json!({
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name}
    })];
    for e in events {
        out.push(serde_json::json!({
            "name": format!("{}#{}", e.op.name(), e.round),
            "cat": e.op.name(),
            "ph": "X",
            "ts": e.start_s * 1e6,
            "dur": e.duration() * 1e6,
            "pid": 0,
            "tid": e.worker as u32,
        }));
    }
    serde_json::to_string_pretty(&out).expect("serialize profile")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts() {
        let p = Profiler::new();
        let s1 = p.now();
        p.record(0, OpKind::Forward, 0, s1);
        let s2 = p.now();
        p.record(1, OpKind::PullWait, 0, s2);
        let ev = p.take();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].start_s <= ev[1].start_s);
        assert!(ev.iter().all(|e| e.duration() >= 0.0));
        // Drained.
        assert!(p.take().is_empty());
    }

    #[test]
    fn summary_fractions() {
        let events = vec![
            OpEvent {
                worker: 0,
                op: OpKind::Forward,
                round: 0,
                start_s: 0.0,
                end_s: 1.0,
            },
            OpEvent {
                worker: 0,
                op: OpKind::PullWait,
                round: 0,
                start_s: 1.0,
                end_s: 2.0,
            },
            OpEvent {
                worker: 1,
                op: OpKind::Backward,
                round: 0,
                start_s: 0.0,
                end_s: 2.0,
            },
        ];
        let s = summarize(&events);
        assert!((s.pull_wait_fraction - 0.25).abs() < 1e-9);
        let fwd = s.totals.iter().find(|t| t.0 == "FP").unwrap().1;
        assert_eq!(fwd, 1.0);
    }

    #[test]
    fn chrome_json_parses() {
        let events = vec![OpEvent {
            worker: 2,
            op: OpKind::Compress,
            round: 5,
            start_s: 0.5,
            end_s: 0.6,
        }];
        let json = to_chrome_json(&events, "test");
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
    }
}
