//! Real-execution profiling: wall-clock op intervals recorded inside the
//! worker loop — the in-process counterpart of the paper's MXNet-profiler
//! methodology (Fig. 5), applied to *this* implementation rather than the
//! timing simulator.
//!
//! Enable with [`crate::TrainConfig::with_profiling`]; events land in
//! [`crate::TrainingHistory::profile`] and, when a telemetry sink is
//! attached ([`crate::TrainConfig::with_telemetry`]), stream out as
//! [`cdsgd_telemetry::Event::OpSpan`]s.
//!
//! Recording is contention-free: each worker records into its own
//! [`WorkerProfile`] buffer (no lock, no atomic) and the buffer is merged
//! into the shared store once per epoch, at the epoch barrier — so the
//! profiler never serializes workers against each other on the training
//! hot path. [`Profiler::merge_count`] exposes the number of merges so
//! tests can assert the once-per-epoch bound.

use cdsgd_telemetry::{Event, Telemetry};
use parking_lot::Mutex;
use serde::Serialize;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The op categories the worker loop distinguishes — the paper's Fig. 5
/// legend. Re-exported from the telemetry event model so a profiled
/// interval and its streamed [`Event::OpSpan`] agree by construction.
pub use cdsgd_telemetry::Op as OpKind;

/// One recorded interval.
#[derive(Clone, Debug, Serialize)]
pub struct OpEvent {
    /// Worker id.
    pub worker: usize,
    /// Op category.
    pub op: OpKind,
    /// Training round the op belongs to.
    pub round: u64,
    /// Seconds since training start.
    pub start_s: f64,
    /// Seconds since training start.
    pub end_s: f64,
}

impl OpEvent {
    /// Interval length in seconds.
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }
}

struct ProfilerShared {
    t0: Instant,
    events: Mutex<Vec<OpEvent>>,
    /// Number of per-worker buffer merges into `events` — bounded by
    /// workers × (epochs + 1), never by iterations.
    merges: AtomicU64,
    telemetry: Telemetry,
}

/// The shared profile store. Workers never record through this directly;
/// they record into a per-worker [`WorkerProfile`] (see
/// [`Profiler::worker`]) whose buffer merges here once per epoch.
#[derive(Clone)]
pub struct Profiler {
    inner: Arc<ProfilerShared>,
}

impl Profiler {
    /// Start the clock.
    pub fn new() -> Self {
        Self::with_telemetry(Telemetry::disabled())
    }

    /// Start the clock, streaming every merged interval to `telemetry`
    /// as an [`Event::OpSpan`] (in addition to storing it for
    /// [`Profiler::take`]).
    pub fn with_telemetry(telemetry: Telemetry) -> Self {
        Self {
            inner: Arc::new(ProfilerShared {
                t0: Instant::now(),
                events: Mutex::new(Vec::new()),
                merges: AtomicU64::new(0),
                telemetry,
            }),
        }
    }

    /// Current time on the profiler clock.
    pub fn now(&self) -> f64 {
        self.inner.t0.elapsed().as_secs_f64()
    }

    /// A recording handle for one worker: an unsynchronized local buffer
    /// sharing this profiler's clock. Flushed explicitly at the epoch
    /// barrier (and on drop as a safety net).
    pub fn worker(&self, id: usize) -> WorkerProfile {
        WorkerProfile {
            parent: self.clone(),
            id,
            buf: RefCell::new(Vec::new()),
        }
    }

    /// How many per-worker buffer merges have reached the shared store.
    pub fn merge_count(&self) -> u64 {
        self.inner.merges.load(Ordering::Relaxed)
    }

    /// Drain all events (sorted by start time). Workers must have flushed
    /// (the trainer joins them first, and [`WorkerProfile`] flushes on
    /// drop).
    pub fn take(&self) -> Vec<OpEvent> {
        let mut ev = std::mem::take(&mut *self.inner.events.lock());
        ev.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        ev
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

/// One worker's recording handle: interval recording is a plain `Vec`
/// push with no synchronization; [`WorkerProfile::flush`] merges the
/// buffer into the parent [`Profiler`] under one lock acquisition.
pub struct WorkerProfile {
    parent: Profiler,
    id: usize,
    buf: RefCell<Vec<OpEvent>>,
}

impl WorkerProfile {
    /// Current time on the parent profiler's clock.
    pub fn now(&self) -> f64 {
        self.parent.now()
    }

    /// Record an interval that started at `start_s` and ends now.
    pub fn record(&self, op: OpKind, round: u64, start_s: f64) {
        let end_s = self.now();
        self.buf.borrow_mut().push(OpEvent {
            worker: self.id,
            op,
            round,
            start_s,
            end_s,
        });
    }

    /// Merge the local buffer into the shared store (one lock) and stream
    /// the intervals to the attached telemetry sink. No-op when empty.
    pub fn flush(&self) {
        let drained: Vec<OpEvent> = std::mem::take(&mut *self.buf.borrow_mut());
        if drained.is_empty() {
            return;
        }
        let shared = &self.parent.inner;
        for e in &drained {
            shared.telemetry.emit(|| Event::OpSpan {
                worker: e.worker,
                op: e.op,
                round: e.round,
                start_s: e.start_s,
                end_s: e.end_s,
            });
        }
        shared.events.lock().extend(drained);
        shared.merges.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for WorkerProfile {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Summary statistics over a profile.
#[derive(Clone, Debug, Serialize)]
pub struct ProfileSummary {
    /// Total seconds per op kind, summed across workers.
    pub totals: Vec<(String, f64)>,
    /// Fraction of total worker-time spent blocked on pulls.
    pub pull_wait_fraction: f64,
}

/// Summarize a profile: per-op totals and the blocked fraction.
pub fn summarize(events: &[OpEvent]) -> ProfileSummary {
    use OpKind::*;
    let mut totals = vec![
        (Forward, 0.0f64),
        (Backward, 0.0),
        (Compress, 0.0),
        (LocalUpdate, 0.0),
        (PullWait, 0.0),
    ];
    for e in events {
        for t in totals.iter_mut() {
            if t.0 == e.op {
                t.1 += e.duration();
            }
        }
    }
    let all: f64 = totals.iter().map(|t| t.1).sum();
    let wait = totals.iter().find(|t| t.0 == PullWait).map_or(0.0, |t| t.1);
    ProfileSummary {
        totals: totals
            .into_iter()
            .map(|(k, v)| (k.name().to_string(), v))
            .collect(),
        pull_wait_fraction: if all > 0.0 { wait / all } else { 0.0 },
    }
}

/// Export events as Chrome `trace_event` JSON (one tid per worker).
pub fn to_chrome_json(events: &[OpEvent], process_name: &str) -> String {
    let mut out: Vec<serde_json::Value> = vec![serde_json::json!({
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name}
    })];
    for e in events {
        out.push(serde_json::json!({
            "name": format!("{}#{}", e.op.name(), e.round),
            "cat": e.op.name(),
            "ph": "X",
            "ts": e.start_s * 1e6,
            "dur": e.duration() * 1e6,
            "pid": 0,
            "tid": e.worker as u32,
        }));
    }
    serde_json::to_string_pretty(&out).expect("serialize profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_telemetry::MemorySink;

    #[test]
    fn records_and_sorts() {
        let p = Profiler::new();
        let w0 = p.worker(0);
        let w1 = p.worker(1);
        let s1 = w0.now();
        w0.record(OpKind::Forward, 0, s1);
        let s2 = w1.now();
        w1.record(OpKind::PullWait, 0, s2);
        w0.flush();
        w1.flush();
        let ev = p.take();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].start_s <= ev[1].start_s);
        assert!(ev.iter().all(|e| e.duration() >= 0.0));
        // Drained.
        assert!(p.take().is_empty());
    }

    #[test]
    fn recording_takes_no_lock_until_flush() {
        // The contention contract: any number of recorded intervals cost
        // zero merges (no shared-lock traffic); each flush costs exactly
        // one.
        let p = Profiler::new();
        let w = p.worker(0);
        for round in 0..1000 {
            let t = w.now();
            w.record(OpKind::Forward, round, t);
        }
        assert_eq!(p.merge_count(), 0, "recording must not touch the lock");
        w.flush();
        assert_eq!(p.merge_count(), 1);
        assert_eq!(p.take().len(), 1000);
        // Empty flush (and the drop safety net) stays free.
        w.flush();
        drop(w);
        assert_eq!(p.merge_count(), 1);
    }

    #[test]
    fn drop_flushes_unmerged_events() {
        let p = Profiler::new();
        {
            let w = p.worker(3);
            let t = w.now();
            w.record(OpKind::Backward, 7, t);
        }
        let ev = p.take();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].worker, 3);
        assert_eq!(ev[0].round, 7);
    }

    #[test]
    fn flush_streams_op_spans_to_telemetry() {
        let mem = Arc::new(MemorySink::new());
        let p = Profiler::with_telemetry(Telemetry::new(mem.clone()));
        let w = p.worker(1);
        let t = w.now();
        w.record(OpKind::Compress, 4, t);
        assert!(mem.events().is_empty(), "spans stream at flush, not record");
        w.flush();
        let ev = mem.events();
        assert_eq!(ev.len(), 1);
        assert!(matches!(
            ev[0],
            Event::OpSpan {
                worker: 1,
                op: OpKind::Compress,
                round: 4,
                ..
            }
        ));
    }

    #[test]
    fn summary_fractions() {
        let events = vec![
            OpEvent {
                worker: 0,
                op: OpKind::Forward,
                round: 0,
                start_s: 0.0,
                end_s: 1.0,
            },
            OpEvent {
                worker: 0,
                op: OpKind::PullWait,
                round: 0,
                start_s: 1.0,
                end_s: 2.0,
            },
            OpEvent {
                worker: 1,
                op: OpKind::Backward,
                round: 0,
                start_s: 0.0,
                end_s: 2.0,
            },
        ];
        let s = summarize(&events);
        assert!((s.pull_wait_fraction - 0.25).abs() < 1e-9);
        let fwd = s.totals.iter().find(|t| t.0 == "FP").unwrap().1;
        assert_eq!(fwd, 1.0);
    }

    #[test]
    fn chrome_json_parses() {
        let events = vec![OpEvent {
            worker: 2,
            op: OpKind::Compress,
            round: 5,
            start_s: 0.5,
            end_s: 0.6,
        }];
        let json = to_chrome_json(&events, "test");
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
    }
}
