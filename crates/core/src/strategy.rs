//! The worker-side update-strategy layer: how one training iteration's
//! gradients become the next iteration's weights.
//!
//! Every [`crate::Algorithm`] variant resolves (once, before the first
//! batch) to one [`UpdateStrategy`] implementation; the worker loop in
//! `worker.rs` is then a pure FP/BP → strategy-step pipeline with no
//! per-algorithm branching. Each iteration drives the same three-phase
//! protocol:
//!
//! 1. [`UpdateStrategy::prepare_push`] — turn the raw gradients into the
//!    outbound payloads (delay compensation, compression, momentum,
//!    local-step accumulation — whatever the algorithm prescribes).
//! 2. [`UpdateStrategy::communicate`] — move bytes: push the staged
//!    payloads and perform whatever pull/reduce the algorithm's
//!    synchronization model requires (blocking pull, deferred async pull,
//!    ring all-reduce, or nothing).
//! 3. [`UpdateStrategy::adopt`] — install the resulting weights into the
//!    model (adopt the pulled globals, apply the local update of eq. 11,
//!    or apply the reduced gradient locally).
//!
//! The split is *bit-exact* with the pre-refactor monolithic loop:
//! `tests/strategy_equivalence.rs` pins the final-weight hashes captured
//! from the old code for every variant on two backends.

use crate::config::{Algorithm, Topology, TrainConfig};
use crate::profile::{OpKind, WorkerProfile};
use cdsgd_compress::{
    decompress_add, pack_2bit_into, BufferPool, CodecSpans, Compressed, GradientCompressor,
    OneBitQuantizer, TwoBitQuantizer,
};
use cdsgd_net::{decode_compressed, encode_compressed_into};
use cdsgd_nn::Sequential;
use cdsgd_ps::{Collective, NetError, ParamClient, PendingPull};
use std::sync::Arc;

/// Per-iteration context handed to every strategy phase: identity,
/// position in training, config, and the optional profiler.
pub(crate) struct StepCtx<'a> {
    /// Worker id.
    pub id: usize,
    /// Global round counter, *before* this iteration increments it.
    pub round: u64,
    /// The run configuration (lr schedule, algorithm parameters).
    pub cfg: &'a TrainConfig,
    /// Iterations per epoch (AR-SGD's worker-side lr schedule needs it).
    pub iters_per_epoch: usize,
    /// This worker's recording handle, present when op-interval
    /// profiling is enabled. Recording is a local buffer push — no lock.
    pub profiler: Option<&'a WorkerProfile>,
}

impl StepCtx<'_> {
    /// Start an op interval (`None` when profiling is off).
    fn now(&self) -> Option<f64> {
        self.profiler.map(|p| p.now())
    }

    /// Close an op interval opened by [`StepCtx::now`], attributing it to
    /// `round` (which some strategies report post-increment).
    fn record(&self, op: OpKind, round: u64, start: Option<f64>) {
        if let (Some(p), Some(t)) = (self.profiler, start) {
            p.record(op, round, t);
        }
    }
}

/// [`CodecSpans`] adapter over a worker's profiling handle: the codec's
/// own quant intervals land in the same per-worker buffer as the
/// loop-level ops, attributed to `round` — one span per key, timed at
/// the codec boundary instead of around the whole staging loop.
struct ProfiledCodec<'a> {
    profile: &'a WorkerProfile,
    round: u64,
}

impl CodecSpans for ProfiledCodec<'_> {
    fn now(&self) -> f64 {
        self.profile.now()
    }

    fn record(&self, op: OpKind, start_s: f64) {
        self.profile.record(op, self.round, start_s);
    }
}

/// One algorithm's worker-side step protocol. Implementations own all the
/// algorithm-specific state the old monolithic loop kept in locals
/// (pending pulls, residual compressors, momentum/accumulator buffers,
/// the adopted global snapshot).
pub(crate) trait UpdateStrategy: Send {
    /// Short name for logs and tests.
    #[cfg_attr(not(test), allow(dead_code))]
    fn name(&self) -> &'static str;

    /// Phase 1: stage this iteration's outbound payloads from the fresh
    /// gradients (and, for delay compensation, the model's local weights).
    fn prepare_push(
        &mut self,
        model: &mut Sequential,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError>;

    /// Phase 2: push the staged payloads and run the algorithm's
    /// synchronization (blocking pull, deferred pull, ring reduce).
    fn communicate(&mut self, ctx: &StepCtx) -> Result<(), NetError>;

    /// Phase 3: install the iteration's resulting weights into `model`.
    fn adopt(
        &mut self,
        model: &mut Sequential,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError>;

    /// The global-weight snapshot a worker should evaluate at epoch end,
    /// or `None` when the model itself holds the globals (ring mode).
    fn eval_base(&self) -> Option<&[Arc<[f32]>]>;

    /// Final global weights to report from worker 0 on the last epoch.
    /// `None` (the default) means the trainer snapshots the parameter
    /// server instead; server-less strategies export the model.
    fn final_weights(&self, _model: &mut Sequential) -> Option<Vec<Vec<f32>>> {
        None
    }

    /// Wait for any in-flight asynchronous replies *without* adopting
    /// them (they are cached for the next [`UpdateStrategy::adopt`]).
    /// Called at every epoch end before the worker reports, so the
    /// trainer's epoch-boundary byte counters are final — a reply still
    /// on the wire would otherwise race the sample and make the
    /// `push_bytes`/`pull_bytes` history columns non-deterministic.
    /// Values are unaffected: the reply holds the same version-`r+1`
    /// snapshot whenever the worker waits for it.
    fn settle(&mut self, _ctx: &StepCtx) -> Result<(), NetError> {
        Ok(())
    }

    /// Drain any outstanding asynchronous communication before the worker
    /// exits, so the server group is fully aggregated when it returns.
    fn finish(&mut self) -> Result<(), NetError> {
        Ok(())
    }

    /// Snapshot the strategy's private state for a worker checkpoint
    /// (DESIGN.md §14): error-feedback residuals, momentum velocities,
    /// local-step accumulators. Only valid at an epoch boundary, after
    /// [`UpdateStrategy::settle`]. The slot layout is private to each
    /// strategy; the default (stateless strategies) is empty.
    fn export_state(&self) -> Vec<Vec<f32>> {
        Vec::new()
    }

    /// Restore state captured by [`UpdateStrategy::export_state`].
    /// Called once, before the first batch of a resumed run.
    fn import_state(&mut self, state: &[Vec<f32>]) {
        let _ = state;
    }

    /// Re-establish the strategy's server attachment for a run resuming
    /// at aggregate round `round` (an epoch boundary): pull the globals
    /// at that version into `base`, reconstruct any deferred-pull
    /// bookkeeping, and — when `has_model` is false (no worker
    /// checkpoint) — seed `model` from the pulled globals. With a worker
    /// checkpoint the model keeps its restored (possibly locally-updated)
    /// weights, which is what bit-identical resume requires for the
    /// delayed and local-step strategies.
    fn resume(
        &mut self,
        model: &mut Sequential,
        round: u64,
        has_model: bool,
    ) -> Result<(), NetError> {
        let _ = (model, round, has_model);
        Ok(())
    }
}

/// Sparse residual entries (`(key, buffer)` pairs) → one dense vector
/// per key, the worker-checkpoint slot layout.
fn residuals_to_dense(entries: Vec<(usize, Vec<f32>)>, num_keys: usize) -> Vec<Vec<f32>> {
    let mut dense = vec![Vec::new(); num_keys];
    for (k, v) in entries {
        if k < num_keys {
            dense[k] = v;
        }
    }
    dense
}

/// Inverse of [`residuals_to_dense`]: empty slots mean "no buffer yet".
fn dense_to_residuals(dense: &[Vec<f32>]) -> Vec<(usize, Vec<f32>)> {
    dense
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(k, v)| (k, v.clone()))
        .collect()
}

/// The parameter-server attachment shared by every PS-based strategy:
/// the connection, the payload pool, the adopted global snapshot, and the
/// staged outbound payloads.
struct PsLink {
    client: Box<dyn ParamClient>,
    pool: BufferPool,
    num_keys: usize,
    /// Most recently adopted global weights (initially the shared init).
    /// `Arc` snapshots shared with the server and every same-version
    /// puller — adopting a pull is a pointer move.
    base: Vec<Arc<[f32]>>,
    /// Payloads staged by `prepare_push`, consumed by `push_staged`.
    staged: Vec<Compressed>,
}

impl PsLink {
    fn new(client: Box<dyn ParamClient>, init: Vec<Arc<[f32]>>) -> Self {
        let pool = client.pool().clone();
        Self {
            client,
            pool,
            num_keys: init.len(),
            base: init,
            staged: Vec::new(),
        }
    }

    /// Stage one raw payload per key. Storage is drawn from the shared
    /// pool, so steady-state rounds allocate nothing on the push path.
    fn stage_raw(&mut self, grads: &[Vec<f32>]) {
        self.staged.clear();
        self.staged.extend(grads.iter().map(|g| {
            let mut raw = self.pool.take_f32();
            raw.extend_from_slice(g);
            Compressed::Raw(raw)
        }));
    }

    /// Stage one compressed payload per key. With profiling on, the
    /// codec itself records one [`OpKind::Compress`] interval per key
    /// (via [`ProfiledCodec`]), so encode time is attributed at the
    /// codec boundary rather than around the staging loop.
    fn stage_compressed(
        &mut self,
        compressor: &mut dyn GradientCompressor,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) {
        self.staged.clear();
        if let Some(profile) = ctx.profiler {
            let spans = ProfiledCodec {
                profile,
                round: ctx.round,
            };
            self.staged.extend(
                grads
                    .iter()
                    .enumerate()
                    .map(|(key, g)| compressor.compress_into_traced(key, g, &self.pool, &spans)),
            );
        } else {
            self.staged.extend(
                grads
                    .iter()
                    .enumerate()
                    .map(|(key, g)| compressor.compress_into(key, g, &self.pool)),
            );
        }
    }

    /// Push the staged payloads, key by key.
    fn push_staged(&mut self, worker: usize) -> Result<(), NetError> {
        for (key, payload) in self.staged.drain(..).enumerate() {
            self.client.push(worker, key, payload)?;
        }
        Ok(())
    }

    /// Blocking pull of every key at `version` into `base`, recorded as
    /// one [`OpKind::PullWait`] interval attributed to `record_round`.
    fn pull_blocking(
        &mut self,
        version: u64,
        ctx: &StepCtx,
        record_round: u64,
    ) -> Result<(), NetError> {
        let t = ctx.now();
        self.base = self.client.pull_all(self.num_keys, version)?;
        ctx.record(OpKind::PullWait, record_round, t);
        Ok(())
    }

    /// Fire one async pull per key at `version`; the transfers overlap
    /// the next iteration's computation.
    fn fire_pulls(&self, version: u64) -> Result<Vec<PendingPull>, NetError> {
        (0..self.num_keys)
            .map(|k| self.client.pull_async(k, version))
            .collect()
    }

    /// Blocking pull of every key at `version` into `base`, outside the
    /// per-iteration profiling protocol (the resume path runs before the
    /// first batch, so there is no round to charge the wait to).
    fn pull_version(&mut self, version: u64) -> Result<(), NetError> {
        self.base = self.client.pull_all(self.num_keys, version)?;
        Ok(())
    }
}

/// S-SGD: raw gradients, blocking push/pull every iteration.
struct SSgdStrategy {
    link: PsLink,
}

impl UpdateStrategy for SSgdStrategy {
    fn name(&self) -> &'static str {
        "ssgd"
    }

    fn prepare_push(
        &mut self,
        _model: &mut Sequential,
        grads: &[Vec<f32>],
        _ctx: &StepCtx,
    ) -> Result<(), NetError> {
        self.link.stage_raw(grads);
        Ok(())
    }

    fn communicate(&mut self, ctx: &StepCtx) -> Result<(), NetError> {
        self.link.push_staged(ctx.id)?;
        self.link.pull_blocking(ctx.round + 1, ctx, ctx.round)
    }

    fn adopt(
        &mut self,
        model: &mut Sequential,
        _grads: &[Vec<f32>],
        _ctx: &StepCtx,
    ) -> Result<(), NetError> {
        model.import_params_from(&self.link.base);
        Ok(())
    }

    fn eval_base(&self) -> Option<&[Arc<[f32]>]> {
        Some(&self.link.base)
    }

    fn resume(
        &mut self,
        model: &mut Sequential,
        round: u64,
        _has_model: bool,
    ) -> Result<(), NetError> {
        // Blocking strategies hold model == base at every round boundary,
        // so re-pulling the globals reconstructs the whole state.
        self.link.pull_version(round)?;
        model.import_params_from(&self.link.base);
        Ok(())
    }
}

/// BIT-SGD: 2-bit quantized gradients, otherwise the blocking S-SGD
/// protocol.
struct BitSgdStrategy {
    link: PsLink,
    quantizer: TwoBitQuantizer,
}

impl UpdateStrategy for BitSgdStrategy {
    fn name(&self) -> &'static str {
        "bitsgd"
    }

    fn prepare_push(
        &mut self,
        _model: &mut Sequential,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError> {
        self.link.stage_compressed(&mut self.quantizer, grads, ctx);
        Ok(())
    }

    fn communicate(&mut self, ctx: &StepCtx) -> Result<(), NetError> {
        self.link.push_staged(ctx.id)?;
        self.link.pull_blocking(ctx.round + 1, ctx, ctx.round)
    }

    fn adopt(
        &mut self,
        model: &mut Sequential,
        _grads: &[Vec<f32>],
        _ctx: &StepCtx,
    ) -> Result<(), NetError> {
        model.import_params_from(&self.link.base);
        Ok(())
    }

    fn eval_base(&self) -> Option<&[Arc<[f32]>]> {
        Some(&self.link.base)
    }

    fn export_state(&self) -> Vec<Vec<f32>> {
        residuals_to_dense(self.quantizer.export_state(), self.link.num_keys)
    }

    fn import_state(&mut self, state: &[Vec<f32>]) {
        self.quantizer.import_state(&dense_to_residuals(state));
    }

    fn resume(
        &mut self,
        model: &mut Sequential,
        round: u64,
        _has_model: bool,
    ) -> Result<(), NetError> {
        self.link.pull_version(round)?;
        model.import_params_from(&self.link.base);
        Ok(())
    }
}

/// Does CD-SGD compress at round `r`? Warm-up rounds push raw; in the
/// formal phase, every k-th push (`count % k == 0`) is the raw k-step
/// correction, the rest are compressed (Algorithm 1).
fn cd_compresses(warmup: u64, k: u64, r: u64) -> bool {
    r >= warmup && !(r - warmup).is_multiple_of(k)
}

/// The delayed (local-update) engine shared by OD-SGD and CD-SGD:
/// warm-up of plain blocking S-SGD, then the formal phase where the pull
/// of round r's globals is deferred to round r+1 (overlapping this
/// round's computation) and the model runs one step ahead on local
/// weights `W^loc_{r+1} = W_r − lr_loc · grad_r` (eq. 11).
struct DelayedStrategy {
    link: PsLink,
    local_lr: f32,
    warmup: u64,
    /// `Some((k, codec))` enables CD-SGD's compression schedule; `None`
    /// (OD-SGD) always pushes raw.
    compressor: Option<(u64, Box<dyn GradientCompressor>)>,
    /// DC-ASGD delay-compensation strength λ (0 disables).
    dc_lambda: f32,
    /// Async pulls fired last round for this round's base.
    pending: Option<Vec<PendingPull>>,
    /// Replies already received by an epoch-end [`DelayedStrategy::settle`],
    /// held for the next round's adoption.
    settled: Option<Vec<Arc<[f32]>>>,
    // Scratch reused every round.
    dc_grads: Vec<Vec<f32>>,
    w_loc: Vec<Vec<f32>>,
}

impl DelayedStrategy {
    fn formal(&self, round: u64) -> bool {
        round >= self.warmup
    }
}

impl UpdateStrategy for DelayedStrategy {
    fn name(&self) -> &'static str {
        if self.compressor.is_some() {
            "cdsgd"
        } else {
            "odsgd"
        }
    }

    fn prepare_push(
        &mut self,
        model: &mut Sequential,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError> {
        // DC-ASGD-style delay compensation (extension, λ > 0 only): the
        // gradient was computed at W^loc but will be applied to a
        // one-step-newer global weight; correct it with the diagonal
        // Hessian approximation g̃ = g + λ·g⊙g⊙(W_base − W_loc). Without
        // DC the raw gradients are staged as-is (no copy).
        let use_dc = self.dc_lambda > 0.0 && self.formal(ctx.round);
        if use_dc {
            model.export_params_into(&mut self.w_loc);
            self.dc_grads.resize_with(grads.len(), Vec::new);
            for (d, (g, (b, wl))) in self
                .dc_grads
                .iter_mut()
                .zip(grads.iter().zip(self.link.base.iter().zip(&self.w_loc)))
            {
                d.clear();
                d.extend(
                    g.iter()
                        .zip(b.iter().zip(wl))
                        .map(|(&gi, (&bi, &wi))| gi + self.dc_lambda * gi * gi * (bi - wi)),
                );
            }
        }
        let push_grads: &[Vec<f32>] = if use_dc { &self.dc_grads } else { grads };

        let compress = match &self.compressor {
            Some((k, _)) => cd_compresses(self.warmup, *k, ctx.round),
            None => false,
        };
        if compress {
            let (_, codec) = self
                .compressor
                .as_mut()
                .expect("compress is only true with a codec");
            self.link.stage_compressed(codec.as_mut(), push_grads, ctx);
        } else {
            self.link.stage_raw(push_grads);
        }
        Ok(())
    }

    fn communicate(&mut self, ctx: &StepCtx) -> Result<(), NetError> {
        self.link.push_staged(ctx.id)?;
        let round = ctx.round;
        if self.formal(round) {
            // Deferred pull: the local update for this iteration needs
            // W_round (the result of the previous round), which the
            // warm-up's final pull or the previous formal iteration left
            // outstanding.
            if round > self.warmup {
                let t = ctx.now();
                self.link.base = match self.settled.take() {
                    // An epoch-end settle already received the replies.
                    Some(base) => base,
                    None => {
                        let receivers = self.pending.take().expect("async pull fired last round");
                        receivers
                            .into_iter()
                            .map(|r| r.wait())
                            .collect::<Result<_, _>>()?
                    }
                };
                ctx.record(OpKind::PullWait, round, t);
            }
            // Request next round's base (version round+1) now; the
            // transfer overlaps the next iteration's computation.
            self.pending = Some(self.link.fire_pulls(round + 1)?);
        } else {
            // Warm-up: plain blocking S-SGD synchronization.
            self.link.pull_blocking(round + 1, ctx, round)?;
        }
        Ok(())
    }

    fn adopt(
        &mut self,
        model: &mut Sequential,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError> {
        if self.formal(ctx.round) {
            // W^loc_{r+1} = W_r − lr_loc · grad_r (eq. 11).
            let t = ctx.now();
            model.import_params_from(&self.link.base);
            model.axpy_params(-self.local_lr, grads);
            ctx.record(OpKind::LocalUpdate, ctx.round, t);
        } else {
            model.import_params_from(&self.link.base);
        }
        Ok(())
    }

    fn eval_base(&self) -> Option<&[Arc<[f32]>]> {
        Some(&self.link.base)
    }

    fn settle(&mut self, ctx: &StepCtx) -> Result<(), NetError> {
        // Receive (but do not adopt) the deferred pull fired by the
        // epoch's last iteration. The reply only comes back once every
        // worker's push for that round is applied, so after all workers
        // settle, every push/pull of the epoch has been counted on both
        // the server and the client side. The wait is real pull-wait
        // time, charged to the round that would have adopted the reply.
        if let Some(receivers) = self.pending.take() {
            let t = ctx.now();
            self.settled = Some(
                receivers
                    .into_iter()
                    .map(|r| r.wait())
                    .collect::<Result<_, _>>()?,
            );
            ctx.record(OpKind::PullWait, ctx.round, t);
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), NetError> {
        // Drain the final round's outstanding pull (a no-op after the
        // last epoch's settle). The reply only arrives once every
        // worker's last push is applied, so returning from here
        // guarantees the server group holds the fully-aggregated final
        // weights.
        if let Some(receivers) = self.pending.take() {
            for r in receivers {
                r.wait()?;
            }
        }
        Ok(())
    }

    fn export_state(&self) -> Vec<Vec<f32>> {
        match &self.compressor {
            Some((_, codec)) => residuals_to_dense(codec.export_state(), self.link.num_keys),
            None => Vec::new(),
        }
    }

    fn import_state(&mut self, state: &[Vec<f32>]) {
        if let Some((_, codec)) = &mut self.compressor {
            codec.import_state(&dense_to_residuals(state));
        }
    }

    fn resume(
        &mut self,
        model: &mut Sequential,
        round: u64,
        has_model: bool,
    ) -> Result<(), NetError> {
        // The state a checkpoint-boundary kill interrupted: in the formal
        // phase past warm-up, the epoch-end settle had already received
        // W_round (the deferred pull fired by round-1's communicate), so
        // a bit-identical resume re-materializes it as `settled`; the
        // model holds the one-step-ahead local weights W^loc_round, which
        // only a worker checkpoint can supply (`has_model`). At or before
        // the warm-up boundary the protocol is still blocking S-SGD:
        // `base` is the pulled globals and nothing is deferred.
        self.link.pull_version(round)?;
        if !has_model {
            // Without a worker checkpoint the local replica restarts from
            // the globals — the warm-up-exact state; in the formal phase
            // an approximation that costs one local-update term.
            model.import_params_from(&self.link.base);
        }
        if self.formal(round) && round > self.warmup {
            self.settled = Some(self.link.base.clone());
        }
        Ok(())
    }
}

/// Local SGD: H purely local steps, then the accumulated gradients are
/// averaged through the server and every worker adopts the aggregate.
struct LocalSgdStrategy {
    link: PsLink,
    local_lr: f32,
    sync_period: u64,
    /// Gradients accumulated since the last synchronization.
    acc: Vec<Vec<f32>>,
    /// Completed synchronizations (the server round counter).
    syncs: u64,
}

impl LocalSgdStrategy {
    /// Does the step at (pre-increment) round `r` end a sync period?
    fn syncs_now(&self, r: u64) -> bool {
        (r + 1).is_multiple_of(self.sync_period)
    }
}

impl UpdateStrategy for LocalSgdStrategy {
    fn name(&self) -> &'static str {
        "localsgd"
    }

    fn prepare_push(
        &mut self,
        _model: &mut Sequential,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError> {
        if self.acc.is_empty() {
            self.acc = grads.iter().map(|g| vec![0.0f32; g.len()]).collect();
        }
        for (av, g) in self.acc.iter_mut().zip(grads) {
            for (ai, gi) in av.iter_mut().zip(g) {
                *ai += gi;
            }
        }
        if self.syncs_now(ctx.round) {
            self.link.stage_raw(&self.acc);
        }
        Ok(())
    }

    fn communicate(&mut self, ctx: &StepCtx) -> Result<(), NetError> {
        if self.syncs_now(ctx.round) {
            self.link.push_staged(ctx.id)?;
            self.syncs += 1;
            self.link.pull_blocking(self.syncs, ctx, ctx.round + 1)?;
        }
        Ok(())
    }

    fn adopt(
        &mut self,
        model: &mut Sequential,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError> {
        if self.syncs_now(ctx.round) {
            // Adopt the averaged aggregate; it replaces every local step,
            // so the local update for this round is skipped (the old loop
            // applied then immediately overwrote it — same bits).
            model.import_params_from(&self.link.base);
            for av in self.acc.iter_mut() {
                av.fill(0.0);
            }
        } else {
            // Purely local step on the worker's own model.
            model.axpy_params(-self.local_lr, grads);
        }
        Ok(())
    }

    fn eval_base(&self) -> Option<&[Arc<[f32]>]> {
        Some(&self.link.base)
    }

    fn export_state(&self) -> Vec<Vec<f32>> {
        // The accumulator carries gradient mass across the epoch boundary
        // whenever `iters_per_epoch` is not a multiple of `sync_period`.
        self.acc.clone()
    }

    fn import_state(&mut self, state: &[Vec<f32>]) {
        if !state.is_empty() {
            self.acc = state.to_vec();
        }
    }

    fn resume(
        &mut self,
        model: &mut Sequential,
        round: u64,
        has_model: bool,
    ) -> Result<(), NetError> {
        // The server round counter advances once per completed sync
        // period, not once per iteration.
        self.syncs = round / self.sync_period;
        self.link.pull_version(self.syncs)?;
        if !has_model {
            // Local steps since the last sync are only in the worker
            // checkpoint; without one the replica restarts from the last
            // synced aggregate.
            model.import_params_from(&self.link.base);
        }
        Ok(())
    }
}

/// AR-SGD: no parameter server; every round the workers mean-reduce raw
/// gradients through the collective and apply the update locally. The
/// model *is* the global state. Which topology carries the reduction
/// (in-memory ring, wire ring, tree) is invisible here: every
/// [`Collective`] honors the same pinned reduction order, so the bits
/// are identical.
struct ArSgdStrategy {
    ring: Box<dyn Collective>,
    /// Reduce buffers (allreduce is in-place), reused every round.
    mean: Vec<Vec<f32>>,
}

impl UpdateStrategy for ArSgdStrategy {
    fn name(&self) -> &'static str {
        "arsgd"
    }

    fn prepare_push(
        &mut self,
        _model: &mut Sequential,
        grads: &[Vec<f32>],
        _ctx: &StepCtx,
    ) -> Result<(), NetError> {
        self.mean.resize_with(grads.len(), Vec::new);
        for (m, g) in self.mean.iter_mut().zip(grads) {
            m.clear();
            m.extend_from_slice(g);
        }
        Ok(())
    }

    fn communicate(&mut self, ctx: &StepCtx) -> Result<(), NetError> {
        let t = ctx.now();
        for m in self.mean.iter_mut() {
            self.ring.allreduce_mean(m)?;
        }
        ctx.record(OpKind::PullWait, ctx.round, t);
        Ok(())
    }

    fn adopt(
        &mut self,
        model: &mut Sequential,
        _grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError> {
        // Eq. 1 applied locally; the lr schedule is applied worker-side
        // because there is no server to own it.
        let lr = current_lr(ctx.cfg, ctx.round, ctx.iters_per_epoch);
        model.axpy_params(-lr, &self.mean);
        Ok(())
    }

    fn eval_base(&self) -> Option<&[Arc<[f32]>]> {
        None
    }

    fn final_weights(&self, model: &mut Sequential) -> Option<Vec<Vec<f32>>> {
        Some(model.export_params())
    }
}

/// Decentralized compressed training after Tang et al. ("Communication
/// Compression for Decentralized Training", DCD-PSGD, simplified): no
/// server and no global reduction at all. Each worker keeps *replicas*
/// of its two ring neighbors' models (and of its own, as the neighbors
/// see it), advanced only by the codec-compressed model differences
/// everyone exchanges — so all three replicas of any worker agree
/// bit-for-bit across the ring. One iteration:
///
/// 1. local step `x ← x − lr·g`,
/// 2. compress `x − x̂_self`, advance `x̂_self` by the *decoded* diff
///    (exactly what the neighbors will apply), send the payload both
///    ways around the ring,
/// 3. decode the neighbors' diffs into `x̂_prev` / `x̂_next` and adopt
///    the gossip average `x ← (x̂_prev + x̂_self + x̂_next) / 3`.
///
/// Convergence is approximate (the compression error decays through the
/// gossip averaging rather than cancelling exactly), which is why
/// `tests/topology_equivalence.rs` pins a tolerance against the PS
/// baseline instead of bits.
struct DecentralizedStrategy {
    ring: Box<dyn Collective>,
    compressor: Box<dyn GradientCompressor>,
    pool: BufferPool,
    /// Replica of this worker's model as the neighbors see it.
    hat_self: Vec<Vec<f32>>,
    /// Replicas of the ring-previous / ring-next neighbors' models.
    hat_prev: Vec<Vec<f32>>,
    hat_next: Vec<Vec<f32>>,
    /// Serialized outbound diffs (u32-length-prefixed per key) and the
    /// inbound payloads from both neighbors. Reused every round.
    payload: Vec<u8>,
    from_prev: Vec<u8>,
    from_next: Vec<u8>,
    // Scratch reused every round.
    params: Vec<Vec<f32>>,
    diff: Vec<f32>,
}

impl DecentralizedStrategy {
    fn new(ring: Box<dyn Collective>, codec: &crate::config::Codec, init: &[Arc<[f32]>]) -> Self {
        let hat: Vec<Vec<f32>> = init.iter().map(|p| p.to_vec()).collect();
        Self {
            ring,
            compressor: codec.build(),
            pool: BufferPool::new(),
            hat_self: hat.clone(),
            hat_prev: hat.clone(),
            hat_next: hat,
            payload: Vec::new(),
            from_prev: Vec::new(),
            from_next: Vec::new(),
            params: Vec::new(),
            diff: Vec::new(),
        }
    }

    /// Decode one neighbor's length-prefixed diff payload into its
    /// replica, key by key.
    fn apply_diffs(buf: &[u8], pool: &BufferPool, hats: &mut [Vec<f32>]) -> Result<(), NetError> {
        let mut rest = buf;
        let mut key = 0usize;
        while !rest.is_empty() {
            if rest.len() < 4 || key >= hats.len() {
                return Err(NetError::Decode(
                    "malformed decentralized diff payload".into(),
                ));
            }
            let n = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            if rest.len() < 4 + n {
                return Err(NetError::Decode(
                    "truncated decentralized diff payload".into(),
                ));
            }
            let (chunk, tail) = rest[4..].split_at(n);
            let c = decode_compressed(chunk)?;
            decompress_add(&c, &mut hats[key]);
            c.recycle(pool);
            key += 1;
            rest = tail;
        }
        if key != hats.len() {
            return Err(NetError::Decode(format!(
                "decentralized diff payload held {key} keys, expected {}",
                hats.len()
            )));
        }
        Ok(())
    }
}

impl UpdateStrategy for DecentralizedStrategy {
    fn name(&self) -> &'static str {
        "decentralized"
    }

    fn prepare_push(
        &mut self,
        model: &mut Sequential,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError> {
        // Local step first (the lr schedule is worker-side: no server).
        let lr = current_lr(ctx.cfg, ctx.round, ctx.iters_per_epoch);
        let t = ctx.now();
        model.axpy_params(-lr, grads);
        ctx.record(OpKind::LocalUpdate, ctx.round, t);

        // Compress the model movement since the last exchange and
        // advance our own replica by exactly the decoded diff — the
        // same value both neighbors will apply to their copy of us.
        model.export_params_into(&mut self.params);
        self.payload.clear();
        for (key, p) in self.params.iter().enumerate() {
            self.diff.clear();
            self.diff
                .extend(p.iter().zip(&self.hat_self[key]).map(|(&x, &h)| x - h));
            let c = self.compressor.compress_into(key, &self.diff, &self.pool);
            decompress_add(&c, &mut self.hat_self[key]);
            let at = self.payload.len();
            self.payload.extend_from_slice(&[0u8; 4]);
            encode_compressed_into(&c, &mut self.payload);
            let n = (self.payload.len() - at - 4) as u32;
            self.payload[at..at + 4].copy_from_slice(&n.to_le_bytes());
            c.recycle(&self.pool);
        }
        Ok(())
    }

    fn communicate(&mut self, ctx: &StepCtx) -> Result<(), NetError> {
        let t = ctx.now();
        self.ring
            .neighbor_exchange(&self.payload, &mut self.from_prev, &mut self.from_next)?;
        ctx.record(OpKind::PullWait, ctx.round, t);
        Ok(())
    }

    fn adopt(
        &mut self,
        model: &mut Sequential,
        _grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError> {
        Self::apply_diffs(&self.from_prev, &self.pool, &mut self.hat_prev)?;
        Self::apply_diffs(&self.from_next, &self.pool, &mut self.hat_next)?;
        // Gossip average with uniform weights over the ring neighborhood.
        let t = ctx.now();
        for (p, (hs, (hp, hn))) in self.params.iter_mut().zip(
            self.hat_self
                .iter()
                .zip(self.hat_prev.iter().zip(&self.hat_next)),
        ) {
            for (x, (&s, (&a, &b))) in p.iter_mut().zip(hs.iter().zip(hp.iter().zip(hn))) {
                *x = (a + s + b) / 3.0;
            }
        }
        model.import_params(&self.params);
        ctx.record(OpKind::LocalUpdate, ctx.round, t);
        Ok(())
    }

    fn eval_base(&self) -> Option<&[Arc<[f32]>]> {
        None
    }

    fn final_weights(&self, model: &mut Sequential) -> Option<Vec<Vec<f32>>> {
        Some(model.export_params())
    }
}

/// Error-compensated 2-bit quantized SGD (ECQ-SGD, Wu et al.): the
/// blocking BIT-SGD protocol, but the carried quantization error is
/// scaled by α on the way in (`c = g + α·e`) and decayed by β on the way
/// out (`e ← β·(c − decode(q(c)))`). With `α = β = 1` the symbol stream
/// and residuals are bit-identical to [`BitSgdStrategy`] at the same
/// threshold (pinned by `tests/topology_equivalence.rs`); damping them
/// bounds how much stale error a slow round can re-inject.
struct EcqSgdStrategy {
    link: PsLink,
    threshold: f32,
    alpha: f32,
    beta: f32,
    /// Per-key carried quantization error, lazily sized from the first
    /// gradients.
    err: Vec<Vec<f32>>,
    // Scratch reused every round.
    corrected: Vec<f32>,
    symbols: Vec<u8>,
}

impl UpdateStrategy for EcqSgdStrategy {
    fn name(&self) -> &'static str {
        "ecqsgd"
    }

    fn prepare_push(
        &mut self,
        _model: &mut Sequential,
        grads: &[Vec<f32>],
        _ctx: &StepCtx,
    ) -> Result<(), NetError> {
        if self.err.is_empty() {
            self.err = grads.iter().map(|g| vec![0.0f32; g.len()]).collect();
        }
        self.link.staged.clear();
        let (thr, alpha, beta) = (self.threshold, self.alpha, self.beta);
        for (g, e) in grads.iter().zip(self.err.iter_mut()) {
            self.corrected.clear();
            self.corrected
                .extend(g.iter().zip(e.iter()).map(|(&gi, &ei)| gi + alpha * ei));
            self.symbols.clear();
            // Same comparison ladder as the 2-bit kernel scan, so the
            // α = β = 1 case reproduces BIT-SGD's symbols exactly.
            for (ei, &c) in e.iter_mut().zip(&self.corrected) {
                let (sym, q) = if c >= thr {
                    (1u8, thr)
                } else if c <= -thr {
                    (2u8, -thr)
                } else {
                    (0u8, 0.0)
                };
                self.symbols.push(sym);
                *ei = beta * (c - q);
            }
            let mut packed = self.link.pool.take_bytes();
            pack_2bit_into(&self.symbols, &mut packed);
            self.link.staged.push(Compressed::TwoBit {
                threshold: thr,
                packed,
                len: g.len(),
            });
        }
        Ok(())
    }

    fn communicate(&mut self, ctx: &StepCtx) -> Result<(), NetError> {
        self.link.push_staged(ctx.id)?;
        self.link.pull_blocking(ctx.round + 1, ctx, ctx.round)
    }

    fn adopt(
        &mut self,
        model: &mut Sequential,
        _grads: &[Vec<f32>],
        _ctx: &StepCtx,
    ) -> Result<(), NetError> {
        model.import_params_from(&self.link.base);
        Ok(())
    }

    fn eval_base(&self) -> Option<&[Arc<[f32]>]> {
        Some(&self.link.base)
    }

    fn export_state(&self) -> Vec<Vec<f32>> {
        self.err.clone()
    }

    fn import_state(&mut self, state: &[Vec<f32>]) {
        if !state.is_empty() {
            self.err = state.to_vec();
        }
    }

    fn resume(
        &mut self,
        model: &mut Sequential,
        round: u64,
        _has_model: bool,
    ) -> Result<(), NetError> {
        self.link.pull_version(round)?;
        model.import_params_from(&self.link.base);
        Ok(())
    }
}

/// Blockwise momentum SGD with error feedback (dist-EF-blockSGD, Zheng
/// et al.): worker momentum `m ← μm + g`, then a 1-bit sign quantization
/// of `m + e` with a per-key (blockwise) L1 scale is pushed; the
/// quantization error `e` feeds back next round (the
/// [`OneBitQuantizer`]'s residual store). The server applies its
/// configured optimizer to the decoded aggregate — plain SGD in Zheng et
/// al.'s single-momentum variant.
struct EfSgdStrategy {
    link: PsLink,
    momentum: f32,
    /// Per-key momentum buffers, lazily sized from the first gradients.
    velocity: Vec<Vec<f32>>,
    quantizer: OneBitQuantizer,
}

impl UpdateStrategy for EfSgdStrategy {
    fn name(&self) -> &'static str {
        "efsgd"
    }

    fn prepare_push(
        &mut self,
        _model: &mut Sequential,
        grads: &[Vec<f32>],
        ctx: &StepCtx,
    ) -> Result<(), NetError> {
        if self.velocity.is_empty() {
            self.velocity = grads.iter().map(|g| vec![0.0f32; g.len()]).collect();
        }
        for (v, g) in self.velocity.iter_mut().zip(grads) {
            for (vi, gi) in v.iter_mut().zip(g) {
                *vi = self.momentum * *vi + gi;
            }
        }
        self.link
            .stage_compressed(&mut self.quantizer, &self.velocity, ctx);
        Ok(())
    }

    fn communicate(&mut self, ctx: &StepCtx) -> Result<(), NetError> {
        self.link.push_staged(ctx.id)?;
        self.link.pull_blocking(ctx.round + 1, ctx, ctx.round)
    }

    fn adopt(
        &mut self,
        model: &mut Sequential,
        _grads: &[Vec<f32>],
        _ctx: &StepCtx,
    ) -> Result<(), NetError> {
        model.import_params_from(&self.link.base);
        Ok(())
    }

    fn eval_base(&self) -> Option<&[Arc<[f32]>]> {
        Some(&self.link.base)
    }

    fn export_state(&self) -> Vec<Vec<f32>> {
        // Two vectors per key: the momentum velocity, then the 1-bit
        // quantizer's error-feedback residual.
        if self.velocity.is_empty() {
            return Vec::new();
        }
        let mut state = self.velocity.clone();
        state.extend(residuals_to_dense(
            self.quantizer.export_state(),
            self.link.num_keys,
        ));
        state
    }

    fn import_state(&mut self, state: &[Vec<f32>]) {
        if state.is_empty() {
            return;
        }
        assert_eq!(
            state.len(),
            2 * self.link.num_keys,
            "EF-SGD state is two vectors per key"
        );
        let (velocity, residuals) = state.split_at(self.link.num_keys);
        self.velocity = velocity.to_vec();
        self.quantizer.import_state(&dense_to_residuals(residuals));
    }

    fn resume(
        &mut self,
        model: &mut Sequential,
        round: u64,
        _has_model: bool,
    ) -> Result<(), NetError> {
        self.link.pull_version(round)?;
        model.import_params_from(&self.link.base);
        Ok(())
    }
}

/// Resolve the algorithm to its strategy — the single construction-time
/// dispatch on [`Algorithm`]. `collective` must be `Some` exactly when
/// [`Algorithm::uses_ring`] says so (the trainer guarantees it); the
/// topology then picks between the synchronous all-reduce family and the
/// decentralized gossip leaf. `init` is the shared initial weights every
/// replica starts from.
pub(crate) fn build_strategy(
    algo: &Algorithm,
    topology: &Topology,
    client: Box<dyn ParamClient>,
    collective: Option<Box<dyn Collective>>,
    init: Vec<Arc<[f32]>>,
) -> Box<dyn UpdateStrategy> {
    if let Some(ring) = collective {
        if let Topology::Decentralized { codec } = topology {
            return Box::new(DecentralizedStrategy::new(ring, codec, &init));
        }
        return Box::new(ArSgdStrategy {
            ring,
            mean: Vec::new(),
        });
    }
    let link = PsLink::new(client, init);
    match algo {
        Algorithm::ArSgd => unreachable!("AR-SGD requires a collective"),
        Algorithm::SSgd => Box::new(SSgdStrategy { link }),
        Algorithm::BitSgd { threshold } => Box::new(BitSgdStrategy {
            link,
            quantizer: TwoBitQuantizer::new(*threshold),
        }),
        Algorithm::OdSgd { local_lr } => Box::new(DelayedStrategy {
            link,
            local_lr: *local_lr,
            warmup: 0,
            compressor: None,
            dc_lambda: 0.0,
            pending: None,
            settled: None,
            dc_grads: Vec::new(),
            w_loc: Vec::new(),
        }),
        Algorithm::CdSgd {
            local_lr,
            codec,
            k,
            warmup,
            dc_lambda,
        } => Box::new(DelayedStrategy {
            link,
            local_lr: *local_lr,
            warmup: *warmup as u64,
            compressor: Some((*k as u64, codec.build())),
            dc_lambda: *dc_lambda,
            pending: None,
            settled: None,
            dc_grads: Vec::new(),
            w_loc: Vec::new(),
        }),
        Algorithm::LocalSgd {
            local_lr,
            sync_period,
        } => Box::new(LocalSgdStrategy {
            link,
            local_lr: *local_lr,
            sync_period: *sync_period as u64,
            acc: Vec::new(),
            syncs: 0,
        }),
        Algorithm::EfSgd { momentum } => Box::new(EfSgdStrategy {
            link,
            momentum: *momentum,
            velocity: Vec::new(),
            quantizer: OneBitQuantizer::new(),
        }),
        Algorithm::EcqSgd {
            threshold,
            alpha,
            beta,
        } => Box::new(EcqSgdStrategy {
            link,
            threshold: *threshold,
            alpha: *alpha,
            beta: *beta,
            err: Vec::new(),
            corrected: Vec::new(),
            symbols: Vec::new(),
        }),
    }
}

/// The learning rate in effect at `round`, honoring the epoch-indexed
/// decay schedule (AR-SGD applies the schedule worker-side; the PS
/// algorithms apply it on the server).
fn current_lr(cfg: &TrainConfig, round: u64, iters_per_epoch: usize) -> f32 {
    let epoch = (round / iters_per_epoch.max(1) as u64) as usize;
    let mut lr = cfg.global_lr;
    for &(at, new_lr) in &cfg.lr_schedule {
        if epoch >= at {
            lr = new_lr;
        }
    }
    lr
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_ps::{ParamServer, ServerConfig};

    #[test]
    fn cd_compression_schedule_matches_algorithm1() {
        // Warm-up rounds push raw; then count % k == 0 is the correction.
        // rounds: 0      1      2(c0)  3(c1) 4(c2) 5(c3=0) 6 7 8(c6=0) 9
        let schedule: Vec<bool> = (0..10).map(|r| cd_compresses(2, 3, r)).collect();
        assert_eq!(
            schedule,
            vec![false, false, false, true, true, false, true, true, false, true]
        );
    }

    #[test]
    fn bit_always_raw_never_for_cd_k1() {
        // k = 1 means every formal push is the raw correction.
        assert!((0..8).all(|r| !cd_compresses(0, 1, r)));
    }

    fn with_client(f: impl FnOnce(Box<dyn ParamClient>)) {
        let ps = ParamServer::start(vec![vec![0.0; 4]], ServerConfig::new(1, 0.1));
        f(Box::new(ps.client()));
        ps.shutdown();
    }

    #[test]
    fn build_resolves_every_variant() {
        let init: Vec<Arc<[f32]>> = vec![Arc::from(vec![0.0f32; 4])];
        for (algo, name) in [
            (Algorithm::SSgd, "ssgd"),
            (Algorithm::OdSgd { local_lr: 0.1 }, "odsgd"),
            (Algorithm::BitSgd { threshold: 0.5 }, "bitsgd"),
            (Algorithm::cd_sgd(0.1, 0.5, 2, 3), "cdsgd"),
            (
                Algorithm::LocalSgd {
                    local_lr: 0.1,
                    sync_period: 2,
                },
                "localsgd",
            ),
            (Algorithm::ef_sgd(0.9), "efsgd"),
            (Algorithm::ecq_sgd(0.5, 1.0, 1.0), "ecqsgd"),
        ] {
            with_client(|client| {
                let s = build_strategy(&algo, &Topology::Ps, client, None, init.clone());
                assert_eq!(s.name(), name);
                assert!(s.eval_base().is_some(), "{name} adopts a server base");
            });
        }
    }

    #[test]
    fn ring_member_wins_resolution() {
        let (members, _stats) = cdsgd_ps::allreduce::ring_group(1);
        with_client(|client| {
            let s = build_strategy(
                &Algorithm::ArSgd,
                &Topology::Ps,
                client,
                members
                    .into_iter()
                    .next()
                    .map(|m| Box::new(m) as Box<dyn Collective>),
                vec![Arc::from(vec![0.0f32; 4])],
            );
            assert_eq!(s.name(), "arsgd");
            assert!(s.eval_base().is_none(), "ring mode evaluates the model");
        });
    }

    #[test]
    fn decentralized_topology_wins_resolution() {
        let (members, _stats) = cdsgd_ps::allreduce::ring_group(1);
        with_client(|client| {
            let s = build_strategy(
                &Algorithm::ArSgd,
                &Topology::Decentralized {
                    codec: crate::config::Codec::TwoBit { threshold: 0.5 },
                },
                client,
                members
                    .into_iter()
                    .next()
                    .map(|m| Box::new(m) as Box<dyn Collective>),
                vec![Arc::from(vec![0.0f32; 4])],
            );
            assert_eq!(s.name(), "decentralized");
            assert!(s.eval_base().is_none(), "gossip mode evaluates the model");
        });
    }

    #[test]
    fn current_lr_follows_schedule() {
        let cfg = TrainConfig::new(Algorithm::ArSgd, 1)
            .with_lr(0.4)
            .with_lr_decay(1, 0.04)
            .with_lr_decay(3, 0.004);
        // 5 iters/epoch: rounds 0..5 epoch 0, 5..10 epoch 1, 15.. epoch 3.
        assert_eq!(current_lr(&cfg, 0, 5), 0.4);
        assert_eq!(current_lr(&cfg, 4, 5), 0.4);
        assert_eq!(current_lr(&cfg, 5, 5), 0.04);
        assert_eq!(current_lr(&cfg, 14, 5), 0.04);
        assert_eq!(current_lr(&cfg, 15, 5), 0.004);
    }
}
