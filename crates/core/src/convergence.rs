//! Empirical verification of Theorem 2's O(1/√K + 1/K) convergence rate
//! on a convex problem.
//!
//! The theorem bounds `L(mean_k w_k) − L(w*)`. We reproduce it with
//! distributed L2-regularized logistic regression: N simulated workers,
//! exact eq. 10/11 update rules (including the 2-bit quantizer with
//! residuals and the k-step correction), learning rate `η ∝ 1/√K` as in
//! the corollary, and we report the suboptimality of the averaged iterate
//! at increasing K.

use cdsgd_compress::{decompress, GradientCompressor, TwoBitQuantizer};
use cdsgd_tensor::SmallRng64;

/// A binary logistic-regression problem instance (convex, smooth).
pub struct LogisticProblem {
    /// Feature rows, `n × d`.
    xs: Vec<Vec<f32>>,
    /// Labels in {0, 1}.
    ys: Vec<f32>,
    dim: usize,
    l2: f32,
}

impl LogisticProblem {
    /// Generate a separable-with-noise instance.
    pub fn generate(n: usize, dim: usize, seed: u64) -> Self {
        let mut rng = SmallRng64::new(seed);
        let mut w_true = vec![0.0f32; dim];
        for w in &mut w_true {
            *w = rng.gauss();
        }
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f32> = (0..dim).map(|_| rng.gauss()).collect();
            let margin: f32 = x.iter().zip(&w_true).map(|(a, b)| a * b).sum();
            let p = 1.0 / (1.0 + (-margin).exp());
            ys.push(if rng.unit_f32() < p { 1.0 } else { 0.0 });
            xs.push(x);
        }
        Self {
            xs,
            ys,
            dim,
            l2: 1e-3,
        }
    }

    /// Dataset size.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Full-batch loss at `w`.
    pub fn loss(&self, w: &[f32]) -> f64 {
        let mut total = 0.0f64;
        for (x, &y) in self.xs.iter().zip(&self.ys) {
            let z: f32 = x.iter().zip(w).map(|(a, b)| a * b).sum();
            // Numerically stable log(1 + e^z) − y·z.
            let log1pe = if z > 0.0 {
                z + (-z).exp().ln_1p()
            } else {
                z.exp().ln_1p()
            };
            total += (log1pe - y * z) as f64;
        }
        total / self.len() as f64
            + 0.5 * self.l2 as f64 * w.iter().map(|&v| (v * v) as f64).sum::<f64>()
    }

    /// Gradient over the sample index range `[lo, hi)`, written to `out`.
    pub fn grad_range(&self, w: &[f32], lo: usize, hi: usize, out: &mut [f32]) {
        out.fill(0.0);
        let m = (hi - lo) as f32;
        for i in lo..hi {
            let x = &self.xs[i];
            let z: f32 = x.iter().zip(w).map(|(a, b)| a * b).sum();
            let p = 1.0 / (1.0 + (-z).exp());
            let c = (p - self.ys[i]) / m;
            for (o, &xi) in out.iter_mut().zip(x) {
                *o += c * xi;
            }
        }
        for (o, &wi) in out.iter_mut().zip(w) {
            *o += self.l2 * wi;
        }
    }

    /// Approximate the optimum by many full-batch GD steps; returns
    /// `(w*, L(w*))`.
    pub fn solve(&self, iters: usize) -> (Vec<f32>, f64) {
        let mut w = vec![0.0f32; self.dim];
        let mut g = vec![0.0f32; self.dim];
        for _ in 0..iters {
            self.grad_range(&w, 0, self.len(), &mut g);
            for (wi, &gi) in w.iter_mut().zip(&g) {
                *wi -= 1.0 * gi;
            }
        }
        let l = self.loss(&w);
        (w, l)
    }
}

/// One point of the convergence experiment.
#[derive(Clone, Copy, Debug)]
pub struct RatePoint {
    /// Total iterations K.
    pub k_iters: usize,
    /// `L(w̄_K) − L(w*)` for the averaged iterate.
    pub suboptimality: f64,
}

/// Run CD-SGD (exact eq. 10/11 rules, N workers simulated in-process,
/// threshold-α 2-bit quantizer with residuals, k-step correction) for `K`
/// iterations with `η = c/√K`, and return the averaged-iterate
/// suboptimality.
pub fn cd_sgd_suboptimality(
    problem: &LogisticProblem,
    n_workers: usize,
    kstep: usize,
    big_k: usize,
    opt_loss: f64,
    seed: u64,
) -> RatePoint {
    let d = problem.dim();
    let eta = 1.0f32 / (big_k as f64).sqrt() as f32;
    let local_lr = eta;
    let threshold = 0.05f32;
    let batch = 16usize;

    let mut rng = SmallRng64::new(seed);
    let mut w_global = vec![0.0f32; d];
    // Per-worker local weights and quantizers.
    let mut w_loc = vec![vec![0.0f32; d]; n_workers];
    let mut quant: Vec<TwoBitQuantizer> = (0..n_workers)
        .map(|_| TwoBitQuantizer::new(threshold))
        .collect();
    let mut w_avg = vec![0.0f64; d];

    let mut grad = vec![0.0f32; d];
    let mut decoded = vec![0.0f32; d];
    for it in 0..big_k {
        let mut agg = vec![0.0f32; d];
        let prev_global = w_global.clone();
        for (g, (wl, q)) in w_loc.iter_mut().zip(quant.iter_mut()).enumerate() {
            let _ = g;
            let (wl, q) = (wl, q);
            let lo = rng.below(problem.len().saturating_sub(batch).max(1));
            problem.grad_range(wl, lo, (lo + batch).min(problem.len()), &mut grad);
            if kstep > 1 && it % kstep != 0 {
                let c = q.compress(0, &grad);
                decompress(&c, &mut decoded);
                for (a, &v) in agg.iter_mut().zip(&decoded) {
                    *a += v;
                }
            } else {
                for (a, &v) in agg.iter_mut().zip(&grad) {
                    *a += v;
                }
            }
            // eq. 11: local weights always use the raw local gradient.
            for ((l, &p), &gv) in wl.iter_mut().zip(&prev_global).zip(&grad) {
                *l = p - local_lr * gv;
            }
        }
        // eq. 10 on the server.
        for (w, &a) in w_global.iter_mut().zip(&agg) {
            *w -= eta / n_workers as f32 * a;
        }
        for (avg, &w) in w_avg.iter_mut().zip(&w_global) {
            *avg += w as f64;
        }
    }
    let w_bar: Vec<f32> = w_avg.iter().map(|&v| (v / big_k as f64) as f32).collect();
    RatePoint {
        k_iters: big_k,
        suboptimality: (problem.loss(&w_bar) - opt_loss).max(0.0),
    }
}

/// The full Theorem-2 experiment: suboptimality at several K.
pub fn rate_sweep(ks: &[usize], n_workers: usize, kstep: usize, seed: u64) -> Vec<RatePoint> {
    let problem = LogisticProblem::generate(2_000, 20, seed);
    let (_, opt) = problem.solve(3_000);
    ks.iter()
        .map(|&k| cd_sgd_suboptimality(&problem, n_workers, kstep, k, opt, seed ^ k as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_is_convex_and_solvable() {
        let p = LogisticProblem::generate(500, 10, 0);
        let (w_star, l_star) = p.solve(2_000);
        assert!(l_star < p.loss(&vec![0.0; 10]), "optimum beats the origin");
        // Gradient at the optimum is near zero.
        let mut g = vec![0.0f32; 10];
        p.grad_range(&w_star, 0, p.len(), &mut g);
        let gnorm: f32 = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(gnorm < 1e-3, "grad norm at optimum {gnorm}");
    }

    #[test]
    fn suboptimality_decreases_with_k() {
        let pts = rate_sweep(&[50, 400, 3_200], 4, 2, 7);
        assert!(pts[0].suboptimality > pts[2].suboptimality, "{pts:?}");
    }

    #[test]
    fn rate_is_at_least_one_over_sqrt_k() {
        // Theorem 2: subopt ≤ C(1/√K + 1/K). Fit C at the smallest K and
        // verify the bound holds (with slack 3×) at the largest.
        let pts = rate_sweep(&[100, 6_400], 4, 2, 11);
        let bound = |k: usize| 1.0 / (k as f64).sqrt() + 1.0 / k as f64;
        let c = pts[0].suboptimality / bound(pts[0].k_iters);
        assert!(
            pts[1].suboptimality <= 3.0 * c * bound(pts[1].k_iters) + 1e-9,
            "rate violated: {pts:?}, C={c}"
        );
    }

    #[test]
    fn correction_tightens_convergence() {
        // Smaller kstep (more corrections) should not converge worse.
        let p = LogisticProblem::generate(2_000, 20, 3);
        let (_, opt) = p.solve(3_000);
        let tight = cd_sgd_suboptimality(&p, 4, 2, 2_000, opt, 5);
        let loose = cd_sgd_suboptimality(&p, 4, 50, 2_000, opt, 5);
        assert!(
            tight.suboptimality <= loose.suboptimality * 1.5 + 1e-6,
            "k=2 {tight:?} vs k=50 {loose:?}"
        );
    }
}
