//! The worker loop: Algorithm 1 of the paper, one OS thread per worker.
//!
//! All per-algorithm behaviour lives behind
//! [`crate::strategy::UpdateStrategy`]; this loop is the algorithm-
//! agnostic pipeline — batch, forward, backward, then the strategy's
//! three-phase step (prepare → communicate → adopt) — plus epoch-end
//! evaluation and reporting.

use crate::config::TrainConfig;
use crate::profile::{OpKind, WorkerProfile};
use crate::strategy::{build_strategy, StepCtx};

use crate::supervise::PoisonBarrier;
use cdsgd_data::{augment, Batch, Dataset};
use cdsgd_nn::{Layer, Mode, Sequential, SoftmaxCrossEntropy};
use cdsgd_ps::{Collective, NetError, ParamClient};
use cdsgd_tensor::SmallRng64;
use crossbeam::channel::Sender;
use std::sync::Arc;

/// What a worker reports at the end of each epoch.
#[derive(Debug)]
pub(crate) struct EpochReport {
    pub worker: usize,
    pub epoch: usize,
    pub loss_sum: f64,
    pub acc_sum: f64,
    pub batches: usize,
    /// Test accuracy of the *global* weights; only worker 0 evaluates.
    pub test_acc: Option<f32>,
    /// Final global weights — sent by worker 0 on the last epoch of
    /// server-less algorithms (AR-SGD), where the trainer cannot snapshot
    /// a parameter server.
    pub final_weights: Option<Vec<Vec<f32>>>,
}

/// Everything a worker thread needs.
pub(crate) struct WorkerArgs {
    pub id: usize,
    pub cfg: TrainConfig,
    pub model: Sequential,
    pub shard: Dataset,
    /// Test set; `Some` only for worker 0.
    pub test: Option<Dataset>,
    /// Connection to the parameter server — in-process, loopback, or TCP;
    /// the worker is agnostic.
    pub client: Box<dyn ParamClient>,
    /// Collective handle for the server-less algorithms (AR-SGD and the
    /// decentralized topology); `None` for the PS-based algorithms. Which
    /// topology (in-memory ring, wire ring, tree) is the trainer's /
    /// deployment's choice — the worker is agnostic.
    pub collective: Option<Box<dyn Collective>>,
    pub iters_per_epoch: usize,
    /// Epoch rendezvous with the trainer; poisoned by the supervisor when
    /// another worker is lost, so `wait` is fallible.
    pub barrier: Arc<PoisonBarrier>,
    pub report: Sender<EpochReport>,
    /// When present, record wall-clock op intervals into this worker's
    /// local buffer (merged into the shared profiler at the epoch
    /// barrier, so recording never contends with other workers).
    pub profiler: Option<WorkerProfile>,
}

/// Run one worker to completion. See the crate docs for the exact
/// correspondence with the paper's Algorithm 1. A dead server or broken
/// connection surfaces as `Err`, not a panic.
pub(crate) fn run_worker(mut a: WorkerArgs) -> Result<(), NetError> {
    let loss_fn = SoftmaxCrossEntropy;
    let mut rng =
        SmallRng64::new(a.cfg.seed ^ (a.id as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));

    // The shared init every replica starts from; `Arc` snapshots shared
    // with the server and every same-version puller.
    let init: Vec<Arc<[f32]>> = a.model.export_params().into_iter().map(Arc::from).collect();

    // A scripted departure needs the client twice: the strategy owns one
    // handle for the training rounds, and this loop keeps another to
    // announce `Leave` on the *same ordered stream* the pushes rode (so
    // the server sees every push of the final round before the goodbye).
    let depart = a
        .cfg
        .departures
        .iter()
        .find(|&&(w, _)| w == a.id)
        .map(|&(_, e)| e);
    let (client, shared): (Box<dyn ParamClient>, Option<Arc<dyn ParamClient>>) = match depart {
        Some(_) => {
            let arc: Arc<dyn ParamClient> = Arc::from(a.client);
            (Box::new(Arc::clone(&arc)), Some(arc))
        }
        None => (a.client, None),
    };
    let mut strategy = build_strategy(&a.cfg.algo, &a.cfg.topology, client, a.collective, init);
    let mut round: u64 = 0;
    // Per-iteration gradient scratch, allocated once and reused.
    let mut grads: Vec<Vec<f32>> = Vec::new();
    let mut saved: Vec<Vec<f32>> = Vec::new();

    // ---- resume (DESIGN.md §14): skip the completed epochs ----
    let start_epoch = a.cfg.start_epoch.min(a.cfg.epochs);
    if start_epoch > 0 {
        // Replay the completed epochs' shuffles so the RNG stream — and
        // therefore every remaining batch order — matches an
        // uninterrupted run bit for bit. (Augmentation draws from the
        // same RNG per batch; bit-identical resume therefore also
        // requires `augment` off, which the equivalence tests pin.)
        for _ in 0..start_epoch {
            let mut replay = a.shard.clone();
            replay.shuffle(&mut rng);
        }
        round = (start_epoch * a.iters_per_epoch) as u64;
        let mut has_model = false;
        if let Some(dir) = &a.cfg.worker_ckpt_dir {
            match crate::recover::load_worker(dir, a.id, a.cfg.num_workers, start_epoch) {
                Ok(ckpt) if ckpt.round == round => {
                    a.model.import_params(&ckpt.model);
                    strategy.import_state(&ckpt.strategy);
                    has_model = true;
                }
                Ok(ckpt) => eprintln!(
                    "worker {}: checkpoint for epoch {start_epoch} was taken at round {} \
                     but this run resumes at round {round}; ignoring it",
                    a.id, ckpt.round
                ),
                Err(e) => eprintln!(
                    "worker {}: no usable checkpoint for epoch {start_epoch} ({e}); \
                     resuming from the server's globals alone",
                    a.id
                ),
            }
        }
        strategy.resume(&mut a.model, round, has_model)?;
    }

    for epoch in start_epoch..a.cfg.epochs {
        if Some(epoch) == depart {
            // Graceful departure at the start of this epoch: drain any
            // in-flight pulls, say goodbye (the server moves us to
            // Draining and re-sizes the quorum), and withdraw from the
            // epoch rendezvous so the survivors stop waiting for us.
            strategy.finish()?;
            if let Some(c) = &shared {
                c.leave(a.id)?;
            }
            a.barrier.leave();
            return Ok(());
        }
        let mut shard = a.shard.clone();
        shard.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;

        for batch in shard.batches(a.cfg.batch_size).take(a.iters_per_epoch) {
            let batch = if a.cfg.augment && batch.x.ndim() == 4 {
                augment::standard_augment(&batch, &mut rng)
            } else {
                batch
            };

            // ---- FP/BP on the current (local or global) weights ----
            let t_fp = a.profiler.as_ref().map(|p| p.now());
            let logits = a.model.forward(&batch.x, Mode::Train);
            if let (Some(p), Some(t)) = (&a.profiler, t_fp) {
                p.record(OpKind::Forward, round, t);
            }
            let (loss, dlogits) = loss_fn.loss_and_grad(&logits, &batch.y);
            loss_sum += loss as f64;
            acc_sum += loss_fn.accuracy(&logits, &batch.y) as f64;
            batches += 1;
            let t_bp = a.profiler.as_ref().map(|p| p.now());
            a.model.backward(&dlogits);
            a.model.export_grads_into(&mut grads);
            if let (Some(p), Some(t)) = (&a.profiler, t_bp) {
                p.record(OpKind::Backward, round, t);
            }

            // ---- the algorithm's step: stage, synchronize, adopt ----
            let ctx = StepCtx {
                id: a.id,
                round,
                cfg: &a.cfg,
                iters_per_epoch: a.iters_per_epoch,
                profiler: a.profiler.as_ref(),
            };
            strategy.prepare_push(&mut a.model, &grads, &ctx)?;
            strategy.communicate(&ctx)?;
            strategy.adopt(&mut a.model, &grads, &ctx)?;
            round += 1;
        }

        // Receive (without adopting) any reply still in flight before
        // reporting, so the byte counters the trainer samples at the
        // epoch boundary are final — deterministic run to run and
        // bit-identical across backends.
        let ctx = StepCtx {
            id: a.id,
            round,
            cfg: &a.cfg,
            iters_per_epoch: a.iters_per_epoch,
            profiler: a.profiler.as_ref(),
        };
        strategy.settle(&ctx)?;

        // ---- durable snapshot: worker state is consistent here ----
        // (all pushes settled, no pulls in flight). A failed write warns
        // and continues: losing a checkpoint must not kill training.
        if let Some(dir) = &a.cfg.worker_ckpt_dir {
            if (epoch + 1).is_multiple_of(a.cfg.worker_ckpt_every) {
                let ckpt = crate::recover::WorkerCheckpoint {
                    worker: a.id,
                    num_workers: a.cfg.num_workers,
                    epoch: epoch + 1,
                    round,
                    model: a.model.export_params(),
                    strategy: strategy.export_state(),
                };
                if let Err(e) = ckpt.save_atomic(dir) {
                    eprintln!(
                        "worker {}: checkpoint for epoch {} failed: {e}",
                        a.id,
                        epoch + 1
                    );
                }
            }
        }

        // ---- epoch end: evaluate global weights (worker 0 only) ----
        let test_acc = match (a.test.as_ref(), strategy.eval_base()) {
            // Server-less: the model holds the globals; evaluate directly.
            (Some(test), None) => Some(evaluate(&mut a.model, test)),
            // PS-based: evaluate the adopted global snapshot, then
            // restore whatever (possibly local) weights the model held.
            (Some(test), Some(base)) => {
                a.model.export_params_into(&mut saved);
                a.model.import_params_from(base);
                let acc = evaluate(&mut a.model, test);
                a.model.import_params(&saved);
                Some(acc)
            }
            (None, _) => None,
        };

        let final_weights = (a.id == 0 && epoch + 1 == a.cfg.epochs)
            .then(|| strategy.final_weights(&mut a.model))
            .flatten();
        let report = EpochReport {
            worker: a.id,
            epoch,
            loss_sum,
            acc_sum,
            batches,
            test_acc,
            final_weights,
        };
        // A dropped receiver means the trainer is gone (aborting or
        // dropped by its caller): exit cleanly, it is not this worker's
        // failure.
        if a.report.send(report).is_err() {
            return Ok(());
        }
        // Merge this epoch's locally-buffered profile intervals while the
        // other workers are also at the barrier — the one shared-lock
        // acquisition per epoch the profiler allows.
        if let Some(p) = &a.profiler {
            p.flush();
        }
        a.barrier.wait()?;
    }

    // Drain any outstanding asynchronous pulls so the server group holds
    // the fully-aggregated final weights when this worker returns — a
    // standalone worker process can exit and let an external controller
    // snapshot without racing the last round.
    strategy.finish()
}

/// Accuracy of `model` (eval mode) over a dataset, batched.
pub(crate) fn evaluate(model: &mut Sequential, data: &Dataset) -> f32 {
    let loss_fn = SoftmaxCrossEntropy;
    let mut correct_weighted = 0.0f64;
    let mut total = 0usize;
    for Batch { x, y } in data.batches(64) {
        let logits = model.forward(&x, Mode::Eval);
        correct_weighted += loss_fn.accuracy(&logits, &y) as f64 * y.len() as f64;
        total += y.len();
    }
    if total == 0 {
        0.0
    } else {
        (correct_weighted / total as f64) as f32
    }
}
